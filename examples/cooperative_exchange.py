#!/usr/bin/env python3
"""Controlled exchange of preliminary results (usage relationships).

Shows the AC level's data-exchange machinery from Sect.4.1/5.4:

* two sibling sub-DAs with a **usage relationship** (Require),
* **quality-gated propagation**: a DOV only becomes visible to the
  requiring DA once it was Propagated *and* fulfils the required
  feature set,
* the paper's ECA rule — ``WHEN Require IF (required DOV available)
  THEN Propagate`` — installed on the supporting DA,
* **invalidation with replacement** and **withdrawal** with the
  requiring DM's log analysis ("was the withdrawn DOV used?").

Run with:  python examples/cooperative_exchange.py
"""

from repro.bench.scenarios import chip_spec, make_vlsi_system
from repro.dc.rules import require_propagate_rule
from repro.dc.script import DopStep, Script, Sequence
from repro.repository.wal import LogRecordKind
from repro.util.errors import ScopeViolationError
from repro.vlsi.tools import vlsi_dots


def main() -> None:
    system = make_vlsi_system(("ws-1", "ws-2", "ws-3"))
    dots = vlsi_dots()
    noop = Script(Sequence(DopStep("structure_synthesis")), "noop")

    top = system.init_design(
        dots["Chip"], chip_spec(100, 100), "lead", noop, "ws-1",
        initial_data={"cell": "chip", "level": "chip",
                      "behavior": {"operations": ["a", "b"]}})
    system.start(top.da_id)
    supplier = system.create_sub_da(top.da_id, dots["Module"],
                                    chip_spec(50, 50), "sue", noop,
                                    "ws-2")
    consumer = system.create_sub_da(top.da_id, dots["Module"],
                                    chip_spec(50, 50), "carl", noop,
                                    "ws-3")
    system.start(supplier.da_id)
    system.start(consumer.da_id)

    # the supplier derives two versions: a bad one and a good one
    bad = system.repository.checkin(
        supplier.da_id, "Module",
        {"cell": "m", "level": "module", "width": 80.0, "height": 80.0,
         "area": 6400.0}, created_at=system.clock.now)
    good = system.repository.checkin(
        supplier.da_id, "Module",
        {"cell": "m", "level": "module", "width": 40.0, "height": 40.0,
         "area": 1600.0}, parents=(bad.dov_id,),
        created_at=system.clock.now)

    print("=== quality-gated propagation ===")
    # the consumer requires a version that fits 50x50
    delivered = system.cm.require(consumer.da_id, supplier.da_id,
                                  {"width-limit", "height-limit"})
    print(f"  Require before any Propagate -> delivered: {delivered}")

    receivers = system.cm.propagate(supplier.da_id, bad.dov_id)
    print(f"  Propagate({bad.dov_id}) [80x80, fails the features] -> "
          f"delivered to {receivers or 'nobody (quality too low)'}")
    receivers = system.cm.propagate(supplier.da_id, good.dov_id)
    print(f"  Propagate({good.dov_id}) [40x40, fulfils the features] -> "
          f"delivered to {receivers}")
    print(f"  {good.dov_id} in consumer scope: "
          f"{system.cm.in_scope(consumer.da_id, good.dov_id)}")
    print(f"  {bad.dov_id} in consumer scope:  "
          f"{system.cm.in_scope(consumer.da_id, bad.dov_id)}")

    # DAs without a usage relationship must not exchange data
    try:
        system.cm.propagate(consumer.da_id, good.dov_id)
    except ScopeViolationError as exc:
        print(f"  propagation of foreign DOVs rejected: {exc}")

    print("\n=== the paper's ECA rule on the supporting DA ===")
    dm = system.runtime(supplier.da_id).dm
    rule = require_propagate_rule(
        find_qualifying=lambda env: next(
            (d for d in supplier.propagated
             if supplier.quality[d].covers(env["features"])), None),
        propagate=lambda env, dov: system.cm.propagate(supplier.da_id,
                                                       dov))
    dm.rules.register(rule)
    firings = dm.rules.dispatch("Require",
                                {"features": {"area-limit"}})
    print(f"  WHEN Require IF (required DOV available) THEN Propagate "
          f"-> fired: {[f.rule for f in firings]}")

    print("\n=== withdrawal with DM log analysis ===")
    # the consumer actually *uses* the delivered DOV in a DOP
    consumer_tm = system.runtime(consumer.da_id).client_tm
    dop = consumer_tm.begin_dop(consumer.da_id, "chip_planner")
    consumer_tm.checkout(dop, good.dov_id)
    system.runtime(consumer.da_id).dm.log.append(
        LogRecordKind.DOV_USED,
        {"dop": dop.dop_id, "dov": good.dov_id}, force=True)
    consumer_tm.abort_dop(dop, "example")

    affected = system.cm.withdraw(supplier.da_id, good.dov_id)
    consumer_dm = system.runtime(consumer.da_id).dm
    print(f"  withdraw({good.dov_id}) -> affected DAs: {affected}")
    print(f"  consumer DM stopped: {consumer_dm.stopped} "
          f"({consumer_dm.stop_reason})")
    consumer_dm.designer_continue()
    print(f"  designer decided the work is unaffected -> stopped: "
          f"{consumer_dm.stopped}")

    usage = system.cm.usage(consumer.da_id, supplier.da_id)
    print(f"\nusage relationship bookkeeping: delivered={usage.delivered}"
          f" withdrawn={usage.withdrawn}")


if __name__ == "__main__":
    main()
