#!/usr/bin/env python3
"""Quickstart: a single designer runs a scripted design activity.

Demonstrates the minimal CONCORD setup:

1. build a :class:`ConcordSystem` (server + one workstation),
2. define a design object type (DOT), a design specification (the
   feature set the final result must fulfil), a tool and a script,
3. create and start the top-level design activity (DA),
4. let the design manager drive the work flow: every DOP is a long
   ACID transaction (checkout -> tool processing -> checkin),
5. evaluate the quality state and inspect the derivation graph.

Run with:  python examples/quickstart.py
"""

from repro import (
    AttributeDef,
    AttributeKind,
    ConcordSystem,
    DaOpStep,
    DesignObjectType,
    DesignSpecification,
    DopStep,
    RangeFeature,
    Script,
    Sequence,
)


def main() -> None:
    # 1. the installation: one server, one designer workstation
    system = ConcordSystem()
    system.add_workstation("ws-alice")

    # 2a. the design object type: a cell with an area attribute
    cell = DesignObjectType("Cell", attributes=[
        AttributeDef("name", AttributeKind.STRING),
        AttributeDef("area", AttributeKind.FLOAT, required=False),
    ])

    # 2b. the design specification: the goal the final DOV must reach
    spec = DesignSpecification([
        RangeFeature("area-limit", "area", hi=100.0),
    ])

    # 2c. a design tool: halves the cell area on every application
    def optimiser(context, params):
        context.data["area"] = context.data.get("area", 400.0) * 0.5

    system.tools.register("optimiser", optimiser, duration=45.0)

    # 2d. the script (the DC parameter of the description vector):
    #     run the optimiser twice, then evaluate the quality state
    script = Script(Sequence(
        DopStep("optimiser"),
        DopStep("optimiser"),
        DaOpStep("Evaluate"),
    ), name="optimise-twice")

    # 3. Init_Design creates the top-level DA with DOV0 as basis
    da = system.init_design(cell, spec, designer="alice", script=script,
                            workstation="ws-alice",
                            initial_data={"name": "cell-x", "area": 360.0})
    system.start(da.da_id)

    # 4. the design manager drives the work flow automatically
    status = system.run(da.da_id)
    print(f"work flow done: {status.done}, "
          f"DOPs executed: {status.executed_dops}")

    # 5. inspect the outcome
    graph = system.repository.graph(da.da_id)
    print(f"derivation graph: {len(graph)} versions "
          f"(DOV0 + one per DOP)")
    for dov in graph:
        quality = da.quality.get(dov.dov_id)
        state = ("final" if quality and quality.is_final
                 else "preliminary")
        print(f"  {dov.dov_id}: area={dov.get('area'):7.1f}  "
              f"parents={list(dov.parents) or '-'}  [{state}]")
    print(f"final DOVs: {da.final_dovs}")
    print(f"simulated design time: {system.clock.now:.0f} minutes")
    print()
    print("trace of the run (first 12 events):")
    print(system.trace.render(12))


if __name__ == "__main__":
    main()
