#!/usr/bin/env python3
"""The paper's running scenario: cooperative chip planning (Fig.3/Fig.5).

A team designs cell 0 of a VLSI chip:

* DA1 plans the floorplan of cell 0 (subcells A-D) with the chip
  planner toolbox (bipartitioning, sizing, dimensioning, global
  routing),
* planning of the subcells is *delegated* to sub-DAs DA2..DA5, each
  with its own designer, workstation, specification and script,
* the A-planner discovers its specified area is insufficient and
  raises Sub_DA_Impossible_Specification,
* DA1 reacts exactly as the paper describes: "to modify the
  specifications of DA2 and DA3 by giving DA2 more and DA3 less area",
* the affected sub-DAs replan, reach final DOVs, report ready-to-
  commit, and are terminated — their final DOVs devolve to DA1's
  scope via scope-lock inheritance.

Run with:  python examples/chip_planning_team.py
"""

from repro.bench.scenarios import fig5_delegation_scenario
from repro.vlsi.floorplan import Floorplan


def main() -> None:
    system, report = fig5_delegation_scenario()

    print("=== the delegation scenario of Fig.5 ===\n")
    for i, phase in enumerate(report.phases, 1):
        print(f"  {i}. {phase}")

    print("\n=== DA hierarchy after the run ===")
    snapshot = system.cm.hierarchy_snapshot()

    def show(node: dict, indent: int = 0) -> None:
        print("  " * indent
              + f"- {node['da']} [{node['dot']}] {node['state']} "
                f"designer={node['designer']} "
                f"finals={len(node['final_dovs'])}")
        for child in node["children"]:
            show(child, indent + 1)

    for root in snapshot["roots"]:
        show(root)

    print("\n=== DA1's floorplan of cell 0 ===")
    top_graph = system.repository.graph(report.top_da)
    plan_dov = next(d for d in top_graph if d.data.get("floorplan"))
    floorplan = Floorplan.from_dict(plan_dov.data["floorplan"])
    print(f"  CUD {floorplan.cud}: {floorplan.width} x "
          f"{floorplan.height}, wirelength {floorplan.wirelength}, "
          f"cut nets {floorplan.cut_nets}")
    for placement in floorplan.placements.values():
        print(f"    {placement.cell:12s} at ({placement.x:6.2f}, "
              f"{placement.y:6.2f})  {placement.width:6.2f} x "
              f"{placement.height:6.2f}")

    print("\n=== devolution of final DOVs (scope-lock inheritance) ===")
    for sub_id, dovs in report.inherited_dovs.items():
        print(f"  {sub_id} -> {report.top_da}: {dovs}")
    scope = sorted(system.cm.scope_of(report.top_da))
    print(f"  {report.top_da}'s scope now holds {len(scope)} DOVs")

    print(f"\ncooperation protocol log: "
          f"{len(system.cm.log)} records")
    print(f"simulated design time: {system.clock.now:.0f} minutes")


if __name__ == "__main__":
    main()
