#!/usr/bin/env python3
"""Concurrent team: several designers live at once on the shared kernel.

The paper's design activities are *long-duration, concurrently running*
agents cooperating over a workstation/server LAN.  This example runs
that dynamic end to end on the unified discrete-event kernel:

1. a top-level DA plans cell 0 and delegates one sub-DA per subcell;
2. ``run_concurrent`` interleaves all sub-DAs' tool steps on one
   simulated clock — cooperation messages travel the (latency +
   jitter modelled) LAN and are auto-dispatched to the receiving DM's
   ECA rules on arrival (an auto-terminate rule on the top DM commits
   each sub-DA the moment its Ready_To_Commit message lands);
3. a workstation crash is injected mid-step through the kernel; DM
   forward recovery resumes the interrupted DOP from its recovery
   point and the scenario still converges.

Run with:  python examples/concurrent_team.py
"""

from repro.bench.scenarios import concurrent_delegation_scenario


def main() -> None:
    subcells = ("A", "B", "C")

    # the sequential reference: one DA after the other, manual pumping
    __, sequential = concurrent_delegation_scenario(subcells,
                                                    concurrent=False)
    # the concurrent run: all sub-DAs interleaved on the kernel
    system, concurrent = concurrent_delegation_scenario(subcells,
                                                        jitter=0.2,
                                                        seed=42)

    print("delegated planning of subcells", ", ".join(subcells))
    print(f"  sequential makespan: {sequential.makespan:8.1f} minutes")
    print(f"  concurrent makespan: {concurrent.makespan:8.1f} minutes "
          f"({sequential.makespan / concurrent.makespan:.1f}x faster)")
    print(f"  kernel events executed: {concurrent.events}")
    print(f"  final states: {concurrent.final_states}")
    print(f"  devolved DOVs: "
          f"{ {k: len(v) for k, v in concurrent.devolved.items()} }")

    # now the same scenario with a crash of ws-B in the middle of a DOP
    crash_system, crashed = concurrent_delegation_scenario(
        subcells, crash=("ws-B", 15.0, 5.0), jitter=0.2, seed=42)
    print()
    print("same scenario, ws-B crashes 15 minutes in (5 minutes down):")
    for entry in crash_system.kernel.injections:
        print(f"  t={entry.at:6.1f}  {entry.action:7s}  {entry.node}")
    b_id = crashed.sub_das["B"]
    resumed = crash_system.last_recovery_reports[b_id]["in_flight_resumed"]
    print(f"  in-flight DOP resumed: {resumed}")
    print(f"  makespan with crash: {crashed.makespan:8.1f} minutes "
          f"(+{crashed.makespan - concurrent.makespan:.1f} for redone "
          f"work + downtime)")
    print(f"  all sub-DAs terminated: "
          f"{all(state == 'terminated' for da, state in crashed.final_states.items() if da != crashed.top_da)}")


if __name__ == "__main__":
    main()
