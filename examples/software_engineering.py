#!/usr/bin/env python3
"""CONCORD driving a second domain: team software development.

The paper reports in-field validation "in the design areas of VLSI and
software engineering" (Sect.6).  This example shows the *same* DA / DM /
TM machinery running a development project:

* a top-level DA develops the system (specify, edit,
  compile-test-debug cycle, integrate) under domain ordering
  constraints (no testing before compiling, debug must be followed by
  a re-compile),
* two module sub-DAs are delegated and exchange a preliminary result
  over a usage relationship (the UI module consumes the auth module's
  tested interface before the auth module is finished),
* the release specification (zero defects, full coverage, passed
  review) gates finality, exactly like shape/area features gate chip
  planning.

Run with:  python examples/software_engineering.py
"""

from repro.core.system import ConcordSystem
from repro.dc.design_manager import DesignerPolicy
from repro.se import (
    development_script,
    module_script,
    register_se_tools,
    release_spec,
    se_constraints,
    se_dots,
)


class DeveloperPolicy(DesignerPolicy):
    """Keeps cycling compile-test-debug until the code is clean."""

    def __init__(self, system, da_id, edit_seed):
        self.system = system
        self.da_id = da_id
        self.edit_seed = edit_seed

    def loop_decision(self, action):
        graph = self.system.repository.graph(self.da_id)
        latest = max(graph.leaves(), key=lambda d: d.created_at)
        clean = (latest.get("defects", 1) == 0
                 and latest.get("coverage", 0.0) >= 1.0)
        return "exit" if clean else "again"

    def dop_params(self, step):
        params = dict(step.params)
        if step.tool == "edit":
            params["seed"] = self.edit_seed
        return params


def main() -> None:
    system = ConcordSystem()
    for workstation in ("ws-lead", "ws-auth", "ws-ui"):
        system.add_workstation(workstation)
    register_se_tools(system.tools)
    system.constraints = se_constraints()
    dots = se_dots()
    for dot in dots.values():
        system.repository.register_dot(dot)

    # --- the system-level DA ------------------------------------------------
    top = system.init_design(
        dots["SwSystem"], release_spec(), "lead",
        development_script(), "ws-lead",
        initial_data={"name": "webshop", "kind": "system",
                      "requirements": {"features":
                                       ["auth", "catalog", "checkout"]}})
    system.start(top.da_id)

    # --- delegated module DAs -----------------------------------------------
    auth = system.create_sub_da(
        top.da_id, dots["SwModule"], release_spec(min_coverage=1.0),
        "sam", module_script(), "ws-auth")
    ui = system.create_sub_da(
        top.da_id, dots["SwModule"], release_spec(min_coverage=1.0),
        "uma", module_script(), "ws-ui")
    for sub in (auth, ui):
        system.start(sub.da_id)
        # seed each module's own requirements as its DOV0 basis
        system.repository.checkin(
            sub.da_id, "SwModule",
            {"name": f"module-{sub.designer}", "kind": "module",
             "requirements": {"features": ["core", "api"]}},
            created_at=system.clock.now)

    print("=== module development with pre-release exchange ===")
    # UI requires a defect-free preliminary result of the auth module
    delivered = system.cm.require(ui.da_id, auth.da_id, {"no-defects"})
    print(f"  ui Requires auth's 'no-defects' result -> "
          f"{delivered or 'pending (nothing propagated yet)'}")

    system.run(auth.da_id, policy=DeveloperPolicy(system, auth.da_id, 3))
    auth_leaf = max(system.repository.graph(auth.da_id).leaves(),
                    key=lambda d: d.created_at)
    system.cm.evaluate(auth.da_id, auth_leaf.dov_id)
    receivers = system.cm.propagate(auth.da_id, auth_leaf.dov_id)
    print(f"  auth finished its cycle (defects="
          f"{auth_leaf.get('defects')}) and Propagates "
          f"{auth_leaf.dov_id} -> delivered to {receivers}")

    system.run(ui.da_id, policy=DeveloperPolicy(system, ui.da_id, 4))
    print(f"  ui finished its cycle at t={system.clock.now:.0f} min "
          f"(it could read auth's pre-release while auth was still "
          f"uncommitted)")

    # --- system-level development --------------------------------------------
    print("\n=== system-level develop/test/debug/integrate ===")
    status = system.run(top.da_id,
                        policy=DeveloperPolicy(system, top.da_id, 7))
    leaf = max(system.repository.graph(top.da_id).leaves(),
               key=lambda d: d.created_at)
    print(f"  work flow done={status.done}, DOPs={status.executed_dops}")
    print(f"  release: {leaf.data.get('release')}")
    print(f"  final DOVs: {top.final_dovs}")
    print(f"  total simulated development time: "
          f"{system.clock.now / 60:.1f} hours")

    print("\n=== the same machinery as chip planning ===")
    print(f"  levels traced: {system.level_summary()}")
    tools = system.runtime(top.da_id).dm.executed_tools
    print(f"  system DA tool sequence: {' -> '.join(tools)}")


if __name__ == "__main__":
    main()
