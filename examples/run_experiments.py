#!/usr/bin/env python3
"""Regenerate every figure (F1-F8), experiment (T1-T6) and ablation (A1-A3).

Prints the full reproduction report; this is the script behind
EXPERIMENTS.md.

Run with:  python examples/run_experiments.py [F1|T3|...]
"""

import sys

from repro.bench import ALL_ABLATIONS, ALL_EXPERIMENTS, ALL_FIGURES


def main() -> None:
    wanted = set(a.upper() for a in sys.argv[1:])
    drivers = {**ALL_FIGURES, **ALL_EXPERIMENTS, **ALL_ABLATIONS}
    for name, driver in drivers.items():
        if wanted and name not in wanted:
            continue
        result = driver()
        print(result.render())
        print()


if __name__ == "__main__":
    main()
