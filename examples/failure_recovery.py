#!/usr/bin/env python3
"""Failure handling across all three levels (Sect.5, Fig.8).

Walks through CONCORD's joint failure model:

1. **savepoints / suspend & resume** inside a long DOP (TE level),
2. a **workstation crash in the middle of a DOP** — the client-TM
   restores the context from the most recent recovery point (taken
   automatically after checkout and every 30 simulated minutes),
3. a **workstation crash between DOPs** — the DM rebuilds its script
   position by replaying the persistent log (forward recovery),
4. a **server crash** — the repository redoes committed DOVs from the
   WAL and the CM reloads the persistent DA-hierarchy state.

Run with:  python examples/failure_recovery.py
"""

from repro.bench.scenarios import make_vlsi_system, run_full_chip_design


def main() -> None:
    system = make_vlsi_system(("ws-1",), recovery_interval=30.0)
    da = run_full_chip_design(system)
    client_tm = system.runtime(da.da_id).client_tm
    basis = system.repository.graph(da.da_id).leaves()[0].dov_id

    # --- 1. savepoints and suspend/resume -------------------------------
    print("=== savepoints, suspend/resume (Sect.4.3) ===")
    dop = client_tm.begin_dop(da.da_id, "chip_planner")
    client_tm.checkout(dop, basis)
    client_tm.work(dop, 20.0,
                   mutate=lambda c: c.tool_state.update(phase="rough"))
    client_tm.save(dop, "after-rough-plan")
    client_tm.work(dop, 15.0,
                   mutate=lambda c: c.tool_state.update(phase="detail"))
    print(f"  phase before restore: {dop.context.tool_state['phase']}")
    client_tm.restore(dop, "after-rough-plan")
    print(f"  phase after restore:  {dop.context.tool_state['phase']} "
          f"(designer rolled back to the marked state)")
    client_tm.suspend(dop)
    print(f"  DOP suspended at work_done="
          f"{dop.context.work_done:.0f} min ... designer goes home")
    client_tm.resume(dop)
    print(f"  resumed with identical state: work_done="
          f"{dop.context.work_done:.0f} min")

    # --- 2. workstation crash mid-DOP ------------------------------------
    print("\n=== workstation crash in the middle of a DOP ===")
    client_tm.work(dop, 25.0)   # recovery point due at 30 min intervals
    before = dop.context.work_done
    system.crash_workstation("ws-1")
    print(f"  CRASH at work_done={before:.0f} min "
          f"(volatile DOP context lost)")
    system.network.restart_node("ws-1")
    recovered, _ = client_tm.recover_dop(dop.dop_id, da.da_id,
                                         "chip_planner")
    print(f"  client-TM restored the context from the most recent "
          f"recovery point: work_done={recovered.context.work_done:.0f} "
          f"min (lost {before - recovered.context.work_done:.0f} min, "
          f"not {before:.0f})")
    client_tm.abort_dop(recovered, "example cleanup")

    # --- 3. workstation crash between DOPs --------------------------------
    print("\n=== workstation crash between DOPs (DM forward recovery) ===")
    system2 = make_vlsi_system(("ws-1",))
    da2 = run_full_chip_design(system2)
    dm = system2.runtime(da2.da_id).dm
    print(f"  before crash: {dm.executed_dops} DOPs executed, "
          f"script done={dm.cursor.is_done()}")
    system2.crash_workstation("ws-1")
    reports = system2.restart_workstation("ws-1")
    report = reports[da2.da_id]
    print(f"  after restart: replayed "
          f"{report['script_positions_replayed']} logged script "
          f"positions; {report['executed_dops']} DOPs intact; "
          f"script done={dm.cursor.is_done()}")

    # --- 4. server crash ----------------------------------------------------
    print("\n=== server crash (repository redo + CM state reload) ===")
    durable_before = len(system2.repository.store)
    das_before = len(system2.cm.das())
    system2.crash_server()
    print(f"  CRASH: repository volatile state and CM registries gone")
    system2.restart_server()
    print(f"  restart: {len(system2.repository.store)}/{durable_before} "
          f"durable DOVs redone from the WAL, "
          f"{len(system2.cm.das())}/{das_before} DAs reloaded from the "
          f"persistent hierarchy state")
    print(f"  scope checks still work: "
          f"{sorted(system2.cm.scope_of(da2.da_id))[:3]} ...")


if __name__ == "__main__":
    main()
