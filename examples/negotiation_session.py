#!/usr/bin/env python3
"""A full negotiation session over a shared borderline (Sect.4.1).

The paper's scenario: DA1 sets a negotiation relationship between DA2
and DA3 "concerning the area for both subcells, A and B. Due to
negotiation, the two connected sub-DAs are now allowed to move the
borderline between A and B horizontally."

This example plays the whole protocol on the real cooperation manager:

* the super-DA establishes the relationship explicitly
  (Create_Negotiation_Relationship),
* A opens greedily, B disagrees, A concedes round by round (Propose /
  Disagree with counter-proposals),
* agreement applies the feature changes to *both* specifications and
  resumes both DAs,
* a second, infeasible negotiation escalates via
  Sub_DAs_Specification_Conflict, and the super-DA resolves it with
  Modify_Sub_DA_Specification.

Run with:  python examples/negotiation_session.py
"""

from repro.bench.scenarios import chip_spec, make_vlsi_system
from repro.core.features import RangeFeature
from repro.dc.script import DopStep, Script, Sequence
from repro.vlsi.tools import vlsi_dots


def build_team():
    system = make_vlsi_system(("ws-1", "ws-2", "ws-3"))
    dots = vlsi_dots()
    noop = Script(Sequence(DopStep("structure_synthesis")), "noop")
    top = system.init_design(
        dots["Chip"], chip_spec(100, 100), "lead", noop, "ws-1",
        initial_data={"cell": "cell-0", "level": "chip",
                      "behavior": {"operations": ["A", "B"]}})
    system.start(top.da_id)
    sub_a = system.create_sub_da(top.da_id, dots["Module"],
                                 chip_spec(95, 100), "anna", noop, "ws-2")
    sub_b = system.create_sub_da(top.da_id, dots["Module"],
                                 chip_spec(95, 100), "ben", noop, "ws-3")
    system.start(sub_a.da_id)
    system.start(sub_b.da_id)
    return system, top, sub_a, sub_b


def negotiate(system, top, sub_a, sub_b, need_a, need_b, total=100.0,
              concession=10.0):
    negotiation = system.cm.create_negotiation_relationship(
        top.da_id, sub_a.da_id, sub_b.da_id,
        subject="the A/B borderline")
    print(f"  {top.da_id} set negotiation "
          f"{negotiation.negotiation_id} (A needs {need_a}, "
          f"B needs {need_b}, span {total})")

    claim = total * 0.95
    while True:
        proposal = system.cm.propose(
            sub_a.da_id, sub_b.da_id,
            changes={
                sub_a.da_id: [RangeFeature("width-limit", "width",
                                           hi=claim)],
                sub_b.da_id: [RangeFeature("width-limit", "width",
                                           hi=total - claim)],
            }, note=f"border at {claim:.0f}")
        b_share = total - claim
        print(f"    A proposes border at {claim:5.1f} "
              f"(B would get {b_share:5.1f}) ... ", end="")
        if b_share >= need_b and claim >= need_a:
            system.cm.agree(sub_b.da_id, proposal.proposal_id)
            print("B agrees")
            print(f"    agreed: A.width <= "
                  f"{system.cm.da(sub_a.da_id).spec.feature('width-limit').hi}"
                  f", B.width <= "
                  f"{system.cm.da(sub_b.da_id).spec.feature('width-limit').hi}")
            print(f"    states: A={system.cm.da(sub_a.da_id).state.value},"
                  f" B={system.cm.da(sub_b.da_id).state.value}")
            return negotiation
        system.cm.disagree(sub_b.da_id, proposal.proposal_id)
        print("B disagrees")
        claim -= concession
        if claim < need_a:
            print("    A cannot concede below its own need -> "
                  "escalation")
            super_id = system.cm.sub_das_specification_conflict(
                sub_a.da_id, negotiation.negotiation_id)
            conflict = system.cm.pop_messages(
                super_id, "specification_conflict")
            print(f"    {super_id} informed "
                  f"(messages: {[m.kind for m in conflict]})")
            return negotiation


def main() -> None:
    print("=== feasible negotiation: A needs 40, B needs 35 ===")
    system, top, sub_a, sub_b = build_team()
    negotiation = negotiate(system, top, sub_a, sub_b,
                            need_a=40.0, need_b=35.0)
    print(f"  rounds: {negotiation.rounds()}, "
          f"escalations: {negotiation.escalations}")

    print("\n=== infeasible negotiation: A needs 60, B needs 60 ===")
    system, top, sub_a, sub_b = build_team()
    negotiation = negotiate(system, top, sub_a, sub_b,
                            need_a=60.0, need_b=60.0)
    print(f"  rounds: {negotiation.rounds()}, "
          f"escalations: {negotiation.escalations}")
    print("  super-DA resolves by reformulating both goals "
          "(Modify_Sub_DA_Specification):")
    system.cm.modify_sub_da_specification(top.da_id, sub_a.da_id,
                                          chip_spec(60, 100))
    system.cm.modify_sub_da_specification(top.da_id, sub_b.da_id,
                                          chip_spec(60, 120))
    print(f"    A now gets width <= 60 at full height, B gets width "
          f"<= 60 at extended height")
    print(f"    protocol log: {len(system.cm.log)} records")


if __name__ == "__main__":
    main()
