#!/usr/bin/env python3
"""Recursive top-down chip planning over a whole cell hierarchy.

"In a top-down fashion, a floorplan is computed for each cell of the
hierarchy by recursively applying the chip planner" (Sect.3).  This
example plans the paper's sample chip (chip -> ALU/control unit ->
blocks), creating one DA per inner cell: delegation follows the cell
hierarchy, every sub-DA is seeded with its placement interface from
the parent's floorplan, and finished subtrees devolve their final DOVs
upward level by level.

Run with:  python examples/recursive_planning.py
"""

from repro.bench.scenarios import recursive_planning_scenario
from repro.core.states import DaState
from repro.vlsi.cells import sample_hierarchy


def main() -> None:
    hierarchy = sample_hierarchy()
    system, report = recursive_planning_scenario(hierarchy=hierarchy)

    print("=== recursive planning of the sample chip ===")
    print(f"  {len(report.das)} design activities, one per inner cell\n")

    def show(cell, indent=0):
        da_id = report.das.get(cell.name)
        if da_id is None:
            return
        plan = report.floorplans.get(cell.name, (0.0, 0.0))
        state = system.cm.da(da_id).state.value
        print("  " * indent
              + f"- {cell.name:14s} {da_id:6s} depth="
                f"{report.depths[cell.name]} floorplan="
                f"{plan[0]:.1f}x{plan[1]:.1f} [{state}]")
        for child in cell.children:
            show(child, indent + 1)

    show(hierarchy.root)

    terminated = [d for d in system.cm.das()
                  if d.state is DaState.TERMINATED]
    print(f"\n  {len(terminated)} sub-DAs committed; devolutions:")
    for sub_id, dovs in report.devolved.items():
        print(f"    {sub_id} -> parent: {dovs}")

    root_id = report.das[hierarchy.root.name]
    print(f"\n  root scope now holds "
          f"{len(system.cm.scope_of(root_id))} DOVs")
    print(f"  cooperation protocol log: {len(system.cm.log)} records")
    print(f"  simulated design time: {system.clock.now / 60:.1f} hours")


if __name__ == "__main__":
    main()
