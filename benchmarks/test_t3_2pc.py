"""Benchmark T3 — two-phase-commit optimisations."""

from conftest import report

from repro.bench.experiments import run_t3


def test_t3_2pc_variants(benchmark):
    result = benchmark(run_t3)
    report(result)
    rows = {(r["protocol"], r["case"]): r for r in result.rows}
    assert rows[("presumed_abort", "one-no abort")]["messages"] \
        < rows[("basic", "one-no abort")]["messages"]
    assert rows[("presumed_abort", "one-no abort")]["forced_writes"] \
        < rows[("basic", "one-no abort")]["forced_writes"]
    assert rows[("presumed_abort+ro", "read-only mix")]["messages"] \
        < rows[("presumed_abort", "read-only mix")]["messages"]
