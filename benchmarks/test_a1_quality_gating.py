"""Ablation A1 — quality-gated propagation vs ungated early release."""

from conftest import report

from repro.bench.ablations import run_a1


def test_a1_quality_gating(benchmark):
    result = benchmark.pedantic(run_a1, rounds=1, iterations=1)
    report(result)
    by_team = {}
    for row in result.rows:
        by_team.setdefault(row["team"], []).append(row)
    for rows in by_team.values():
        ordered = sorted(rows, key=lambda r: r["rework_probability"])
        reworks = [r["rework"] for r in ordered]
        assert reworks == sorted(reworks), \
            "rework grows as the quality gate weakens"
        assert ordered[0]["makespan"] < ordered[-1]["makespan"]
