"""Benchmark T2 — lost work after a workstation crash."""

from conftest import report

from repro.bench.experiments import run_t2


def test_t2_lost_work(benchmark):
    result = benchmark(run_t2)
    report(result)
    rows = {(r["model"], r["crash_time"]): r["lost_work"]
            for r in result.rows}
    crash_times = sorted({t for (_, t) in rows})
    flat = [rows[("flat_acid", t)] for t in crash_times]
    assert flat == crash_times, "flat ACID loses everything since start"
    for t in crash_times:
        assert rows[("concord(rp=10)", t)] < 10.0
        assert rows[("concord(rp=30)", t)] < 30.0
        assert rows[("nested", t)] <= 70.0  # bounded by the longest step
