"""Benchmark T10 — federated atomic commit under injected crashes."""

from conftest import report

from repro.bench.experiments import run_t10
from repro.bench.scorecard import _check_t10


def test_t10_federated_commit(benchmark):
    result = benchmark.pedantic(run_t10, rounds=1, iterations=1)
    report(result)
    # single source of truth: the scorecard's T10 shape check
    # (identical durable state across every crash placement, zero
    # atomicity violations, crash-before aborts+retries under presumed
    # abort, crash-after redoes from the logged decision)
    problem = _check_t10(result)
    assert problem is None, problem
