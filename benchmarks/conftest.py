"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's figures (F1-F8) or one
quantitative experiment (T1-T6), prints the resulting table (the
figure-equivalent output), and asserts the expected qualitative shape.
Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations


def report(result) -> None:
    """Print an ExperimentResult table into the benchmark output."""
    print()
    print(result.render())
