"""Ablation A3 — local (main-memory) commit optimisation."""

from conftest import report

from repro.bench.ablations import run_a3


def test_a3_local_commit_fast_path(benchmark):
    result = benchmark(run_a3)
    report(result)
    assert result.data["speedup"] > 5.0, \
        "the main-memory fast path must dominate same-machine commits"
