#!/usr/bin/env python3
"""Run the zero-copy perf harness and emit ``BENCH_PERF.json``.

Standalone entry point for the CI perf job and for local trajectory
runs (it bootstraps ``src/`` onto ``sys.path`` itself, so no
``PYTHONPATH`` is needed)::

    python benchmarks/perf/run_perf.py [--quick] [--repeats N] [--out PATH]

The artifact lands at the repo root by default; compare two runs with
``python tools/bench_report.py NEW.json OLD.json``.  See
``docs/performance.md`` for how to read the numbers.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.bench.perf import DEFAULT_ARTIFACT, render, run_perf  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smoke-test op counts (timings meaningless)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N repeats per measurement")
    parser.add_argument("--out", default=str(_REPO_ROOT / DEFAULT_ARTIFACT),
                        help="artifact path (default: repo root)")
    args = parser.parse_args(argv)
    report = run_perf(quick=args.quick, repeats=args.repeats,
                      emit_path=args.out)
    print(render(report))
    print(f"note: wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
