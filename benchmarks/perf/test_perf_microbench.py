"""Smoke benchmark of the zero-copy perf harness.

Runs the microbenchmark suite in quick mode (tiny op counts — the
timings are not the point here), prints the report, and asserts the
artifact shape plus the one qualitative claim that is robust even
under CI noise: the frozen buffer-hit path beats the deepcopy
baseline.  The *quantitative* >= 3x acceptance bar is checked on the
full run (``python benchmarks/perf/run_perf.py``), whose artifact is
committed as ``BENCH_PERF.json``.
"""

from __future__ import annotations

import json

from repro.bench.perf import render, run_perf

EXPECTED = {
    "checkout_buffer_hit",
    "checkout_checkin_write_through",
    "group_checkin_flush",
    "cross_workstation_group_commit",
    "kernel_events",
    "kernel_timer_churn",
    "payload_sizing",
    "scorecard_wall_clock",
    "shard_scaling",
    "federation_scaling",
}


def test_perf_harness_smoke(tmp_path):
    artifact = tmp_path / "BENCH_PERF.json"
    report = run_perf(quick=True, repeats=1, emit_path=artifact)
    print()
    print(render(report))

    assert set(report["benchmarks"]) == EXPECTED
    assert len(report["benchmarks"]) >= 4
    for bench in report["benchmarks"].values():
        assert bench["ops_per_sec"] > 0.0
    # even at smoke-test op counts the frozen path clearly beats the
    # deepcopy baseline on the buffer-hit read path
    hit = report["benchmarks"]["checkout_buffer_hit"]
    assert hit["speedup_vs_deepcopy_baseline"] >= 2.0
    # the artifact on disk is the report, unabridged
    assert json.loads(artifact.read_text()) == report
