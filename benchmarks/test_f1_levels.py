"""Benchmark F1 — Fig.1: abstraction levels of the CONCORD model."""

from conftest import report

from repro.bench.figures import run_f1


def test_f1_abstraction_levels(benchmark):
    result = benchmark.pedantic(run_f1, rounds=1, iterations=1)
    report(result)
    counts = result.data["counts"]
    assert counts["AC"] > 0 and counts["DC"] > 0 and counts["TE"] > 0
    assert counts["TE"] > counts["DC"]
