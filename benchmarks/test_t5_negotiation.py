"""Benchmark T5 — negotiation convergence vs conflict severity."""

from conftest import report

from repro.bench.experiments import run_t5


def test_t5_negotiation(benchmark):
    result = benchmark.pedantic(run_t5, rounds=1, iterations=1)
    report(result)
    rows = sorted(result.rows, key=lambda r: r["severity"])
    feasible = [r for r in rows if r["severity"] <= 1.0]
    rounds = [r["rounds"] for r in feasible]
    assert rounds == sorted(rounds), \
        "rounds grow as the feasible region shrinks"
    assert all(r["outcome"] == "agreed" for r in feasible)
    infeasible = [r for r in rows if r["severity"] > 1.0]
    assert all(r["outcome"] == "escalated" for r in infeasible)
