"""Benchmark F5 — Fig.5: the delegation scenario within chip planning."""

from conftest import report

from repro.bench.figures import run_f5


def test_f5_delegation_scenario(benchmark):
    result = benchmark.pedantic(run_f5, rounds=1, iterations=1)
    report(result)
    scenario = result.data["report"]
    assert scenario.impossible_from
    assert len(scenario.modified_specs) == 2
    assert sum(len(v) for v in scenario.inherited_dovs.values()) >= 4
