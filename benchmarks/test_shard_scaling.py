"""The shard-scaling curve of the multi-process kernel, full size.

Marked ``slow``: this is the full T11 saturation-storm measurement
behind the ``shard_scaling`` entry of ``BENCH_PERF.json`` — 400
workstations on real spawned worker processes at 2 and 4 shards,
checked both ways: the merged trace must be byte-identical to the
single-process :class:`~repro.sim.shard.ShardedKernel` run, and the
capacity speedup (events per busiest-worker CPU second) at 4 workers
must clear the committed acceptance floor.  Wall clock is reported
but never gated — CI containers pin the suite to one core.
"""

from __future__ import annotations

import pytest

from repro.bench.perf import SHARD_SCALING_MIN_SPEEDUP, _measure_shard_scaling

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def scaling():
    return _measure_shard_scaling(quick=False)


class TestShardScalingCurve:
    def test_every_parallel_run_merges_byte_identical(self, scaling):
        assert scaling["trace_identical"]
        for name, run in scaling["runs"].items():
            assert run["trace_identical"], name

    def test_capacity_speedup_clears_the_acceptance_floor(self, scaling):
        four = scaling["runs"]["shards=4"]
        assert four["capacity_speedup"] >= SHARD_SCALING_MIN_SPEEDUP, (
            f"shards=4 capacity speedup {four['capacity_speedup']}x "
            f"below the {SHARD_SCALING_MIN_SPEEDUP}x floor "
            f"(rollbacks={four['rollbacks']}, "
            f"rolled_back={four['rolled_back_events']})")

    def test_curve_rises_with_shard_count(self, scaling):
        two = scaling["runs"]["shards=2"]
        four = scaling["runs"]["shards=4"]
        assert four["capacity_speedup"] > two["capacity_speedup"]

    def test_rollbacks_stay_a_small_fraction(self, scaling):
        """Speculation must pay for itself: rolled-back (re-executed)
        events stay well below the total executed once per run."""
        total = scaling["ops"]
        for name, run in scaling["runs"].items():
            assert run["rolled_back_events"] < total, name

    def test_print_the_curve(self, scaling):
        print()
        print(f"shard_scaling: baseline "
              f"{scaling['baseline_ops_per_sec']:,.0f} events/cpu-s, "
              f"work shares {scaling['work_shares']}")
        for name, run in scaling["runs"].items():
            print(f"  {name}: {run['events_per_cpu_sec']:,.0f} "
                  f"events/cpu-s ({run['capacity_speedup']}x), "
                  f"{run['rounds']} rounds, "
                  f"{run['rollbacks']} rollbacks "
                  f"({run['rolled_back_events']} events replayed), "
                  f"wall {run['wall_seconds']}s")
