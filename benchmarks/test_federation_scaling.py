"""The federation-scaling curve at full size, gated.

Marked ``slow``: this is the full measurement behind the
``federation_scaling`` entry of ``BENCH_PERF.json`` — the same
16-version cross-member batch over the same four pinned DAs as the
federation grows 4 -> 16 -> 64 members.  With the placement index,
home resolution is O(batch) regardless of member count, so the
seconds-per-batch curve must stay *flat* (largest / smallest within
the committed ceiling); the bounded-log run must keep the decision
log's record count inside twice the checkpoint window across >= 3
truncation cycles and still recover cleanly from a coordinator crash
over the truncated log.  Wall clock is reported but the flatness gate
is a ratio, so CI core pinning cannot tilt it.
"""

from __future__ import annotations

import pytest

from repro.bench.perf import (
    FEDERATION_FLATNESS_MAX,
    FEDERATION_LOG_WINDOW,
    _measure_federation_scaling,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def scaling():
    return _measure_federation_scaling(quick=False, repeats=3)


class TestFederationScalingCurve:
    def test_flatness_clears_the_acceptance_ceiling(self, scaling):
        assert scaling["flatness"] is not None
        assert scaling["flatness"] <= FEDERATION_FLATNESS_MAX, (
            f"cost per batch grew {scaling['flatness']}x from the "
            f"smallest to the largest federation (ceiling "
            f"{FEDERATION_FLATNESS_MAX}x): sweep={scaling['sweep']}")

    def test_sweep_covers_an_order_of_magnitude(self, scaling):
        assert len(scaling["sweep"]) == 3
        assert "members=64" in scaling["sweep"]

    def test_indexed_path_beats_the_member_scan(self, scaling):
        """At 64 members the seed's per-version scan pays for 64
        ``staged_ids()`` snapshots per version; the index must win."""
        assert scaling["speedup_vs_baseline"] is not None
        assert scaling["speedup_vs_baseline"] > 1.0, (
            f"indexed resolution {scaling['speedup_vs_baseline']}x vs "
            f"the member scan at the largest sweep point")

    def test_bounded_log_survives_truncation_cycles(self, scaling):
        bounded = scaling["bounded_log"]
        assert bounded["ok"], bounded
        assert bounded["window"] == FEDERATION_LOG_WINDOW
        assert bounded["truncations"] >= 3
        assert bounded["peak_wal_records"] \
            <= bounded["max_wal_records"]

    def test_print_the_curve(self, scaling):
        print()
        print(f"federation_scaling: flatness {scaling['flatness']}x "
              f"(max {scaling['flatness_max']}x), "
              f"{scaling['ops_per_sec']} batches/s at the largest "
              f"sweep point")
        for name, ms in scaling["sweep"].items():
            print(f"  {name}: {ms} ms/batch")
        print(f"  baseline (member scan): "
              f"{scaling['baseline_ms_per_batch']} ms/batch "
              f"({scaling['speedup_vs_baseline']}x)")
        bounded = scaling["bounded_log"]
        print(f"  bounded log: peak {bounded['peak_wal_records']} "
              f"records (max {bounded['max_wal_records']}), "
              f"{bounded['truncations']} truncations, "
              f"{bounded['forgotten_decisions']} forgotten")
