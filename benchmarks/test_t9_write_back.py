"""Benchmark T9 — write-back buffers: group checkin vs eager shipping."""

from conftest import report

from repro.bench.experiments import run_t9
from repro.bench.scorecard import _check_t9


def test_t9_write_back(benchmark):
    result = benchmark.pedantic(run_t9, rounds=1, iterations=1)
    report(result)
    # single source of truth: the scorecard's T9 shape check
    # (write-back strictly fewer bytes at a makespan no worse,
    # identical sessions, real batching + coalescing, write-through
    # never batches, server restart keeps re-validated entries warm)
    problem = _check_t9(result)
    assert problem is None, problem
