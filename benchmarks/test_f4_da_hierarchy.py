"""Benchmark F4 — Fig.4: design activities and DA hierarchies."""

from conftest import report

from repro.bench.figures import run_f4


def test_f4_da_hierarchy(benchmark):
    result = benchmark.pedantic(run_f4, rounds=1, iterations=1)
    report(result)
    hierarchy = result.data["hierarchy"]
    assert len(hierarchy["roots"]) == 1
    assert len(hierarchy["roots"][0]["children"]) == 4
