"""Benchmark F7 — Fig.7: the DA state/transition graph."""

from conftest import report

from repro.bench.figures import run_f7


def test_f7_state_transition_graph(benchmark):
    result = benchmark(run_f7)
    report(result)
    assert result.data["legal"] + result.data["illegal"] == 5 * 15
    assert result.data["legal"] == len(result.data["table"])
