"""Benchmark F2 — Fig.2: the design plane traversal."""

from conftest import report

from repro.bench.figures import run_f2


def test_f2_design_plane(benchmark):
    result = benchmark(run_f2)
    report(result)
    tools = result.data["tool_order"]
    assert tools[0] == "structure_synthesis"
    assert tools[-1] == "chip_assembly"
    assert len(result.rows) == 4
