"""Benchmark T8 — workstation object buffers: cached data shipping."""

from conftest import report

from repro.bench.experiments import run_t8


def test_t8_object_buffers(benchmark):
    result = benchmark.pedantic(run_t8, rounds=1, iterations=1)
    report(result)
    rows = {(r["team"], r["write_mix"], r["caching"]): r
            for r in result.rows}
    configs = {(r["team"], r["write_mix"]) for r in result.rows}
    for team, write_mix in configs:
        cached = rows[(team, write_mix, True)]
        uncached = rows[(team, write_mix, False)]
        # same seed, same team: caching ships strictly fewer bytes
        # and finishes strictly earlier
        assert cached["bytes_shipped"] < uncached["bytes_shipped"]
        assert cached["makespan"] < uncached["makespan"]
        # buffers actually serve re-reads
        assert cached["hit_rate"] > 0.0
        assert uncached["hit_rate"] == 0.0
        # lease-based coherence is exercised: superseding checkins
        # revoke buffered copies
        assert cached["checkins"] > 0
        assert cached["invalidations"] > 0
        assert uncached["invalidations"] == 0
        # both paths execute the identical designer sessions
        assert cached["checkins"] == uncached["checkins"]
