"""Benchmark F3 — Fig.3: the chip-planning work flow."""

from conftest import report

from repro.bench.figures import run_f3


def test_f3_chip_planning(benchmark):
    result = benchmark.pedantic(run_f3, rounds=1, iterations=1)
    report(result)
    floorplan = result.data["floorplan"]
    assert floorplan.validate() == []
    assert floorplan.subcell_interfaces()
