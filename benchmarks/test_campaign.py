"""The design-campaign soak: a simulated week of team load.

Marked ``slow``: this is the long-running profile of the scenario DSL
(diurnal load, hotspot objects, designer churn over several simulated
days) and runs only in the non-blocking benchmarks job
(``REPRO_RUN_SLOW=1``), never in the blocking tier-1 suite.
"""

from __future__ import annotations

import pytest

from repro.scenario import canonical_scenarios, compile_scenario
from repro.sim.trace import record_scenario, replay_trace

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def week_report():
    return compile_scenario(
        canonical_scenarios()["campaign_design_week"]).run()


class TestDesignWeekSoak:
    def test_the_week_completes_every_session(self, week_report):
        config = canonical_scenarios()["campaign_design_week"]
        expected = (config.get("campaign", "days")
                    * config.get("campaign", "sessions_per_day")
                    * config.get("team", "size"))
        assert week_report.sessions == expected
        assert week_report.steps == expected \
            * config.get("team", "steps_per_session")

    def test_diurnal_profile_spans_every_day(self, week_report):
        assert len(week_report.bytes_by_day) == week_report.days
        assert all(day_bytes > 0
                   for day_bytes in week_report.bytes_by_day)

    def test_churn_cooled_buffers_each_morning(self, week_report):
        assert week_report.churn_events == week_report.days - 1
        assert week_report.churned_entries > 0

    def test_hotspots_draw_skewed_traffic(self, week_report):
        assert week_report.hotspot_reads > 0
        assert week_report.hit_rate > 0.3

    def test_leases_invalidate_stale_hot_copies(self, week_report):
        assert week_report.checkins > 0
        assert week_report.invalidations_sent > 0

    def test_the_soak_records_and_replays(self):
        config = canonical_scenarios()["campaign_design_week"]
        trace = record_scenario(config)
        assert len(trace.events) > 500
        diff = replay_trace(trace)
        assert diff.identical, diff.render()
