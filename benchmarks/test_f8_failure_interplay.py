"""Benchmark F8 — Fig.8: joint failure handling of the managers."""

from conftest import report

from repro.bench.figures import run_f8


def test_f8_failure_interplay(benchmark):
    result = benchmark.pedantic(run_f8, rounds=1, iterations=1)
    report(result)
    before, after = result.data["dov_recovery"]
    assert after == before
    das_before, das_after = result.data["da_recovery"]
    assert das_after == das_before
