"""Benchmark T4 — lock manager throughput and scope-lock costs."""

from conftest import report

from repro.bench.experiments import run_t4


def test_t4_lock_manager(benchmark):
    result = benchmark.pedantic(run_t4, rounds=1, iterations=1)
    report(result)
    sharing_rows = [r for r in result.rows
                    if "derivation conflicts" in r["measure"]]
    values = [r["value"] for r in sharing_rows]
    assert values == sorted(values), \
        "conflicts grow with the sharing level"
    throughput = next(r for r in result.rows
                      if "short-lock" in r["measure"])
    assert throughput["value"] > 1000
