"""Benchmark T7 — concurrent DA execution on the unified kernel."""

from conftest import report

from repro.bench.experiments import run_t7


def test_t7_concurrent_kernel(benchmark):
    result = benchmark.pedantic(run_t7, rounds=1, iterations=1)
    report(result)
    rows = {(r["team"], r["mode"]): r for r in result.rows}
    for team in {r["team"] for r in result.rows}:
        sequential = rows[(team, "sequential")]
        concurrent = rows[(team, "concurrent")]
        # interleaving wins, and the gap grows with the team size
        assert concurrent["makespan"] < sequential["makespan"]
        assert sequential["makespan"] >= \
            concurrent["makespan"] * (team - 0.5)
        # both paths reach identical final DA states
        assert concurrent["states_match"]
        crashed = rows[(team, f"concurrent+crash(ws-"
                              f"{'ABCDEF'[team - 1]})")]
        # the crash costs redone work + downtime, not a full restart
        assert crashed["makespan"] < sequential["makespan"]
        assert crashed["makespan"] >= concurrent["makespan"]
        assert crashed["states_match"]
