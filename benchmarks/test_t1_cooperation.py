"""Benchmark T1 — cooperation vs isolation: team makespan."""

from conftest import report

from repro.bench.experiments import run_t1


def test_t1_team_makespan(benchmark):
    result = benchmark.pedantic(run_t1, rounds=1, iterations=1)
    report(result)
    by_team = {}
    for row in result.rows:
        if row["topology"] != "chain":
            continue
        by_team.setdefault(row["team"], {})[row["model"]] = row
    for models in by_team.values():
        # CONCORD strictly wins; ConTracts never beats CONCORD and never
        # loses to flat ACID (it ties flat for 2-person teams, where the
        # single dependency serialises both models completely)
        assert models["concord"]["makespan"] \
            < models["contracts"]["makespan"]
        assert models["contracts"]["makespan"] \
            <= models["flat_acid"]["makespan"]
    teams = sorted(by_team)
    gaps = [by_team[t]["flat_acid"]["makespan"]
            - by_team[t]["concord"]["makespan"] for t in teams]
    assert gaps == sorted(gaps), "gap must grow with team size"
    # fan-in topology: concord still wins for every team size
    for row in result.rows:
        if row["topology"] == "fan-in" and row["model"] == "flat_acid":
            concord = next(
                r for r in result.rows
                if r["topology"] == "fan-in" and r["team"] == row["team"]
                and r["model"] == "concord")
            assert concord["makespan"] <= row["makespan"]
