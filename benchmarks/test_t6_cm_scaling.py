"""Benchmark T6 — cooperation manager scalability."""

from conftest import report

from repro.bench.experiments import run_t6


def test_t6_cm_scaling(benchmark):
    result = benchmark.pedantic(run_t6, rounds=1, iterations=1)
    report(result)
    sizes = [r["hierarchy_size"] for r in result.rows]
    logs = [r["protocol_log_records"] for r in result.rows]
    assert logs == sorted(logs)
    # protocol log grows linearly: records per DA stay constant
    per_da = [log / size for log, size in zip(logs, sizes)]
    assert max(per_da) - min(per_da) < 1.0
