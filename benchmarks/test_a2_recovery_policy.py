"""Ablation A2 — recovery-point interval trade-off."""

from conftest import report

from repro.bench.ablations import run_a2


def test_a2_recovery_point_interval(benchmark):
    result = benchmark(run_a2)
    report(result)
    numeric = [r for r in result.rows if r["interval"] != "off"]
    losses = [r["mean_lost"] for r in numeric]
    writes = [r["recovery_point_writes"] for r in numeric]
    assert losses == sorted(losses), "tighter interval, less loss"
    assert writes == sorted(writes, reverse=True), \
        "tighter interval, more recovery-point writes"
    off = next(r for r in result.rows if r["interval"] == "off")
    assert off["recovery_point_writes"] == min(
        r["recovery_point_writes"] for r in result.rows)
