"""Benchmark F6 — Fig.6: sample scripts (open segments, alternatives)."""

from conftest import report

from repro.bench.figures import run_f6


def test_f6_sample_scripts(benchmark):
    result = benchmark(run_f6)
    report(result)
    assert result.data["fig6a_executed"][0] == "structure_synthesis"
    assert result.data["fig6a_executed"][-1] == "chip_assembly"
    assert len(result.data["fig6b_sequences"]) == 3
