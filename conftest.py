"""Repo-root pytest configuration: the slow-marker split.

The tier-1 suite must stay fast, so tests marked ``slow`` (multi-day
scenario soaks) are skipped by default and run only when the
``REPRO_RUN_SLOW`` environment variable is set — CI enables it in the
non-blocking benchmarks job, never in the blocking tests job.
"""

from __future__ import annotations

import os

import pytest


def pytest_collection_modifyitems(config, items):
    if os.environ.get("REPRO_RUN_SLOW"):
        return
    skip_slow = pytest.mark.skip(
        reason="slow soak; set REPRO_RUN_SLOW=1 to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
