"""CONCORD — Capturing Design Dynamics (Ritter et al., ICDE 1994).

A full reproduction of the CONCORD model: a three-level processing
model for cooperative design applications.

* **AC level** (:mod:`repro.core`) — design activities, delegation /
  usage / negotiation relationships, the cooperation manager;
* **DC level** (:mod:`repro.dc`) — scripts, domain constraints, ECA
  rules, the design manager with recoverable script execution;
* **TE level** (:mod:`repro.te`) — design operations as long ACID
  transactions with savepoints, suspend/resume and recovery points,
  run by the client/server transaction-manager pair;

on top of the substrates the paper assumes: a versioned design data
repository (:mod:`repro.repository`), a simulated workstation/server
LAN with transactional RPC and two-phase commit (:mod:`repro.net`),
and the PLAYOUT-style VLSI design domain (:mod:`repro.vlsi`).

Quickstart::

    from repro import ConcordSystem, DesignSpecification, RangeFeature
    from repro.dc import Script, Sequence, DopStep

    system = ConcordSystem()
    system.add_workstation("ws-1")
    ...

See ``examples/quickstart.py`` for a complete runnable walkthrough.
"""

from repro.core import (
    ConcordSystem,
    CooperationManager,
    DaOperation,
    DaState,
    DesignActivity,
    DesignSpecification,
    PredicateFeature,
    QualityState,
    RangeFeature,
    TestToolFeature,
)
from repro.dc import (
    Alternative,
    DaOpStep,
    DesignManager,
    DesignerPolicy,
    DopStep,
    Iteration,
    Open,
    Parallel,
    Script,
    Sequence,
    ToolRegistry,
)
from repro.repository import (
    AttributeDef,
    AttributeKind,
    DesignDataRepository,
    DesignObjectType,
)
from repro.sim import Kernel
from repro.te import ClientTM, DesignOperation, DopState, ServerTM
from repro.util import ConcordError

__version__ = "1.0.0"

__all__ = [
    "Alternative",
    "AttributeDef",
    "AttributeKind",
    "ClientTM",
    "ConcordError",
    "ConcordSystem",
    "CooperationManager",
    "DaOpStep",
    "DaOperation",
    "DaState",
    "DesignActivity",
    "DesignDataRepository",
    "DesignManager",
    "DesignObjectType",
    "DesignOperation",
    "DesignSpecification",
    "DesignerPolicy",
    "DopState",
    "DopStep",
    "Iteration",
    "Kernel",
    "Open",
    "Parallel",
    "PredicateFeature",
    "QualityState",
    "RangeFeature",
    "Script",
    "Sequence",
    "ServerTM",
    "TestToolFeature",
    "ToolRegistry",
    "__version__",
]
