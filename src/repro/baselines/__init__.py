"""Baseline transaction models the paper compares against (Sect.1.2)."""

from repro.baselines.models import (
    CrashRecovery,
    ProcessingModel,
    VisibilityPolicy,
    WriteConcurrency,
    all_models,
    concord_model,
    contracts_model,
    flat_acid_model,
    nested_model,
    saga_model,
)

__all__ = [
    "CrashRecovery",
    "ProcessingModel",
    "VisibilityPolicy",
    "WriteConcurrency",
    "all_models",
    "concord_model",
    "contracts_model",
    "flat_acid_model",
    "nested_model",
    "saga_model",
]
