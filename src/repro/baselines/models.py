"""Processing models: CONCORD vs. the prior transaction models.

Sect.1.2 of the paper surveys the models CONCORD positions itself
against.  To *measure* the qualitative claims (isolation blocks
cooperation; atomicity loses long-duration work) we reduce each model
to the three policy axes that drive the experiments, with values taken
from the respective papers:

* **visibility** — when may a concurrent consumer read a producer's
  intermediate result?
  flat ACID / nested [Mo81] / ConTracts [WR92]: only after the whole
  producer session commits (serializability; nested transactions
  inherit locks upward, so nothing escapes before top-commit);
  Sagas [GS87b]: after each step commits (resources released early);
  CONCORD: after the producing DOP commits *and* the DOV is propagated
  with the required quality (Sect.4.1 usage relationships).
* **write concurrency** — flat ACID and nested serialise writers of a
  shared object for the whole session; Sagas/ConTracts serialise per
  step; CONCORD's version derivation lets writers proceed concurrently
  (Sect.5.2: concurrent DOPs "derive separate new versions").
* **crash recovery** — flat ACID restarts from scratch; nested loses
  the active subtransaction; Sagas compensate committed steps
  backwards; ConTracts restart at the last step boundary; CONCORD
  restarts at the last intra-step recovery point (Sect.5.2).

The *rework risk* axis quantifies the cost of uncontrolled early
visibility: a Saga consumer reads whatever the producer last committed,
with no quality statement, so later producer changes invalidate the
consumer's dependent work more often than CONCORD's feature-gated
propagation with explicit withdrawal notification.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class VisibilityPolicy(str, Enum):
    """When a producer's intermediate result becomes readable."""

    ON_SESSION_COMMIT = "on_session_commit"
    ON_STEP_COMMIT = "on_step_commit"
    ON_PROPAGATE = "on_propagate"       # step commit + quality gate


class WriteConcurrency(str, Enum):
    """How writers of a shared design object interact."""

    SESSION_EXCLUSIVE = "session_exclusive"   # 2PL for the whole session
    STEP_EXCLUSIVE = "step_exclusive"         # locks released per step
    VERSION_DERIVATION = "version_derivation"  # concurrent new versions


class CrashRecovery(str, Enum):
    """What a workstation crash costs a running session."""

    RESTART_SESSION = "restart_session"        # flat ACID
    RESTART_SUBTRANSACTION = "restart_subtxn"  # nested
    COMPENSATE_STEPS = "compensate_steps"      # sagas
    RESTART_STEP = "restart_step"              # ConTracts
    RECOVERY_POINT = "recovery_point"          # CONCORD


@dataclass(frozen=True)
class ProcessingModel:
    """One transaction model reduced to its experiment-relevant policies."""

    name: str
    visibility: VisibilityPolicy
    write_concurrency: WriteConcurrency
    crash_recovery: CrashRecovery
    #: probability that an early-consumed intermediate result is later
    #: invalidated, forcing the consumer to redo dependent work
    rework_probability: float = 0.0
    #: compensation cost as a fraction of each compensated step's
    #: duration (sagas only)
    compensation_factor: float = 0.0
    #: intra-step recovery point interval in simulated minutes
    #: (CONCORD only; 0 = none)
    recovery_point_interval: float = 0.0


def concord_model(recovery_point_interval: float = 30.0,
                  rework_probability: float = 0.1) -> ProcessingModel:
    """CONCORD: quality-gated pre-release, version derivation,
    intra-step recovery points.

    The small residual rework probability models withdrawals of
    pre-released DOVs (Sect.5.4) — rare because propagation is gated on
    the required feature set.
    """
    return ProcessingModel(
        name="concord",
        visibility=VisibilityPolicy.ON_PROPAGATE,
        write_concurrency=WriteConcurrency.VERSION_DERIVATION,
        crash_recovery=CrashRecovery.RECOVERY_POINT,
        rework_probability=rework_probability,
        recovery_point_interval=recovery_point_interval,
    )


def flat_acid_model() -> ProcessingModel:
    """Flat ACID transactions [HR83]: one transaction per session.

    "Serializability as the notion of correctness is too restrictive.
    The isolation property builds 'protective walls' among concurrent
    transactions" (Sect.1.1) — and atomicity means a crash rolls the
    whole long session back.
    """
    return ProcessingModel(
        name="flat_acid",
        visibility=VisibilityPolicy.ON_SESSION_COMMIT,
        write_concurrency=WriteConcurrency.SESSION_EXCLUSIVE,
        crash_recovery=CrashRecovery.RESTART_SESSION,
    )


def nested_model() -> ProcessingModel:
    """Nested transactions [Mo81]: subtransactions as recovery units.

    Fine-granular recovery (only the active subtransaction is lost),
    but lock inheritance keeps results invisible until top-commit — no
    cooperation gain.
    """
    return ProcessingModel(
        name="nested",
        visibility=VisibilityPolicy.ON_SESSION_COMMIT,
        write_concurrency=WriteConcurrency.SESSION_EXCLUSIVE,
        crash_recovery=CrashRecovery.RESTART_SUBTRANSACTION,
    )


def saga_model(compensation_factor: float = 0.5,
               rework_probability: float = 0.5) -> ProcessingModel:
    """Sagas [GS87b]: chained step transactions with compensation.

    Resources release early (good for concurrency) but without any
    quality statement on what escapes (high rework risk), and a crash
    triggers backward compensation of the committed steps.
    """
    return ProcessingModel(
        name="saga",
        visibility=VisibilityPolicy.ON_STEP_COMMIT,
        write_concurrency=WriteConcurrency.STEP_EXCLUSIVE,
        crash_recovery=CrashRecovery.COMPENSATE_STEPS,
        rework_probability=rework_probability,
        compensation_factor=compensation_factor,
    )


def contracts_model() -> ProcessingModel:
    """ConTracts [WR92]: scripted steps with recoverable execution.

    Forward recovery at step granularity (the paper adopts this for
    its DC level) — "however, the cooperation aspect is missing in
    ConTracts" (Sect.2): results stay invisible until the activity
    completes.
    """
    return ProcessingModel(
        name="contracts",
        visibility=VisibilityPolicy.ON_SESSION_COMMIT,
        write_concurrency=WriteConcurrency.STEP_EXCLUSIVE,
        crash_recovery=CrashRecovery.RESTART_STEP,
    )


def all_models() -> list[ProcessingModel]:
    """The five models compared in T1/T2, CONCORD first."""
    return [concord_model(), contracts_model(), saga_model(),
            nested_model(), flat_acid_model()]
