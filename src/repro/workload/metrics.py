"""Metric records produced by the workload simulators."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SessionMetrics:
    """Outcome of one designer session in a team run."""

    session_id: str
    start: float = 0.0
    end: float = 0.0
    work_time: float = 0.0
    blocked_time: float = 0.0
    rework_time: float = 0.0

    @property
    def turnaround(self) -> float:
        """end - start (includes blocking and rework)."""
        return self.end - self.start


@dataclass
class TeamMetrics:
    """Aggregate outcome of one team run under one processing model."""

    model: str
    sessions: dict[str, SessionMetrics] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Completion time of the last session."""
        return max((s.end for s in self.sessions.values()), default=0.0)

    @property
    def total_blocked(self) -> float:
        """Sum of all sessions' blocked time."""
        return sum(s.blocked_time for s in self.sessions.values())

    @property
    def total_work(self) -> float:
        """Sum of all productive work time."""
        return sum(s.work_time for s in self.sessions.values())

    @property
    def total_rework(self) -> float:
        """Sum of all invalidation-induced redo time."""
        return sum(s.rework_time for s in self.sessions.values())

    def row(self) -> dict[str, float | str]:
        """One table row for the T1 report."""
        return {
            "model": self.model,
            "makespan": round(self.makespan, 1),
            "blocked": round(self.total_blocked, 1),
            "rework": round(self.total_rework, 1),
            "work": round(self.total_work, 1),
        }


@dataclass(frozen=True)
class CrashMetrics:
    """Outcome of one crash experiment (T2) for one model."""

    model: str
    crash_time: float
    lost_work: float
    recovery_overhead: float = 0.0

    def row(self) -> dict[str, float | str]:
        """One table row for the T2 report."""
        return {
            "model": self.model,
            "crash_time": round(self.crash_time, 1),
            "lost_work": round(self.lost_work, 1),
            "overhead": round(self.recovery_overhead, 1),
        }
