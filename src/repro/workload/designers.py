"""Reusable designer policies (the modelled humans of Sect.5.1).

"In general, a fully automatic processing is not possible.  Work flow
often depends on creative design decisions which are to be taken
during the design work" (Sect.5.3).  These policies stand in for the
deciding designer at the DM's interaction points:

* :class:`GoalDrivenPolicy` — iterates loops until the DA's goal (or a
  custom predicate over the latest design state) is met; the policy
  behind 'replan until the floorplan fits' and 'debug until clean';
* :class:`SeededPolicy` — seeded random choices at every interaction
  point (alternative paths, loop continuation, open-segment
  insertions), for randomised robustness testing;
* :class:`ScriptedPolicy` — a fixed decision tape, for exactly
  reproducing one designer session (also what DM crash-recovery tests
  replay).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.dc.design_manager import DesignerPolicy
from repro.dc.script import DopStep, EnabledAction
from repro.util.rng import SeededRng


class GoalDrivenPolicy(DesignerPolicy):
    """Loop until the DA reached its goal (or a custom predicate).

    ``system`` / ``da_id`` locate the DA; without a custom
    ``satisfied`` predicate the policy exits loops once the DA has a
    final DOV.  ``params_by_tool`` supplies per-tool start parameters
    ("the designer has to specify input parameters for the design
    tools").
    """

    def __init__(self, system: Any, da_id: str,
                 satisfied: Callable[[dict[str, Any]], bool]
                 | None = None,
                 params_by_tool: dict[str, dict[str, Any]]
                 | None = None) -> None:
        self.system = system
        self.da_id = da_id
        self.satisfied = satisfied
        self.params_by_tool = dict(params_by_tool or {})

    def _latest_data(self) -> dict[str, Any]:
        repository = self.system.repository
        if not repository.has_graph(self.da_id):
            return {}
        leaves = repository.graph(self.da_id).leaves()
        if not leaves:
            return {}
        newest = max(leaves, key=lambda d: (d.created_at, d.dov_id))
        return newest.data

    def loop_decision(self, action: EnabledAction) -> str:
        if self.satisfied is not None:
            done = self.satisfied(self._latest_data())
        else:
            done = bool(self.system.cm.da(self.da_id).final_dovs)
        return "exit" if done else "again"

    def dop_params(self, step: DopStep) -> dict[str, Any]:
        params = dict(step.params)
        params.update(self.params_by_tool.get(step.tool, {}))
        return params


class SeededPolicy(DesignerPolicy):
    """Seeded random decisions at every designer interaction point."""

    def __init__(self, seed: int = 0,
                 insertable_tools: tuple[str, ...] = (),
                 insert_probability: float = 0.3,
                 again_probability: float = 0.4) -> None:
        self.rng = SeededRng(seed)
        self.insertable_tools = insertable_tools
        self.insert_probability = insert_probability
        self.again_probability = again_probability

    def choose_enabled(self,
                       actions: list[EnabledAction]) -> EnabledAction:
        return actions[self.rng.randint(0, len(actions) - 1)]

    def choose_alternative(self, action: EnabledAction) -> int:
        return self.rng.randint(0, action.options - 1)

    def loop_decision(self, action: EnabledAction) -> str:
        return "again" if self.rng.bernoulli(self.again_probability) \
            else "exit"

    def open_decision(self, action: EnabledAction) -> Any:
        if self.insertable_tools \
                and self.rng.bernoulli(self.insert_probability):
            return ("insert", self.rng.choice(self.insertable_tools))
        return "close"


class ScriptedPolicy(DesignerPolicy):
    """A fixed tape of decisions, consumed in order.

    Each entry addresses one interaction kind; when the tape for a
    kind runs dry the base policy's neutral default applies.  Used to
    replay one specific designer session deterministically.
    """

    def __init__(self,
                 alternatives: list[int] | None = None,
                 loops: list[str] | None = None,
                 opens: list[Any] | None = None) -> None:
        self._alternatives = list(alternatives or [])
        self._loops = list(loops or [])
        self._opens = list(opens or [])

    def choose_alternative(self, action: EnabledAction) -> int:
        if self._alternatives:
            return self._alternatives.pop(0)
        return super().choose_alternative(action)

    def loop_decision(self, action: EnabledAction) -> str:
        if self._loops:
            return self._loops.pop(0)
        return super().loop_decision(action)

    def open_decision(self, action: EnabledAction) -> Any:
        if self._opens:
            return self._opens.pop(0)
        return super().open_decision(action)

    @property
    def exhausted(self) -> bool:
        """True when every tape has been fully consumed."""
        return not (self._alternatives or self._loops or self._opens)
