"""Synthetic design-team workloads.

The T1 experiment needs a workload with the structure the paper's
chip-planning scenario exhibits (Fig.5): a team of designers, one per
subcell, each running a sequence of long tool executions, where
neighbouring designers exchange preliminary results (the shared
borderline between cells A and B) and all touch shared design objects.

:func:`team_workload` generates such a team deterministically from a
seed: *n* sessions of *k* steps; each session (except the first)
depends on a mid-session result of its predecessor, and neighbouring
sessions share one written design object (lock-contention surface).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.rng import SeededRng


@dataclass(frozen=True)
class Dependency:
    """Consumer step needs a producer step's output."""

    producer: str        # producer session id
    producer_step: int   # output of this step index ...
    consumer_step: int   # ... is needed before this step starts


@dataclass
class SessionSpec:
    """One designer's planned sequence of tool executions."""

    session_id: str
    step_durations: list[float]
    #: design objects written by every step of this session
    writes: list[str] = field(default_factory=list)
    #: all mid-session inputs from other sessions (fan-in allowed)
    dependencies: list[Dependency] = field(default_factory=list)
    #: shared design objects each step checks out before it runs
    #: (one list per step; empty = the step reads nothing shared)
    reads: list[list[str]] = field(default_factory=list)
    #: per-step write plan: True = the step derives and checks in a
    #: new version of the session's own design object (empty = no
    #: per-step plan; models then use their own write policy)
    write_steps: list[bool] = field(default_factory=list)

    def __post_init__(self) -> None:
        pass

    def reads_at(self, step: int) -> list[str]:
        """Objects checked out at the start of *step* (may be empty)."""
        return list(self.reads[step]) if step < len(self.reads) else []

    def writes_at(self, step: int) -> bool:
        """True when the plan says *step* checks in a derived version."""
        return self.write_steps[step] \
            if step < len(self.write_steps) else False

    @property
    def dependency(self) -> Dependency | None:
        """The first dependency (legacy single-dependency accessor)."""
        return self.dependencies[0] if self.dependencies else None

    @property
    def total_work(self) -> float:
        """Sum of the step durations."""
        return sum(self.step_durations)

    def work_before_step(self, step: int) -> float:
        """Work completed strictly before *step* begins."""
        return sum(self.step_durations[:step])

    def dependencies_at(self, step: int) -> list[Dependency]:
        """Dependencies gating the start of *step*."""
        return [d for d in self.dependencies if d.consumer_step == step]


@dataclass
class TeamWorkload:
    """A complete team run: sessions plus shared-object topology."""

    sessions: list[SessionSpec]
    seed: int = 0
    #: write-back knob: a client-TM should group-flush after this many
    #: deferred checkins (0 = flush only at End-of-DOP)
    flush_interval: int = 0
    #: capacity-pressure knob: the fraction of the dirty set (oldest
    #: first) a pressure-triggered flush ships (1.0 = everything)
    pressure_fraction: float = 1.0

    def session(self, session_id: str) -> SessionSpec:
        """Look up a session by id."""
        for session in self.sessions:
            if session.session_id == session_id:
                return session
        raise KeyError(f"no session {session_id!r}")

    @property
    def total_work(self) -> float:
        """Sum of all sessions' planned work."""
        return sum(s.total_work for s in self.sessions)


def _step_reads(rng: SeededRng, history: list[str],
                reads_per_step: int, reread_locality: float,
                object_pool: int) -> list[str]:
    """Draw one step's read set with configurable re-read locality.

    Each slot re-reads an object from the designer's own read history
    with probability *reread_locality* (the working-set behaviour that
    makes workstation object buffers pay off) and otherwise picks a
    fresh object from the shared library pool.  Reads within one step
    are distinct — a tool checks each input out once.
    """
    step_reads: list[str] = []
    pool = [f"lib-{n}" for n in range(object_pool)]
    for _ in range(min(reads_per_step, object_pool)):
        candidates = [obj for obj in history if obj not in step_reads]
        if candidates and rng.bernoulli(reread_locality):
            choice = rng.choice(candidates)
        else:
            fresh = [obj for obj in pool if obj not in step_reads]
            choice = rng.choice(fresh)
        step_reads.append(choice)
        if choice not in history:
            history.append(choice)
    return step_reads


def team_workload(team_size: int, steps_per_session: int = 4,
                  mean_step: float = 60.0, seed: int = 0,
                  share_objects: bool = True,
                  reads_per_step: int = 0,
                  reread_locality: float = 0.0,
                  object_pool: int = 4,
                  write_ratio: float = 0.0,
                  flush_interval: int = 0,
                  pressure_fraction: float = 1.0) -> TeamWorkload:
    """Generate a seeded chip-planning-style team workload.

    Session *i* (>0) consumes a preliminary result of session *i-1*
    produced by its middle step — the Fig.5 pattern where planning a
    subcell needs the neighbour's provisional borderline.  With
    ``share_objects`` neighbouring sessions also *write* a shared
    design object, exercising the models' write-concurrency policies.

    With ``reads_per_step`` > 0 every step additionally checks out
    that many shared library objects; ``reread_locality`` is the
    probability that a read revisits an object the designer already
    read (see :func:`_step_reads`) — the knob the T8 data-shipping
    experiment turns to make buffer hit rates non-trivial.

    With ``write_ratio`` > 0 each step independently derives and
    checks in a new version of the session's own design object with
    that probability (the plan lands in
    :attr:`SessionSpec.write_steps`); the last step of every session
    always writes, so each designer produces at least one result.
    ``flush_interval`` rides along on the workload for the write-back
    experiments (T9): how many deferred checkins a client-TM batches
    before group-flushing mid-DOP (0 = End-of-DOP only);
    ``pressure_fraction`` likewise carries the capacity-pressure
    policy (the oldest-dirty-prefix fraction a pressure flush ships).
    """
    if team_size < 1:
        raise ValueError("team_size must be >= 1")
    rng = SeededRng(seed)
    sessions = []
    for i in range(team_size):
        durations = [
            round(rng.bounded_normal(mean_step, mean_step / 3,
                                     mean_step / 4, mean_step * 3), 1)
            for _ in range(steps_per_session)]
        writes = [f"cell-{i}"]
        if share_objects and i > 0:
            writes.append(f"border-{i - 1}-{i}")
        if share_objects and i < team_size - 1:
            writes.append(f"border-{i}-{i + 1}")
        dependencies = []
        if i > 0:
            producer_step = max(0, steps_per_session // 2 - 1)
            consumer_step = min(steps_per_session - 1,
                                steps_per_session // 2)
            dependencies.append(Dependency(f"designer-{i - 1}",
                                           producer_step, consumer_step))
        reads: list[list[str]] = []
        if reads_per_step > 0:
            history: list[str] = []
            reads = [_step_reads(rng, history, reads_per_step,
                                 reread_locality, object_pool)
                     for _ in range(steps_per_session)]
        write_steps: list[bool] = []
        if write_ratio > 0:
            write_steps = [rng.bernoulli(write_ratio)
                           for _ in range(steps_per_session)]
            write_steps[-1] = True  # every designer delivers a result
        sessions.append(SessionSpec(
            session_id=f"designer-{i}",
            step_durations=durations,
            writes=writes,
            dependencies=dependencies,
            reads=reads,
            write_steps=write_steps,
        ))
    return TeamWorkload(sessions=sessions, seed=seed,
                        flush_interval=flush_interval,
                        pressure_fraction=pressure_fraction)


def integration_workload(team_size: int, steps_per_session: int = 3,
                         mean_step: float = 60.0, seed: int = 0,
                         integration_steps: int = 2) -> TeamWorkload:
    """A fan-in topology: independent designers plus one integrator.

    ``team_size`` designers work independently (own objects, no mutual
    dependencies); a final *integrator* session consumes a preliminary
    result of **every** designer before its last step — the chip
    assembly / system integration pattern.
    """
    if team_size < 1:
        raise ValueError("team_size must be >= 1")
    rng = SeededRng(seed)
    sessions = []
    for i in range(team_size):
        durations = [
            round(rng.bounded_normal(mean_step, mean_step / 3,
                                     mean_step / 4, mean_step * 3), 1)
            for _ in range(steps_per_session)]
        sessions.append(SessionSpec(
            session_id=f"designer-{i}",
            step_durations=durations,
            writes=[f"cell-{i}"],
        ))
    integrator_durations = [
        round(rng.bounded_normal(mean_step, mean_step / 3,
                                 mean_step / 4, mean_step * 3), 1)
        for _ in range(integration_steps)]
    dependencies = [
        Dependency(f"designer-{i}",
                   producer_step=max(0, steps_per_session - 2),
                   consumer_step=integration_steps - 1)
        for i in range(team_size)]
    sessions.append(SessionSpec(
        session_id="integrator",
        step_durations=integrator_durations,
        writes=["assembly"],
        dependencies=dependencies,
    ))
    return TeamWorkload(sessions=sessions, seed=seed)
