"""Synthetic design-team workloads, simulators and metrics."""

from repro.workload.designers import (
    GoalDrivenPolicy,
    ScriptedPolicy,
    SeededPolicy,
)
from repro.workload.generator import (
    Dependency,
    SessionSpec,
    TeamWorkload,
    integration_workload,
    team_workload,
)
from repro.workload.metrics import CrashMetrics, SessionMetrics, TeamMetrics
from repro.workload.simulator import (
    TeamSimulator,
    crash_lost_work,
    work_position,
)

__all__ = [
    "CrashMetrics",
    "Dependency",
    "GoalDrivenPolicy",
    "SessionMetrics",
    "ScriptedPolicy",
    "SeededPolicy",
    "SessionSpec",
    "TeamMetrics",
    "TeamSimulator",
    "TeamWorkload",
    "crash_lost_work",
    "integration_workload",
    "team_workload",
    "work_position",
]
