"""Team simulator: runs a :class:`TeamWorkload` under a processing model.

The simulator executes every session's steps over simulated time and
enforces the three policy axes of the
:class:`~repro.baselines.models.ProcessingModel`:

* **visibility** gates when a dependent session may start its consumer
  step (producer step end vs. producer session end);
* **write concurrency** serialises sessions (or steps) that write the
  same shared design object;
* **rework**: when a producer finishes, consumers that read one of its
  *preliminary* results may have to redo their dependent work — with
  the model's rework probability (quality-gated propagation makes this
  rare for CONCORD, uncontrolled early release makes it common for
  Sagas).

:func:`crash_lost_work` computes the T2 metric analytically from the
models' crash-recovery policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.models import (
    CrashRecovery,
    ProcessingModel,
    VisibilityPolicy,
    WriteConcurrency,
)
from repro.sim.kernel import Kernel
from repro.util.rng import SeededRng
from repro.workload.generator import (
    Dependency,
    SessionSpec,
    TeamWorkload,
)
from repro.workload.metrics import CrashMetrics, SessionMetrics, TeamMetrics


@dataclass
class _Run:
    """Mutable execution state of one session."""

    spec: SessionSpec
    metrics: SessionMetrics
    step: int = 0
    started: bool = False
    finished: bool = False
    wait_start: float | None = None
    consumed_early: bool = False
    #: extra (rework) durations appended after the planned steps
    extra: list[float] = field(default_factory=list)
    holds_session_locks: bool = False
    #: the full lock set taken at session begin (conservative 2PL)
    session_lock_set: list[str] = field(default_factory=list)


class TeamSimulator:
    """Deterministic discrete-event execution of a team workload."""

    def __init__(self, model: ProcessingModel, workload: TeamWorkload,
                 seed: int | None = None,
                 kernel: Kernel | None = None) -> None:
        self.model = model
        self.workload = workload
        self.rng = SeededRng(seed if seed is not None else workload.seed)
        #: the shared execution kernel (also reachable as ``scheduler``
        #: for older call sites)
        self.kernel = kernel if kernel is not None else Kernel()
        self.scheduler = self.kernel
        self._runs: dict[str, _Run] = {}
        #: object -> holding session id
        self._locks: dict[str, str] = {}
        #: FIFO of (run, objects, continuation-label)
        self._lock_queue: list[tuple[_Run, list[str], str]] = []
        #: (producer, step) -> completion time
        self._step_done: dict[tuple[str, int], float] = {}
        #: waiters on a dependency: (producer, step|-1) -> runs
        self._dep_waiters: dict[tuple[str, int], list[_Run]] = {}

    # -- public API -----------------------------------------------------------

    def run(self) -> TeamMetrics:
        """Execute the whole team; returns aggregate metrics."""
        for spec in self.workload.sessions:
            run = _Run(spec, SessionMetrics(spec.session_id))
            self._runs[spec.session_id] = run
        for run in self._runs.values():
            self.kernel.at(self.kernel.clock.now,
                           lambda r=run: self._begin_session(r),
                           label=f"begin:{run.spec.session_id}")
        self.kernel.run_until_quiescent()
        stuck = [r.spec.session_id for r in self._runs.values()
                 if not r.finished]
        if stuck:
            raise RuntimeError(
                f"team simulation deadlocked; unfinished sessions: {stuck}")
        metrics = TeamMetrics(self.model.name)
        for run in self._runs.values():
            metrics.sessions[run.spec.session_id] = run.metrics
        return metrics

    # -- internals --------------------------------------------------------------

    @property
    def _now(self) -> float:
        return self.scheduler.clock.now

    def _begin_session(self, run: _Run) -> None:
        run.metrics.start = self._now
        run.started = True
        if self.model.write_concurrency \
                is WriteConcurrency.SESSION_EXCLUSIVE:
            # conservative 2PL: the whole lock set — writes plus the
            # object the mid-session dependency will *read* — is taken
            # up front.  (Plain strict 2PL would deadlock here: the
            # consumer holds shared borders while waiting for the
            # producer's commit; real systems abort+restart, which
            # costs at least as much as this serialisation.)
            lock_set = list(run.spec.writes)
            for dep in run.spec.dependencies:
                producer_spec = self.workload.session(dep.producer)
                if producer_spec.writes \
                        and producer_spec.writes[0] not in lock_set:
                    lock_set.append(producer_spec.writes[0])
            run.session_lock_set = lock_set
            self._acquire(run, lock_set, "session")
        else:
            self._try_start_step(run)

    def _grantable(self, run: _Run, objects: list[str],
                   before: int | None = None) -> bool:
        """Free locks AND no earlier intersecting queued request.

        The second condition prevents a later request from overtaking
        an earlier one it conflicts with — without it, a consumer could
        grab its producer's output object before the producer starts
        and deadlock on the commit-visibility wait.
        """
        if any(self._locks.get(obj) not in (None, run.spec.session_id)
               for obj in objects):
            return False
        wanted = set(objects)
        queue = self._lock_queue if before is None \
            else self._lock_queue[:before]
        for earlier_run, earlier_objs, _ in queue:
            if earlier_run is not run and wanted & set(earlier_objs):
                return False
        return True

    def _grant(self, run: _Run, objects: list[str],
               continuation: str) -> None:
        for obj in objects:
            self._locks[obj] = run.spec.session_id
        if continuation == "session":
            run.holds_session_locks = True
            self._try_start_step(run)
        else:
            self._start_step_now(run)

    def _acquire(self, run: _Run, objects: list[str],
                 continuation: str) -> None:
        """All-or-nothing lock acquisition with FIFO queueing."""
        if self._grantable(run, objects):
            self._grant(run, objects, continuation)
            return
        self._begin_wait(run)
        self._lock_queue.append((run, list(objects), continuation))

    def _release(self, objects: list[str], holder: str) -> None:
        for obj in objects:
            if self._locks.get(obj) == holder:
                del self._locks[obj]
        # FIFO re-grant: every queued request that is now satisfiable
        # (grants update the lock table, so later queue entries see them)
        index = 0
        while index < len(self._lock_queue):
            run, objs, continuation = self._lock_queue[index]
            if self._grantable(run, objs, before=index):
                del self._lock_queue[index]
                self._end_wait(run)
                self._grant(run, objs, continuation)
                index = 0  # grants may unblock earlier-checked entries
            else:
                index += 1

    def _begin_wait(self, run: _Run) -> None:
        if run.wait_start is None:
            run.wait_start = self._now

    def _end_wait(self, run: _Run) -> None:
        if run.wait_start is not None:
            run.metrics.blocked_time += self._now - run.wait_start
            run.wait_start = None

    # -- dependency gating -----------------------------------------------------------

    def _unready_dependency(self, run: _Run) -> "Dependency | None":
        """The first dependency of the current step not yet satisfied."""
        for dep in run.spec.dependencies_at(run.step):
            if self.model.visibility \
                    is VisibilityPolicy.ON_SESSION_COMMIT:
                if not self._runs[dep.producer].finished:
                    return dep
            elif (dep.producer, dep.producer_step) not in self._step_done:
                return dep
        return None

    def _dependency_ready(self, run: _Run) -> bool:
        if self._unready_dependency(run) is not None:
            return False
        if self.model.visibility is not VisibilityPolicy.ON_SESSION_COMMIT \
                and run.spec.dependencies_at(run.step):
            run.consumed_early = True
        return True

    def _wait_for_dependency(self, run: _Run) -> None:
        dep = self._unready_dependency(run)
        assert dep is not None
        if self.model.visibility is VisibilityPolicy.ON_SESSION_COMMIT:
            key = (dep.producer, -1)
        else:
            key = (dep.producer, dep.producer_step)
        self._begin_wait(run)
        self._dep_waiters.setdefault(key, []).append(run)

    def _wake_dependents(self, key: tuple[str, int]) -> None:
        for run in self._dep_waiters.pop(key, []):
            self._end_wait(run)
            self._try_start_step(run)

    # -- step execution ---------------------------------------------------------------

    def _try_start_step(self, run: _Run) -> None:
        if run.finished:
            return
        durations = run.spec.step_durations + run.extra
        if run.step >= len(durations):
            self._finish_session(run)
            return
        if not self._dependency_ready(run):
            self._wait_for_dependency(run)
            return
        if self.model.write_concurrency is WriteConcurrency.STEP_EXCLUSIVE \
                and run.step < len(run.spec.step_durations):
            self._acquire(run, run.spec.writes, "step")
            return
        self._start_step_now(run)

    def _start_step_now(self, run: _Run) -> None:
        durations = run.spec.step_durations + run.extra
        duration = durations[run.step]
        self.scheduler.after(duration,
                             lambda: self._finish_step(run, duration),
                             label=f"step:{run.spec.session_id}:{run.step}")

    def _finish_step(self, run: _Run, duration: float) -> None:
        is_rework = run.step >= len(run.spec.step_durations)
        if is_rework:
            run.metrics.rework_time += duration
        else:
            run.metrics.work_time += duration
        if self.model.write_concurrency is WriteConcurrency.STEP_EXCLUSIVE \
                and not is_rework:
            self._release(run.spec.writes, run.spec.session_id)
        self._step_done[(run.spec.session_id, run.step)] = self._now
        self._wake_dependents((run.spec.session_id, run.step))
        run.step += 1
        self._try_start_step(run)

    def _finish_session(self, run: _Run) -> None:
        run.finished = True
        run.metrics.end = self._now
        if run.holds_session_locks:
            self._release(run.session_lock_set, run.spec.session_id)
            run.holds_session_locks = False
        self._wake_dependents((run.spec.session_id, -1))
        self._draw_rework_for_consumers(run)

    # -- rework (invalidation of early-consumed results) --------------------------------

    def _draw_rework_for_consumers(self, producer: _Run) -> None:
        if self.model.rework_probability <= 0:
            return
        for run in self._runs.values():
            matching = [d for d in run.spec.dependencies
                        if d.producer == producer.spec.session_id]
            if not matching:
                continue
            if not run.consumed_early:
                continue
            if not self.rng.bernoulli(self.model.rework_probability):
                continue
            dep = matching[0]
            dependent_work = sum(
                run.spec.step_durations[dep.consumer_step:])
            redo = dependent_work
            redo += self.model.compensation_factor * dependent_work
            run.extra.append(round(redo, 1))
            if run.finished:
                # reopen the session for the redo
                run.finished = False
                run.step = len(run.spec.step_durations) \
                    + len(run.extra) - 1
                self._try_start_step(run)


# ---------------------------------------------------------------------------
# crash lost-work analysis (experiment T2)
# ---------------------------------------------------------------------------

def work_position(step_durations: list[float],
                  crash_time: float) -> tuple[int, float, float]:
    """(current step, work done in it, total work done) at *crash_time*."""
    done = 0.0
    for index, duration in enumerate(step_durations):
        if done + duration > crash_time:
            return index, crash_time - done, crash_time
        done += duration
    total = sum(step_durations)
    return len(step_durations), 0.0, total


def crash_lost_work(model: ProcessingModel, step_durations: list[float],
                    crash_time: float) -> CrashMetrics:
    """Work lost when the workstation crashes at *crash_time*.

    Applies each model's crash-recovery policy to a single session's
    step profile; see :mod:`repro.baselines.models` for the policies.
    """
    step, in_step, done = work_position(step_durations, crash_time)
    if step >= len(step_durations):
        return CrashMetrics(model.name, crash_time, 0.0)

    recovery = model.crash_recovery
    if recovery is CrashRecovery.RESTART_SESSION:
        lost = done
        overhead = 0.0
    elif recovery is CrashRecovery.RESTART_SUBTRANSACTION:
        lost = in_step
        overhead = 0.0
    elif recovery is CrashRecovery.COMPENSATE_STEPS:
        # committed step transactions survive the crash; only the
        # in-flight step is lost (compensation applies to logical
        # aborts, not system crashes)
        lost = in_step
        overhead = 0.0
    elif recovery is CrashRecovery.RESTART_STEP:
        lost = in_step
        overhead = 0.0
    elif recovery is CrashRecovery.RECOVERY_POINT:
        interval = model.recovery_point_interval
        lost = in_step if interval <= 0 else in_step % interval
        overhead = 0.0
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown recovery policy {recovery}")
    return CrashMetrics(model.name, crash_time, round(lost, 3), overhead)
