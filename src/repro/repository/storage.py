"""Stable version storage with crash semantics.

The server's data repository must survive server crashes: committed
DOVs are durable, in-flight (uncommitted) checkins are not.  The
:class:`VersionStore` models this with a *stable* map written only under
WAL protection, plus a redo pass at restart.  It deliberately stays
page-less — experiments here care about which writes survive a crash,
not about buffer-pool mechanics.
"""

from __future__ import annotations

from typing import Iterator

from repro.repository.versions import DesignObjectVersion, adopt_payload
from repro.repository.wal import LogRecordKind, WriteAheadLog
from repro.util.errors import StorageError, UnknownObjectError


class VersionStore:
    """Durable DOV storage: WAL-protected writes, crash, redo recovery."""

    def __init__(self, wal: WriteAheadLog | None = None) -> None:
        self.wal = wal if wal is not None else WriteAheadLog("version-store")
        self._stable: dict[str, DesignObjectVersion] = {}
        #: uncommitted versions staged by in-flight transactions
        self._staged: dict[str, DesignObjectVersion] = {}
        self._up = True

    # -- availability ---------------------------------------------------------

    @property
    def is_up(self) -> bool:
        """False while the (simulated) server is crashed."""
        return self._up

    def _require_up(self) -> None:
        if not self._up:
            raise StorageError("version store is down (server crash)")

    # -- writes ---------------------------------------------------------------

    def stage(self, dov: DesignObjectVersion) -> None:
        """Stage an uncommitted version (phase 1 of checkin)."""
        self._require_up()
        if dov.dov_id in self._stable or dov.dov_id in self._staged:
            raise StorageError(f"DOV {dov.dov_id!r} already stored")
        self._staged[dov.dov_id] = dov

    @staticmethod
    def _checkin_payload(dov: DesignObjectVersion) -> dict:
        return {
            "dov_id": dov.dov_id,
            "dot": dov.dot_name,
            "created_by": dov.created_by,
            "created_at": dov.created_at,
            "parents": list(dov.parents),
            "data": dov.data,
        }

    def commit(self, dov_id: str) -> DesignObjectVersion:
        """Make a staged version durable (WAL force + stable write)."""
        self._require_up()
        try:
            dov = self._staged.pop(dov_id)
        except KeyError:
            raise StorageError(f"DOV {dov_id!r} was not staged") from None
        self.wal.append(LogRecordKind.DOV_CHECKIN,
                        self._checkin_payload(dov), force=True)
        self._stable[dov.dov_id] = dov
        return dov

    def commit_batch(self, dov_ids: list[str]) -> list[DesignObjectVersion]:
        """Make a group of staged versions durable *atomically*.

        All checkin records are appended to the volatile WAL tail and
        made stable by **one** force at the end: a crash anywhere
        before that force loses the whole unforced tail, so either the
        entire batch survives recovery or none of it does — the
        durability half of group-checkin atomicity (the staging half
        is the server-TM's all-or-nothing prepare).  Also the cheaper
        path: one forced log write for the batch instead of one per
        version.
        """
        self._require_up()
        missing = [dov_id for dov_id in dov_ids
                   if dov_id not in self._staged]
        if missing:
            raise StorageError(
                f"DOVs not staged for group commit: {missing}")
        dovs = [self._staged.pop(dov_id) for dov_id in dov_ids]
        for dov in dovs:
            self.wal.append(LogRecordKind.DOV_CHECKIN,
                            self._checkin_payload(dov), force=False)
        self.wal.force()
        for dov in dovs:
            self._stable[dov.dov_id] = dov
        return dovs

    def discard(self, dov_id: str) -> bool:
        """Drop a staged version (abort path); True when it existed."""
        self._require_up()
        return self._staged.pop(dov_id, None) is not None

    def replace_staged(self, dov: DesignObjectVersion) -> None:
        """Swap a staged version (federation patches cross-member
        lineage onto it before commit)."""
        self._require_up()
        if dov.dov_id not in self._staged:
            raise StorageError(f"DOV {dov.dov_id!r} is not staged")
        self._staged[dov.dov_id] = dov

    def put_durable(self, dov: DesignObjectVersion) -> None:
        """Stage-and-commit in one step (initial DOV0 loads)."""
        self.stage(dov)
        self.commit(dov.dov_id)

    # -- reads ----------------------------------------------------------------

    def __contains__(self, dov_id: str) -> bool:
        return dov_id in self._stable

    def __len__(self) -> int:
        return len(self._stable)

    def __iter__(self) -> Iterator[DesignObjectVersion]:
        return iter(self._stable.values())

    def get(self, dov_id: str) -> DesignObjectVersion:
        """Read a durable version; staged versions are invisible."""
        self._require_up()
        try:
            return self._stable[dov_id]
        except KeyError:
            raise UnknownObjectError(f"DOV {dov_id!r} not stored") from None

    def staged_ids(self) -> set[str]:
        """Ids of currently staged (uncommitted) versions."""
        return set(self._staged)

    def staged(self, dov_id: str) -> DesignObjectVersion:
        """A staged (uncommitted) version — the prepare-record source
        of the federated commit's redo information."""
        self._require_up()
        try:
            return self._staged[dov_id]
        except KeyError:
            raise StorageError(f"DOV {dov_id!r} is not staged") from None

    # -- failure & recovery -----------------------------------------------------

    def crash(self) -> dict[str, int]:
        """Server crash: staged versions and the unforced WAL tail vanish.

        The stable map itself is also cleared — restart must *redo* from
        the WAL, which is exactly what :meth:`recover` does.  Returns a
        small loss report used by the F8/T2 experiments.
        """
        lost_staged = len(self._staged)
        lost_wal = self.wal.crash()
        self._staged.clear()
        self._stable.clear()
        self._up = False
        return {"staged_lost": lost_staged, "wal_tail_lost": lost_wal}

    def restore_bulk(self, dovs: list[DesignObjectVersion]) -> int:
        """Load durable versions directly (checkpoint-based recovery).

        Marks the store as up; returns the number of versions newly
        restored (already-present ids are skipped, making redo
        idempotent).
        """
        self._up = True
        restored = 0
        for dov in dovs:
            if dov.dov_id not in self._stable:
                self._stable[dov.dov_id] = dov
                restored += 1
        return restored

    def recover(self) -> int:
        """Restart after a crash: redo committed checkins from the WAL.

        Returns the number of versions recovered.
        """
        recovered = 0
        for record in self.wal.stable_records(LogRecordKind.DOV_CHECKIN):
            payload = record.payload
            dov = DesignObjectVersion(
                dov_id=payload["dov_id"],
                dot_name=payload["dot"],
                data=adopt_payload(payload["data"]),
                created_by=payload["created_by"],
                created_at=payload["created_at"],
                parents=tuple(payload["parents"]),
            )
            if dov.dov_id not in self._stable:
                self._stable[dov.dov_id] = dov
                recovered += 1
        self._up = True
        return recovered
