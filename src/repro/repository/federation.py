"""Federated (distributed, heterogeneous) design data repositories.

The paper's future work (Sect.6): "A realistic approach needs to
consider distributed data management by heterogeneous facilities in
order to support data exchange and interoperability of these tools.
Since CONCORD has been designed to be a distributed, transactional
system we assume that heterogeneous and distributed data management
does not influence the major model of operation."

:class:`FederatedRepository` validates that assumption: it presents the
exact :class:`~repro.repository.repository.DesignDataRepository`
interface the TM and CM consume, while placing each DA's derivation
graph on one of several member repositories and routing reads through a
global DOV directory.  The activity managers run unchanged on top of
it — the property the paper predicts.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.repository.repository import DesignDataRepository
from repro.repository.schema import DesignObjectType
from repro.repository.versions import DerivationGraph, DesignObjectVersion
from repro.util.errors import UnknownObjectError


class FederatedRepository:
    """Several member repositories behind one repository interface.

    Placement: every DA is assigned to one member (explicitly via
    :meth:`assign`, else round-robin at :meth:`create_graph` time); the
    DA's derivation graph and all DOVs it checks in live there.  A
    directory maps DOV ids to members so cross-member reads (usage
    relationships!) are transparent.
    """

    def __init__(self, members: dict[str, DesignDataRepository]) -> None:
        if not members:
            raise ValueError("a federation needs at least one member")
        self._members = dict(members)
        self._member_order = list(members)
        self._next_member = 0
        #: da_id -> member name
        self._placement: dict[str, str] = {}
        #: dov_id -> member name (global directory)
        self._directory: dict[str, str] = {}
        #: federation-level commit observer (lease invalidations);
        #: notices originate at the owning member and are routed up
        #: through the directory by :meth:`_member_committed`
        self.on_commit: Callable[[DesignObjectVersion], None] | None = None
        for name, repo in self._members.items():
            repo.on_commit = (
                lambda dov, member=name: self._member_committed(member,
                                                                dov))

    # -- membership ------------------------------------------------------------

    def member(self, name: str) -> DesignDataRepository:
        """Access one member repository."""
        try:
            return self._members[name]
        except KeyError:
            raise UnknownObjectError(
                f"no federation member {name!r}") from None

    def members(self) -> dict[str, DesignDataRepository]:
        """All members by name."""
        return dict(self._members)

    def assign(self, da_id: str, member: str) -> None:
        """Pin a DA's data to a specific member (before create_graph)."""
        self.member(member)
        self._placement[da_id] = member

    def placement_of(self, da_id: str) -> str:
        """The member holding a DA's derivation graph."""
        try:
            return self._placement[da_id]
        except KeyError:
            raise UnknownObjectError(
                f"DA {da_id!r} is not placed in the federation") from None

    def _home(self, da_id: str) -> DesignDataRepository:
        return self.member(self.placement_of(da_id))

    def _locate_dov(self, dov_id: str) -> DesignDataRepository:
        member = self._directory.get(dov_id)
        if member is None:
            raise UnknownObjectError(
                f"DOV {dov_id!r} not in the federation directory")
        return self.member(member)

    def owner_of(self, dov_id: str) -> str:
        """Name of the member holding a durable DOV (directory lookup)."""
        member = self._directory.get(dov_id)
        if member is None:
            raise UnknownObjectError(
                f"DOV {dov_id!r} not in the federation directory")
        return member

    def _member_committed(self, member: str,
                          dov: DesignObjectVersion) -> None:
        """A member made *dov* durable: register it in the directory
        and route the commit notice (lease invalidations!) from the
        owning member up to the federation-level observer."""
        self._directory[dov.dov_id] = member
        if self.on_commit is not None:
            self.on_commit(dov)

    # -- schema (broadcast: every member knows every DOT) ------------------------

    def register_dot(self, dot: DesignObjectType) -> DesignObjectType:
        """Register a DOT with every member (heterogeneity-transparent)."""
        for repo in self._members.values():
            if dot.name not in {d.name for d in repo.dots()}:
                repo.register_dot(dot)
        return dot

    def dot(self, name: str) -> DesignObjectType:
        """Look up a DOT (any member; schemas are broadcast)."""
        first = self._members[self._member_order[0]]
        return first.dot(name)

    def dots(self) -> Iterator[DesignObjectType]:
        """All DOTs (from the first member; schemas are broadcast)."""
        return self._members[self._member_order[0]].dots()

    # -- graphs ---------------------------------------------------------------------

    def create_graph(self, da_id: str) -> DerivationGraph:
        """Open a DA's graph on its (assigned or round-robin) member."""
        if da_id not in self._placement:
            member = self._member_order[self._next_member
                                        % len(self._member_order)]
            self._next_member += 1
            self._placement[da_id] = member
        return self._home(da_id).create_graph(da_id)

    def graph(self, da_id: str) -> DerivationGraph:
        """The derivation graph of a DA (wherever it lives)."""
        return self._home(da_id).graph(da_id)

    def has_graph(self, da_id: str) -> bool:
        """True when some member holds a graph for *da_id*."""
        if da_id not in self._placement:
            return False
        return self._home(da_id).has_graph(da_id)

    # -- reads -----------------------------------------------------------------------

    def read(self, dov_id: str) -> DesignObjectVersion:
        """Directory-routed read across members."""
        return self._locate_dov(dov_id).read(dov_id)

    def describe(self, dov_id: str) -> dict[str, Any]:
        """Directory-routed shipping metadata (size + version stamp)."""
        description = self._locate_dov(dov_id).describe(dov_id)
        description["member"] = self._directory[dov_id]
        return description

    def describe_many(self, dov_ids: list[str]
                      ) -> dict[str, dict[str, Any]]:
        """Batch describe, directory-routed; unknown ids are absent.

        Federation-wide stamp re-validation: each id is answered by
        the member that owns it, so a workstation buffer mixing DOVs
        from several members re-validates them all in one call.
        """
        descriptions: dict[str, dict[str, Any]] = {}
        for dov_id in dov_ids:
            member = self._directory.get(dov_id)
            if member is not None \
                    and dov_id in self._members[member]:
                descriptions[dov_id] = self.describe(dov_id)
        return descriptions

    def invalidation_targets(self, dov: DesignObjectVersion) -> list[str]:
        """Versions a committed *dov* supersedes, federation-wide.

        Routed through the global directory: cross-member parents
        (usage-relationship inputs living on other members) are
        invalidation targets too, which a single member could never
        determine from its own store.
        """
        return [p for p in dov.parents if p in self._directory]

    def __contains__(self, dov_id: str) -> bool:
        member = self._directory.get(dov_id)
        return member is not None and dov_id in self._members[member]

    # -- checkin ---------------------------------------------------------------------

    def stage_checkin(self, da_id: str, dot_name: str,
                      data: dict[str, Any], parents: tuple[str, ...],
                      created_at: float) -> DesignObjectVersion:
        """Stage on the DA's home member.

        Cross-member parents are legitimate (usage-relationship
        inputs): they are checked against the directory instead of the
        home member's store.
        """
        home = self._home(da_id)
        local_parents = tuple(p for p in parents if p in home.store)
        foreign_parents = [p for p in parents if p not in home.store]
        for parent in foreign_parents:
            if parent not in self._directory:
                raise UnknownObjectError(
                    f"parent DOV {parent!r} unknown to the federation")
        dov = home.stage_checkin(da_id, dot_name, data, local_parents,
                                 created_at)
        if foreign_parents:
            # record the full (cross-member) lineage on the version
            patched = DesignObjectVersion(
                dov.dov_id, dov.dot_name, dov.data, dov.created_by,
                dov.created_at, tuple(parents))
            home.store.replace_staged(patched)
            dov = patched
        return dov

    def commit_checkin(self, dov_id: str) -> DesignObjectVersion:
        """Commit on the member that staged it; update the directory."""
        for name, repo in self._members.items():
            if dov_id in repo.store.staged_ids():
                dov = repo.commit_checkin(dov_id)
                self._directory[dov_id] = name
                return dov
        raise UnknownObjectError(
            f"no staged checkin for DOV {dov_id!r} in any member")

    def abort_checkin(self, dov_id: str) -> bool:
        """Abort wherever the version was staged."""
        return any(repo.abort_checkin(dov_id)
                   for repo in self._members.values())

    def commit_group(self, dov_ids: list[str]) -> list[DesignObjectVersion]:
        """Commit a staged group, batching per owning member.

        Versions staged on the same member commit through that
        member's atomic :meth:`DesignDataRepository.commit_group` (one
        forced WAL flush each); a group spanning members is atomic
        *per member* only — the federation has no global log, the
        price of the paper's "distributed data management does not
        influence the major model of operation" assumption.  Batch
        order is preserved in the returned list and in the on_commit
        notifications routed through the directory.
        """
        homes: dict[str, str] = {}
        for dov_id in dov_ids:
            for name, repo in self._members.items():
                if dov_id in repo.store.staged_ids():
                    homes[dov_id] = name
                    break
            else:
                raise UnknownObjectError(
                    f"no staged checkin for DOV {dov_id!r} in any member")
        committed: dict[str, DesignObjectVersion] = {}
        for name in dict.fromkeys(homes.values()):
            member_ids = [i for i in dov_ids if homes[i] == name]
            for dov in self._members[name].commit_group(member_ids):
                committed[dov.dov_id] = dov
                self._directory.setdefault(dov.dov_id, name)
        return [committed[dov_id] for dov_id in dov_ids]

    def abort_group(self, dov_ids: list[str]) -> int:
        """Abort a staged group wherever its versions live."""
        return sum(1 for dov_id in dov_ids if self.abort_checkin(dov_id))

    def checkin(self, da_id: str, dot_name: str, data: dict[str, Any],
                parents: tuple[str, ...] = (),
                created_at: float = 0.0) -> DesignObjectVersion:
        """One-shot checkin via the DA's home member."""
        dov = self.stage_checkin(da_id, dot_name, data, parents,
                                 created_at)
        return self.commit_checkin(dov.dov_id)

    # -- failure ---------------------------------------------------------------------

    def crash_member(self, name: str) -> dict[str, int]:
        """Crash one member; the others keep serving."""
        return self.member(name).crash()

    def recover_member(self, name: str) -> dict[str, int]:
        """Recover one member from its own WAL."""
        return self.member(name).recover()

    def crash(self) -> dict[str, int]:
        """Crash every member (whole-site failure, interface parity
        with :class:`DesignDataRepository`)."""
        totals: dict[str, int] = {}
        for repo in self._members.values():
            for key, value in repo.crash().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def recover(self) -> dict[str, int]:
        """Recover every member from its own WAL."""
        totals: dict[str, int] = {}
        for repo in self._members.values():
            for key, value in repo.recover().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # -- stats -----------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Federation-wide statistics."""
        return {
            "members": len(self._members),
            "placements": len(self._placement),
            "directory_entries": len(self._directory),
            "per_member": {name: repo.stats()
                           for name, repo in self._members.items()},
        }
