"""Federated (distributed, heterogeneous) design data repositories.

The paper's future work (Sect.6): "A realistic approach needs to
consider distributed data management by heterogeneous facilities in
order to support data exchange and interoperability of these tools.
Since CONCORD has been designed to be a distributed, transactional
system we assume that heterogeneous and distributed data management
does not influence the major model of operation."

:class:`FederatedRepository` validates that assumption: it presents the
exact :class:`~repro.repository.repository.DesignDataRepository`
interface the TM and CM consume, while placing each DA's derivation
graph on one of several member repositories and routing reads through a
global DOV directory.  The activity managers run unchanged on top of
it — the property the paper predicts.

Scale story (the production-federation arc): every home lookup —
staged or durable — goes through the coordinator-side
:class:`~repro.repository.placement.PlacementIndex`, so cross-member
``commit_group`` resolution is O(batch) at any member count (the seed
scanned every member's ``staged_ids()`` per version), reads stay O(1)
at millions of DOVs, and after a coordinator or whole-site loss
:meth:`recover_directory` rebuilds the entire index from the members'
own WAL-recovered stores.  ``federation_fast_path(False)`` restores
the seed's scan-based resolution for the byte-identical compat guard.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.repository.placement import (
    PlacementIndex,
    federation_fast_path,  # noqa: F401  (re-export: the compat switch)
    federation_fast_path_enabled,
)
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import DesignObjectType
from repro.repository.versions import DerivationGraph, DesignObjectVersion
from repro.txn.decision_log import GlobalDecisionLog
from repro.util.errors import StorageError, UnknownObjectError


class FederatedRepository:
    """Several member repositories behind one repository interface.

    Placement: every DA is assigned to one member (explicitly via
    :meth:`assign`, else by the index's strategy — round-robin under
    ``placement="directory"``, a consistent-hash ring under
    ``placement="hash"``); the DA's derivation graph and all DOVs it
    checks in live there.  The placement index maps DOV ids (staged
    and durable) to members so cross-member reads and commits are
    transparent *and* member-count-independent.
    """

    def __init__(self, members: dict[str, DesignDataRepository],
                 decision_log: GlobalDecisionLog | None = None,
                 placement: str = "directory") -> None:
        if not members:
            raise ValueError("a federation needs at least one member")
        self._members = dict(members)
        self._member_order = list(members)
        #: durable coordinator-side decision log: the commit point of
        #: every cross-member batch (presumed-abort recovery)
        self.decision_log = decision_log if decision_log is not None \
            else GlobalDecisionLog()
        self._next_gtxn = 0
        #: cross-member batches redone at member recovery
        self.redone_batches = 0
        #: DA homes + staged-home map + durable directory, all O(1)
        self.placement_index = PlacementIndex(self._member_order,
                                              placement=placement)
        #: federation-level commit observer (lease invalidations);
        #: notices originate at the owning member and are routed up
        #: through the directory by :meth:`_member_committed`
        self.on_commit: Callable[[DesignObjectVersion], None] | None = None
        for name, repo in self._members.items():
            repo.on_commit = (
                lambda dov, member=name: self._member_committed(member,
                                                                dov))

    # -- membership ------------------------------------------------------------

    def member(self, name: str) -> DesignDataRepository:
        """Access one member repository."""
        try:
            return self._members[name]
        except KeyError:
            raise UnknownObjectError(
                f"no federation member {name!r}") from None

    def members(self) -> dict[str, DesignDataRepository]:
        """All members by name."""
        return dict(self._members)

    def assign(self, da_id: str, member: str) -> None:
        """Pin a DA's data to a specific member (before create_graph)."""
        self.member(member)
        self.placement_index.assign(da_id, member)

    def placement_of(self, da_id: str) -> str:
        """The member holding a DA's derivation graph."""
        home = self.placement_index.home_of(da_id)
        if home is None:
            raise UnknownObjectError(
                f"DA {da_id!r} is not placed in the federation")
        return home

    def _home(self, da_id: str) -> DesignDataRepository:
        return self.member(self.placement_of(da_id))

    def _locate_dov(self, dov_id: str) -> DesignDataRepository:
        member = self.placement_index.locate(dov_id)
        if member is None:
            raise UnknownObjectError(
                f"DOV {dov_id!r} not in the federation directory")
        return self.member(member)

    def owner_of(self, dov_id: str) -> str:
        """Name of the member holding a durable DOV (directory lookup)."""
        member = self.placement_index.locate(dov_id)
        if member is None:
            raise UnknownObjectError(
                f"DOV {dov_id!r} not in the federation directory")
        return member

    def directory_snapshot(self) -> dict[str, str]:
        """Copy of the durable DOV directory — what the rebuild-equality
        checks (and the crash-matrix tests) compare against."""
        return self.placement_index.directory_snapshot()

    def _member_committed(self, member: str,
                          dov: DesignObjectVersion) -> None:
        """A member made *dov* durable: move it from the staged-home
        map into the directory and route the commit notice (lease
        invalidations!) from the owning member up to the
        federation-level observer."""
        self.placement_index.commit_durable(dov.dov_id, member)
        if self.on_commit is not None:
            self.on_commit(dov)

    # -- schema (broadcast: every member knows every DOT) ------------------------

    def register_dot(self, dot: DesignObjectType) -> DesignObjectType:
        """Register a DOT with every member (heterogeneity-transparent)."""
        for repo in self._members.values():
            if dot.name not in {d.name for d in repo.dots()}:
                repo.register_dot(dot)
        return dot

    def dot(self, name: str) -> DesignObjectType:
        """Look up a DOT (any member; schemas are broadcast)."""
        first = self._members[self._member_order[0]]
        return first.dot(name)

    def dots(self) -> Iterator[DesignObjectType]:
        """All DOTs (from the first member; schemas are broadcast)."""
        return self._members[self._member_order[0]].dots()

    # -- graphs ---------------------------------------------------------------------

    def create_graph(self, da_id: str) -> DerivationGraph:
        """Open a DA's graph on its (assigned or strategy-placed)
        member."""
        self.placement_index.place(da_id)
        return self._home(da_id).create_graph(da_id)

    def graph(self, da_id: str) -> DerivationGraph:
        """The derivation graph of a DA (wherever it lives)."""
        return self._home(da_id).graph(da_id)

    def has_graph(self, da_id: str) -> bool:
        """True when some member holds a graph for *da_id*."""
        if self.placement_index.home_of(da_id) is None:
            return False
        return self._home(da_id).has_graph(da_id)

    # -- reads -----------------------------------------------------------------------

    def read(self, dov_id: str) -> DesignObjectVersion:
        """Directory-routed read across members."""
        return self._locate_dov(dov_id).read(dov_id)

    def describe(self, dov_id: str) -> dict[str, Any]:
        """Directory-routed shipping metadata (size + version stamp)."""
        description = self._locate_dov(dov_id).describe(dov_id)
        description["member"] = self.placement_index.locate(dov_id)
        return description

    def describe_many(self, dov_ids: list[str]
                      ) -> dict[str, dict[str, Any]]:
        """Batch describe, directory-routed; unknown ids are absent.

        Federation-wide stamp re-validation: each id is answered by
        the member that owns it, so a workstation buffer mixing DOVs
        from several members re-validates them all in one call.
        """
        descriptions: dict[str, dict[str, Any]] = {}
        for dov_id in dov_ids:
            member = self.placement_index.locate(dov_id)
            if member is not None \
                    and dov_id in self._members[member]:
                descriptions[dov_id] = self.describe(dov_id)
        return descriptions

    def invalidation_targets(self, dov: DesignObjectVersion) -> list[str]:
        """Versions a committed *dov* supersedes, federation-wide.

        Routed through the global directory: cross-member parents
        (usage-relationship inputs living on other members) are
        invalidation targets too, which a single member could never
        determine from its own store.
        """
        return [p for p in dov.parents if p in self.placement_index]

    def __contains__(self, dov_id: str) -> bool:
        member = self.placement_index.locate(dov_id)
        return member is not None and dov_id in self._members[member]

    # -- checkin ---------------------------------------------------------------------

    def stage_checkin(self, da_id: str, dot_name: str,
                      data: dict[str, Any], parents: tuple[str, ...],
                      created_at: float) -> DesignObjectVersion:
        """Stage on the DA's home member.

        Cross-member parents are legitimate (usage-relationship
        inputs): they are checked against the directory instead of the
        home member's store.  The staged version's home is recorded in
        the placement index — the O(1) entry every later commit/abort
        resolution reads instead of scanning members.
        """
        home_name = self.placement_of(da_id)
        home = self.member(home_name)
        local_parents = tuple(p for p in parents if p in home.store)
        foreign_parents = [p for p in parents if p not in home.store]
        for parent in foreign_parents:
            if parent not in self.placement_index:
                raise UnknownObjectError(
                    f"parent DOV {parent!r} unknown to the federation")
        dov = home.stage_checkin(da_id, dot_name, data, local_parents,
                                 created_at)
        if foreign_parents:
            # record the full (cross-member) lineage on the version
            patched = DesignObjectVersion(
                dov.dov_id, dov.dot_name, dov.data, dov.created_by,
                dov.created_at, tuple(parents))
            home.store.replace_staged(patched)
            dov = patched
        self.placement_index.stage(dov.dov_id, home_name)
        return dov

    def _staged_home_of(self, dov_id: str) -> str | None:
        """Home member of a staged version: indexed O(1) on the fast
        path, the seed's every-member scan on the compat path."""
        if federation_fast_path_enabled():
            return self.placement_index.staged_home(dov_id)
        for name, repo in self._members.items():
            if dov_id in repo.store.staged_ids():
                return name
        return None

    def commit_checkin(self, dov_id: str) -> DesignObjectVersion:
        """Commit on the member that staged it; update the directory."""
        name = self._staged_home_of(dov_id)
        if name is None:
            raise UnknownObjectError(
                f"no staged checkin for DOV {dov_id!r} in any member")
        # the member's commit observer moves the id from the
        # staged-home map into the durable directory
        return self._members[name].commit_checkin(dov_id)

    def abort_checkin(self, dov_id: str) -> bool:
        """Abort wherever the version was staged."""
        if federation_fast_path_enabled():
            name = self.placement_index.unstage(dov_id)
            if name is None:
                return False
            return self._members[name].abort_checkin(dov_id)
        self.placement_index.unstage(dov_id)
        return any(repo.abort_checkin(dov_id)
                   for repo in self._members.values())

    def _resolve_batch_homes(self, dov_ids: list[str]) -> dict[str, str]:
        """Map every staged id of a batch to its home member.

        O(batch) on the fast path — one index lookup per id, zero
        member scans.  An unresolvable id aborts the whole batch
        (presumed abort): the portions already resolved are un-staged
        so nothing dangles, and the error names any down member.
        """
        homes: dict[str, str] = {}
        for dov_id in dov_ids:
            name = self._staged_home_of(dov_id)
            if name is None:
                for placed_id in homes:
                    self.abort_checkin(placed_id)
                down = [name for name, repo in self._members.items()
                        if not repo.store.is_up]
                if down:
                    raise StorageError(
                        f"DOV {dov_id!r} unresolvable with member(s) "
                        f"{down} down: batch aborted")
                raise UnknownObjectError(
                    f"no staged checkin for DOV {dov_id!r} in any member")
            homes[dov_id] = name
        return homes

    def commit_group(self, dov_ids: list[str]) -> list[DesignObjectVersion]:
        """Commit a staged group atomically, *across* members.

        The federated atomic commit (paper Sect.6's distributed-commit
        direction).  Three phases under one coordinator:

        1. **prepare** — every owning member forces one prepare record
           carrying its portion's redo information; a member that is
           down here aborts the whole batch (presumed abort: the
           survivors discard their staged portions, nothing is logged);
        2. **decide** — the COMMIT decision and the batch manifest go
           to the :attr:`decision_log` in **one forced write**: the
           global commit point;
        3. **complete** — every member applies the decision through
           its atomic :meth:`DesignDataRepository.commit_group` (one
           WAL force per member).  A member that crashed *after* the
           decision is simply skipped: :meth:`recover_member` consults
           the log and redoes its portion deterministically, so the
           batch is all-or-nothing even under member crashes.

        Home resolution costs O(batch) via the placement index — the
        cost of a cross-member commit is independent of how many
        members the federation has.  Returns the versions that became
        durable *now*, in batch order; portions pending redo at a
        crashed member are absent until its recovery completes them.
        ``on_commit`` notices fire per version in batch order, routed
        through the directory.
        """
        homes = self._resolve_batch_homes(dov_ids)
        manifest = {name: [i for i in dov_ids if homes[i] == name]
                    for name in dict.fromkeys(homes.values())}
        self._next_gtxn += 1
        gtxn_id = f"gtxn-{self._next_gtxn}"

        if len(manifest) == 1:
            # single-member batch: the member's own atomic commit is
            # the whole protocol — no global decision needed.  The
            # member must be checked for availability first: a down
            # member here is a presumed abort (its staged portion died
            # with the crash), not a raw low-level storage fault
            (name, member_ids), = manifest.items()
            member = self._members[name]
            if not member.store.is_up:
                for dov_id in member_ids:
                    self.placement_index.unstage(dov_id)
                raise StorageError(
                    f"member {name!r} down: single-member batch "
                    f"{gtxn_id!r} aborted (presumed abort, nothing "
                    f"was logged)")
            committed = {}
            for dov in member.commit_group(member_ids):
                committed[dov.dov_id] = dov
            return [committed[dov_id] for dov_id in dov_ids]

        self._prepare_batch(gtxn_id, manifest)
        # the global commit point: one forced decision-log write
        self.decision_log.record(gtxn_id, manifest)
        committed = self._complete_batch(gtxn_id, manifest)
        return [committed[dov_id] for dov_id in dov_ids
                if dov_id in committed]

    def _prepare_batch(self, gtxn_id: str,
                       manifest: dict[str, list[str]]) -> None:
        """Phase 1: forced prepare records at every owning member."""
        prepared: list[str] = []
        for name, member_ids in manifest.items():
            try:
                self._members[name].prepare_group(gtxn_id, member_ids)
            except StorageError as exc:
                # presumed abort: no decision record exists, so the
                # batch aborts everywhere — every live member discards
                # its staged portion (prepared or not); the down
                # member's staging was volatile and died with it
                for other, other_ids in manifest.items():
                    if other == name:
                        for dov_id in other_ids:
                            self.placement_index.unstage(dov_id)
                        continue
                    if other in prepared:
                        self._members[other].forget_group(gtxn_id,
                                                          other_ids)
                    else:
                        self._members[other].abort_group(other_ids)
                    for dov_id in other_ids:
                        self.placement_index.unstage(dov_id)
                raise StorageError(
                    f"member {name!r} down during prepare of "
                    f"{gtxn_id!r}: batch aborted") from exc
            prepared.append(name)

    def _complete_batch(self, gtxn_id: str,
                        manifest: dict[str, list[str]]
                        ) -> dict[str, DesignObjectVersion]:
        """Phase 2: apply the logged decision at every live member."""
        committed: dict[str, DesignObjectVersion] = {}
        pending_member = False
        for name, member_ids in manifest.items():
            try:
                dovs = self._members[name].complete_group(gtxn_id,
                                                          member_ids)
            except StorageError:
                # crashed after the decision: recovery redoes it
                pending_member = True
                continue
            for dov in dovs:
                committed[dov.dov_id] = dov
        if not pending_member:
            self.decision_log.mark_complete(gtxn_id)
        return committed

    def resolve_incomplete(self) -> int:
        """Coordinator recovery: finish every logged-but-incomplete
        COMMIT decision (e.g. after a coordinator crash between the
        decision record and the participant notifications).

        For each manifest member, portions already durable are left
        alone, still-staged portions complete through the normal
        member commit, and portions lost to a member crash are redone
        from the member's prepare record.  Returns the number of
        batches settled.
        """
        settled = 0
        for gtxn_id in self.decision_log.incomplete():
            manifest = self.decision_log.manifest(gtxn_id)
            done = True
            for name, member_ids in manifest.items():
                member = self._members[name]
                try:
                    if all(dov_id in member.store
                           for dov_id in member_ids):
                        continue
                    if all(dov_id in member.store.staged_ids()
                           for dov_id in member_ids):
                        dovs = member.complete_group(gtxn_id, member_ids)
                    else:
                        dovs = member.redo_group(gtxn_id)
                        self.redone_batches += 1
                except StorageError:
                    done = False  # member still down: retried later
                    continue
                for dov in dovs:
                    self.placement_index.commit_durable(dov.dov_id,
                                                        name)
            if done:
                self.decision_log.mark_complete(gtxn_id)
                settled += 1
        return settled

    def abort_group(self, dov_ids: list[str]) -> int:
        """Abort a staged group wherever its versions live."""
        return sum(1 for dov_id in dov_ids if self.abort_checkin(dov_id))

    def checkin(self, da_id: str, dot_name: str, data: dict[str, Any],
                parents: tuple[str, ...] = (),
                created_at: float = 0.0) -> DesignObjectVersion:
        """One-shot checkin via the DA's home member."""
        dov = self.stage_checkin(da_id, dot_name, data, parents,
                                 created_at)
        return self.commit_checkin(dov.dov_id)

    # -- failure ---------------------------------------------------------------------

    def crash_member(self, name: str) -> dict[str, int]:
        """Crash one member; the others keep serving.  The member's
        staged versions were volatile, so their staged-home index
        entries are dropped with it."""
        report = self.member(name).crash()
        report["staged_index_dropped"] = \
            self.placement_index.drop_member_staged(name)
        return report

    def recover_member(self, name: str) -> dict[str, int]:
        """Recover one member from its own WAL, then settle its
        in-doubt cross-member batches against the global decision log.

        Presumed abort: a prepared batch with a logged COMMIT decision
        is **redone** from the member's prepare record (the crash hit
        between the global decision and the member's apply); a
        prepared batch without a decision record aborted — the member
        simply settles it and moves on.  This is what makes a
        cross-member ``commit_group`` all-or-nothing under member
        crashes: the decision, not the member's luck, determines the
        outcome.
        """
        report = self.member(name).recover()
        report["redone_batches"] = self._settle_in_doubt(name)
        return report

    def _settle_in_doubt(self, name: str) -> int:
        from repro.net.two_phase_commit import Decision

        member = self.member(name)
        redone = 0
        for gtxn_id in member.in_doubt_groups():
            if self.decision_log.resolve(gtxn_id) is Decision.COMMIT:
                for dov in member.redo_group(gtxn_id):
                    self.placement_index.commit_durable(dov.dov_id,
                                                        name)
                redone += 1
                self.redone_batches += 1
                if self._batch_settled(gtxn_id):
                    self.decision_log.mark_complete(gtxn_id)
            else:
                # presumed abort: no decision record means the batch
                # aborted; the staged portion died with the crash, so
                # settling the prepare marker is all that remains
                member.forget_group(gtxn_id, [])
        return redone

    def _batch_settled(self, gtxn_id: str) -> bool:
        """True when every manifest portion of *gtxn_id* is durable."""
        for name, dov_ids in self.decision_log.manifest(gtxn_id).items():
            try:
                if not all(dov_id in self._members[name].store
                           for dov_id in dov_ids):
                    return False
            except StorageError:
                return False
        return True

    def crash(self) -> dict[str, int]:
        """Crash every member (whole-site failure, interface parity
        with :class:`DesignDataRepository`).

        The coordinator state crashes too: the decision log loses its
        in-memory maps and its un-forced tail (completion markers),
        and the **entire placement index** — DA homes, staged-home
        map, DOV directory — vanishes with the coordinator.  The
        forced log records at the members and the coordinator are what
        recovery rebuilds from; nothing assumes the in-memory
        directory survives.
        """
        totals: dict[str, int] = {}
        for name in self._member_order:
            for key, value in self.crash_member(name).items():
                totals[key] = totals.get(key, 0) + value
        totals["decision_tail_lost"] = self.decision_log.crash()
        totals["directory_entries_lost"] = len(
            self.placement_index.directory_snapshot())
        self.placement_index.clear()
        return totals

    def recover(self) -> dict[str, int]:
        """Recover every member from its own WAL, settle every in-doubt
        cross-member batch against the decision log (itself rebuilt
        from its forced records first), then rebuild the placement
        index from the members' recovered stores."""
        totals: dict[str, int] = {
            "decisions_recovered": self.decision_log.recover()}
        for name in self._member_order:
            for key, value in self.recover_member(name).items():
                totals[key] = totals.get(key, 0) + value
        totals["directory_entries_rebuilt"] = \
            self.recover_directory()["directory_entries"]
        return totals

    def crash_coordinator(self) -> dict[str, int]:
        """Coordinator-only loss: the members keep serving, but the
        decision log's memory + un-forced tail and the whole placement
        index vanish.  :meth:`recover_coordinator` is the restart."""
        report = {
            "decision_tail_lost": self.decision_log.crash(),
            "directory_entries_lost": len(
                self.placement_index.directory_snapshot()),
        }
        self.placement_index.clear()
        return report

    def recover_coordinator(self) -> dict[str, int]:
        """Coordinator restart: rebuild the decision log from its
        forced records, the placement index from the members' stores
        (:meth:`recover_directory`), then finish every logged-but-
        incomplete decision (:meth:`resolve_incomplete`)."""
        totals = {"decisions_recovered": self.decision_log.recover()}
        totals.update(self.recover_directory())
        totals["settled"] = self.resolve_incomplete()
        return totals

    def recover_directory(self) -> dict[str, int]:
        """Rebuild the placement index from the members themselves.

        The index is a volatile cache of durable member truth: DA
        homes come from each member's (WAL-recovered) derivation
        graphs, directory entries from its durable store, staged-home
        entries from its staged set.  A member that is still down
        contributes whatever the surviving index already knew about it
        (its WAL will refresh those entries when it recovers); pins
        made by :meth:`assign` before ``create_graph`` are volatile by
        design and do not survive a coordinator loss.

        Returns rebuild counters; callers that want the equality
        guarantee compare :meth:`directory_snapshot` before and after.
        """
        homes: dict[str, str] = {}
        staged: dict[str, str] = {}
        directory: dict[str, str] = {}
        down = 0
        for name in self._member_order:
            member = self._members[name]
            if not member.store.is_up:
                down += 1
                for da_id, home in self.placement_index.homes().items():
                    if home == name:
                        homes[da_id] = home
                for dov_id, home in \
                        self.placement_index.directory_snapshot().items():
                    if home == name:
                        directory[dov_id] = home
                continue
            for da_id in member.graph_ids():
                homes[da_id] = name
            for dov in member.store:
                directory[dov.dov_id] = name
            for dov_id in member.store.staged_ids():
                staged[dov_id] = name
        self.placement_index.restore(homes, staged, directory)
        return {
            "placements": len(homes),
            "staged_index": len(staged),
            "directory_entries": len(directory),
            "members_down": down,
        }

    # -- stats -----------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Federation-wide statistics."""
        index = self.placement_index.stats()
        return {
            "members": len(self._members),
            "placement": index["placement"],
            "placements": index["placements"],
            "staged_index": index["staged_index"],
            "directory_entries": index["directory_entries"],
            "decision_log": self.decision_log.stats(),
            "redone_batches": self.redone_batches,
            "per_member": {name: repo.stats()
                           for name, repo in self._members.items()},
        }
