"""Federated (distributed, heterogeneous) design data repositories.

The paper's future work (Sect.6): "A realistic approach needs to
consider distributed data management by heterogeneous facilities in
order to support data exchange and interoperability of these tools.
Since CONCORD has been designed to be a distributed, transactional
system we assume that heterogeneous and distributed data management
does not influence the major model of operation."

:class:`FederatedRepository` validates that assumption: it presents the
exact :class:`~repro.repository.repository.DesignDataRepository`
interface the TM and CM consume, while placing each DA's derivation
graph on one of several member repositories and routing reads through a
global DOV directory.  The activity managers run unchanged on top of
it — the property the paper predicts.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.repository.repository import DesignDataRepository
from repro.repository.schema import DesignObjectType
from repro.repository.versions import DerivationGraph, DesignObjectVersion
from repro.txn.decision_log import GlobalDecisionLog
from repro.util.errors import StorageError, UnknownObjectError


class FederatedRepository:
    """Several member repositories behind one repository interface.

    Placement: every DA is assigned to one member (explicitly via
    :meth:`assign`, else round-robin at :meth:`create_graph` time); the
    DA's derivation graph and all DOVs it checks in live there.  A
    directory maps DOV ids to members so cross-member reads (usage
    relationships!) are transparent.
    """

    def __init__(self, members: dict[str, DesignDataRepository],
                 decision_log: GlobalDecisionLog | None = None) -> None:
        if not members:
            raise ValueError("a federation needs at least one member")
        self._members = dict(members)
        self._member_order = list(members)
        self._next_member = 0
        #: durable coordinator-side decision log: the commit point of
        #: every cross-member batch (presumed-abort recovery)
        self.decision_log = decision_log if decision_log is not None \
            else GlobalDecisionLog()
        self._next_gtxn = 0
        #: cross-member batches redone at member recovery
        self.redone_batches = 0
        #: da_id -> member name
        self._placement: dict[str, str] = {}
        #: dov_id -> member name (global directory)
        self._directory: dict[str, str] = {}
        #: federation-level commit observer (lease invalidations);
        #: notices originate at the owning member and are routed up
        #: through the directory by :meth:`_member_committed`
        self.on_commit: Callable[[DesignObjectVersion], None] | None = None
        for name, repo in self._members.items():
            repo.on_commit = (
                lambda dov, member=name: self._member_committed(member,
                                                                dov))

    # -- membership ------------------------------------------------------------

    def member(self, name: str) -> DesignDataRepository:
        """Access one member repository."""
        try:
            return self._members[name]
        except KeyError:
            raise UnknownObjectError(
                f"no federation member {name!r}") from None

    def members(self) -> dict[str, DesignDataRepository]:
        """All members by name."""
        return dict(self._members)

    def assign(self, da_id: str, member: str) -> None:
        """Pin a DA's data to a specific member (before create_graph)."""
        self.member(member)
        self._placement[da_id] = member

    def placement_of(self, da_id: str) -> str:
        """The member holding a DA's derivation graph."""
        try:
            return self._placement[da_id]
        except KeyError:
            raise UnknownObjectError(
                f"DA {da_id!r} is not placed in the federation") from None

    def _home(self, da_id: str) -> DesignDataRepository:
        return self.member(self.placement_of(da_id))

    def _locate_dov(self, dov_id: str) -> DesignDataRepository:
        member = self._directory.get(dov_id)
        if member is None:
            raise UnknownObjectError(
                f"DOV {dov_id!r} not in the federation directory")
        return self.member(member)

    def owner_of(self, dov_id: str) -> str:
        """Name of the member holding a durable DOV (directory lookup)."""
        member = self._directory.get(dov_id)
        if member is None:
            raise UnknownObjectError(
                f"DOV {dov_id!r} not in the federation directory")
        return member

    def _member_committed(self, member: str,
                          dov: DesignObjectVersion) -> None:
        """A member made *dov* durable: register it in the directory
        and route the commit notice (lease invalidations!) from the
        owning member up to the federation-level observer."""
        self._directory[dov.dov_id] = member
        if self.on_commit is not None:
            self.on_commit(dov)

    # -- schema (broadcast: every member knows every DOT) ------------------------

    def register_dot(self, dot: DesignObjectType) -> DesignObjectType:
        """Register a DOT with every member (heterogeneity-transparent)."""
        for repo in self._members.values():
            if dot.name not in {d.name for d in repo.dots()}:
                repo.register_dot(dot)
        return dot

    def dot(self, name: str) -> DesignObjectType:
        """Look up a DOT (any member; schemas are broadcast)."""
        first = self._members[self._member_order[0]]
        return first.dot(name)

    def dots(self) -> Iterator[DesignObjectType]:
        """All DOTs (from the first member; schemas are broadcast)."""
        return self._members[self._member_order[0]].dots()

    # -- graphs ---------------------------------------------------------------------

    def create_graph(self, da_id: str) -> DerivationGraph:
        """Open a DA's graph on its (assigned or round-robin) member."""
        if da_id not in self._placement:
            member = self._member_order[self._next_member
                                        % len(self._member_order)]
            self._next_member += 1
            self._placement[da_id] = member
        return self._home(da_id).create_graph(da_id)

    def graph(self, da_id: str) -> DerivationGraph:
        """The derivation graph of a DA (wherever it lives)."""
        return self._home(da_id).graph(da_id)

    def has_graph(self, da_id: str) -> bool:
        """True when some member holds a graph for *da_id*."""
        if da_id not in self._placement:
            return False
        return self._home(da_id).has_graph(da_id)

    # -- reads -----------------------------------------------------------------------

    def read(self, dov_id: str) -> DesignObjectVersion:
        """Directory-routed read across members."""
        return self._locate_dov(dov_id).read(dov_id)

    def describe(self, dov_id: str) -> dict[str, Any]:
        """Directory-routed shipping metadata (size + version stamp)."""
        description = self._locate_dov(dov_id).describe(dov_id)
        description["member"] = self._directory[dov_id]
        return description

    def describe_many(self, dov_ids: list[str]
                      ) -> dict[str, dict[str, Any]]:
        """Batch describe, directory-routed; unknown ids are absent.

        Federation-wide stamp re-validation: each id is answered by
        the member that owns it, so a workstation buffer mixing DOVs
        from several members re-validates them all in one call.
        """
        descriptions: dict[str, dict[str, Any]] = {}
        for dov_id in dov_ids:
            member = self._directory.get(dov_id)
            if member is not None \
                    and dov_id in self._members[member]:
                descriptions[dov_id] = self.describe(dov_id)
        return descriptions

    def invalidation_targets(self, dov: DesignObjectVersion) -> list[str]:
        """Versions a committed *dov* supersedes, federation-wide.

        Routed through the global directory: cross-member parents
        (usage-relationship inputs living on other members) are
        invalidation targets too, which a single member could never
        determine from its own store.
        """
        return [p for p in dov.parents if p in self._directory]

    def __contains__(self, dov_id: str) -> bool:
        member = self._directory.get(dov_id)
        return member is not None and dov_id in self._members[member]

    # -- checkin ---------------------------------------------------------------------

    def stage_checkin(self, da_id: str, dot_name: str,
                      data: dict[str, Any], parents: tuple[str, ...],
                      created_at: float) -> DesignObjectVersion:
        """Stage on the DA's home member.

        Cross-member parents are legitimate (usage-relationship
        inputs): they are checked against the directory instead of the
        home member's store.
        """
        home = self._home(da_id)
        local_parents = tuple(p for p in parents if p in home.store)
        foreign_parents = [p for p in parents if p not in home.store]
        for parent in foreign_parents:
            if parent not in self._directory:
                raise UnknownObjectError(
                    f"parent DOV {parent!r} unknown to the federation")
        dov = home.stage_checkin(da_id, dot_name, data, local_parents,
                                 created_at)
        if foreign_parents:
            # record the full (cross-member) lineage on the version
            patched = DesignObjectVersion(
                dov.dov_id, dov.dot_name, dov.data, dov.created_by,
                dov.created_at, tuple(parents))
            home.store.replace_staged(patched)
            dov = patched
        return dov

    def commit_checkin(self, dov_id: str) -> DesignObjectVersion:
        """Commit on the member that staged it; update the directory."""
        for name, repo in self._members.items():
            if dov_id in repo.store.staged_ids():
                dov = repo.commit_checkin(dov_id)
                self._directory[dov_id] = name
                return dov
        raise UnknownObjectError(
            f"no staged checkin for DOV {dov_id!r} in any member")

    def abort_checkin(self, dov_id: str) -> bool:
        """Abort wherever the version was staged."""
        return any(repo.abort_checkin(dov_id)
                   for repo in self._members.values())

    def commit_group(self, dov_ids: list[str]) -> list[DesignObjectVersion]:
        """Commit a staged group atomically, *across* members.

        The federated atomic commit (paper Sect.6's distributed-commit
        direction).  Three phases under one coordinator:

        1. **prepare** — every owning member forces one prepare record
           carrying its portion's redo information; a member that is
           down here aborts the whole batch (presumed abort: the
           survivors discard their staged portions, nothing is logged);
        2. **decide** — the COMMIT decision and the batch manifest go
           to the :attr:`decision_log` in **one forced write**: the
           global commit point;
        3. **complete** — every member applies the decision through
           its atomic :meth:`DesignDataRepository.commit_group` (one
           WAL force per member).  A member that crashed *after* the
           decision is simply skipped: :meth:`recover_member` consults
           the log and redoes its portion deterministically, so the
           batch is all-or-nothing even under member crashes.

        Returns the versions that became durable *now*, in batch
        order; portions pending redo at a crashed member are absent
        until its recovery completes them.  ``on_commit`` notices fire
        per version in batch order, routed through the directory.
        """
        homes: dict[str, str] = {}
        for dov_id in dov_ids:
            for name, repo in self._members.items():
                if dov_id in repo.store.staged_ids():
                    homes[dov_id] = name
                    break
            else:
                # presumed abort: the batch cannot form — un-stage the
                # portions already resolved so nothing dangles
                for placed_id, name in homes.items():
                    self._members[name].abort_checkin(placed_id)
                down = [name for name, repo in self._members.items()
                        if not repo.store.is_up]
                if down:
                    raise StorageError(
                        f"DOV {dov_id!r} unresolvable with member(s) "
                        f"{down} down: batch aborted")
                raise UnknownObjectError(
                    f"no staged checkin for DOV {dov_id!r} in any member")
        manifest = {name: [i for i in dov_ids if homes[i] == name]
                    for name in dict.fromkeys(homes.values())}
        self._next_gtxn += 1
        gtxn_id = f"gtxn-{self._next_gtxn}"

        if len(manifest) == 1:
            # single-member batch: the member's own atomic commit is
            # the whole protocol — no global decision needed
            (name, member_ids), = manifest.items()
            committed = {}
            for dov in self._members[name].commit_group(member_ids):
                committed[dov.dov_id] = dov
                self._directory.setdefault(dov.dov_id, name)
            return [committed[dov_id] for dov_id in dov_ids]

        self._prepare_batch(gtxn_id, manifest)
        # the global commit point: one forced decision-log write
        self.decision_log.record(gtxn_id, manifest)
        committed = self._complete_batch(gtxn_id, manifest)
        return [committed[dov_id] for dov_id in dov_ids
                if dov_id in committed]

    def _prepare_batch(self, gtxn_id: str,
                       manifest: dict[str, list[str]]) -> None:
        """Phase 1: forced prepare records at every owning member."""
        prepared: list[str] = []
        for name, member_ids in manifest.items():
            try:
                self._members[name].prepare_group(gtxn_id, member_ids)
            except StorageError as exc:
                # presumed abort: no decision record exists, so the
                # batch aborts everywhere — survivors discard their
                # staged portions; the down member's staging was
                # volatile and died with it
                for done in prepared:
                    self._members[done].forget_group(gtxn_id,
                                                     manifest[done])
                raise StorageError(
                    f"member {name!r} down during prepare of "
                    f"{gtxn_id!r}: batch aborted") from exc
            prepared.append(name)

    def _complete_batch(self, gtxn_id: str,
                        manifest: dict[str, list[str]]
                        ) -> dict[str, DesignObjectVersion]:
        """Phase 2: apply the logged decision at every live member."""
        committed: dict[str, DesignObjectVersion] = {}
        pending_member = False
        for name, member_ids in manifest.items():
            try:
                dovs = self._members[name].complete_group(gtxn_id,
                                                          member_ids)
            except StorageError:
                # crashed after the decision: recovery redoes it
                pending_member = True
                continue
            for dov in dovs:
                committed[dov.dov_id] = dov
                self._directory.setdefault(dov.dov_id, name)
        if not pending_member:
            self.decision_log.mark_complete(gtxn_id)
        return committed

    def resolve_incomplete(self) -> int:
        """Coordinator recovery: finish every logged-but-incomplete
        COMMIT decision (e.g. after a coordinator crash between the
        decision record and the participant notifications).

        For each manifest member, portions already durable are left
        alone, still-staged portions complete through the normal
        member commit, and portions lost to a member crash are redone
        from the member's prepare record.  Returns the number of
        batches settled.
        """
        settled = 0
        for gtxn_id in self.decision_log.incomplete():
            manifest = self.decision_log.manifest(gtxn_id)
            done = True
            for name, member_ids in manifest.items():
                member = self._members[name]
                try:
                    if all(dov_id in member.store
                           for dov_id in member_ids):
                        continue
                    if all(dov_id in member.store.staged_ids()
                           for dov_id in member_ids):
                        dovs = member.complete_group(gtxn_id, member_ids)
                    else:
                        dovs = member.redo_group(gtxn_id)
                        self.redone_batches += 1
                except StorageError:
                    done = False  # member still down: retried later
                    continue
                for dov in dovs:
                    self._directory.setdefault(dov.dov_id, name)
            if done:
                self.decision_log.mark_complete(gtxn_id)
                settled += 1
        return settled

    def abort_group(self, dov_ids: list[str]) -> int:
        """Abort a staged group wherever its versions live."""
        return sum(1 for dov_id in dov_ids if self.abort_checkin(dov_id))

    def checkin(self, da_id: str, dot_name: str, data: dict[str, Any],
                parents: tuple[str, ...] = (),
                created_at: float = 0.0) -> DesignObjectVersion:
        """One-shot checkin via the DA's home member."""
        dov = self.stage_checkin(da_id, dot_name, data, parents,
                                 created_at)
        return self.commit_checkin(dov.dov_id)

    # -- failure ---------------------------------------------------------------------

    def crash_member(self, name: str) -> dict[str, int]:
        """Crash one member; the others keep serving."""
        return self.member(name).crash()

    def recover_member(self, name: str) -> dict[str, int]:
        """Recover one member from its own WAL, then settle its
        in-doubt cross-member batches against the global decision log.

        Presumed abort: a prepared batch with a logged COMMIT decision
        is **redone** from the member's prepare record (the crash hit
        between the global decision and the member's apply); a
        prepared batch without a decision record aborted — the member
        simply settles it and moves on.  This is what makes a
        cross-member ``commit_group`` all-or-nothing under member
        crashes: the decision, not the member's luck, determines the
        outcome.
        """
        report = self.member(name).recover()
        report["redone_batches"] = self._settle_in_doubt(name)
        return report

    def _settle_in_doubt(self, name: str) -> int:
        from repro.net.two_phase_commit import Decision

        member = self.member(name)
        redone = 0
        for gtxn_id in member.in_doubt_groups():
            if self.decision_log.resolve(gtxn_id) is Decision.COMMIT:
                for dov in member.redo_group(gtxn_id):
                    self._directory.setdefault(dov.dov_id, name)
                redone += 1
                self.redone_batches += 1
                if self._batch_settled(gtxn_id):
                    self.decision_log.mark_complete(gtxn_id)
            else:
                # presumed abort: no decision record means the batch
                # aborted; the staged portion died with the crash, so
                # settling the prepare marker is all that remains
                member.forget_group(gtxn_id, [])
        return redone

    def _batch_settled(self, gtxn_id: str) -> bool:
        """True when every manifest portion of *gtxn_id* is durable."""
        for name, dov_ids in self.decision_log.manifest(gtxn_id).items():
            try:
                if not all(dov_id in self._members[name].store
                           for dov_id in dov_ids):
                    return False
            except StorageError:
                return False
        return True

    def crash(self) -> dict[str, int]:
        """Crash every member (whole-site failure, interface parity
        with :class:`DesignDataRepository`).

        The coordinator state crashes too: the decision log loses its
        in-memory maps and its un-forced tail (completion markers);
        the forced decision records are what recovery rebuilds from.
        """
        totals: dict[str, int] = {}
        for repo in self._members.values():
            for key, value in repo.crash().items():
                totals[key] = totals.get(key, 0) + value
        totals["decision_tail_lost"] = self.decision_log.crash()
        return totals

    def recover(self) -> dict[str, int]:
        """Recover every member from its own WAL, then settle every
        in-doubt cross-member batch against the decision log (itself
        rebuilt from its forced records first)."""
        totals: dict[str, int] = {
            "decisions_recovered": self.decision_log.recover()}
        for name in self._member_order:
            for key, value in self.recover_member(name).items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # -- stats -----------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Federation-wide statistics."""
        return {
            "members": len(self._members),
            "placements": len(self._placement),
            "directory_entries": len(self._directory),
            "decision_log": self.decision_log.stats(),
            "redone_batches": self.redone_batches,
            "per_member": {name: repo.stats()
                           for name, repo in self._members.items()},
        }
