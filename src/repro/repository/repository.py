"""The design data repository facade (the paper's "advanced DBMS").

This is the integrated data repository of Fig.1: it manages design
object types (schemas), design object versions, and per-DA derivation
graphs.  The server-TM drives it through four operations:

* :meth:`create_graph` — open a derivation graph for a new DA;
* :meth:`read` — checkout-side read of a durable DOV;
* :meth:`stage_checkin` / :meth:`commit_checkin` / :meth:`abort_checkin`
  — the two-phase checkin used by the TM's 2PC between client and
  server ("client-TM and server-TM have to accomplish a two-phase-commit
  protocol for all their critical interactions", Sect.5.2);
* :meth:`crash` / :meth:`recover` — server-failure semantics: durable
  DOVs and graph structure are rebuilt from the WAL.

Schema consistency is enforced here: "The consistency of the newly
created DOV has to be checked" on checkin (Sect.5.2) — violations raise
:class:`IntegrityError`, which the TM reports upward as the paper's
'checkin failure' situation.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.repository.schema import DesignObjectType
from repro.repository.storage import VersionStore
from repro.repository.versions import (
    DerivationGraph,
    DesignObjectVersion,
    adopt_payload,
)
from repro.repository.wal import LogRecordKind, WriteAheadLog
from repro.util.errors import (
    IntegrityError,
    SchemaError,
    StorageError,
    UnknownObjectError,
)
from repro.util.ids import IdGenerator


class DesignDataRepository:
    """Versioned complex-object store with per-DA derivation graphs."""

    def __init__(self, ids: IdGenerator | None = None,
                 wal: WriteAheadLog | None = None) -> None:
        self.ids = ids or IdGenerator()
        self.wal = wal if wal is not None else WriteAheadLog("repository")
        self.store = VersionStore(self.wal)
        self._dots: dict[str, DesignObjectType] = {}
        self._graphs: dict[str, DerivationGraph] = {}
        #: staged checkins: dov_id -> owning graph (DA id)
        self._pending: dict[str, str] = {}
        #: observer fired with every newly durable DOV — the server-TM
        #: hangs its lease-invalidation scheduling here
        self.on_commit: Callable[[DesignObjectVersion], None] | None = None

    # ------------------------------------------------------------------ schema

    def register_dot(self, dot: DesignObjectType) -> DesignObjectType:
        """Register a design object type (idempotent for identical names)."""
        existing = self._dots.get(dot.name)
        if existing is not None and existing is not dot:
            raise SchemaError(f"DOT {dot.name!r} already registered")
        self._dots[dot.name] = dot
        return dot

    def dot(self, name: str) -> DesignObjectType:
        """Look up a registered DOT."""
        try:
            return self._dots[name]
        except KeyError:
            raise UnknownObjectError(f"DOT {name!r} not registered") from None

    def dots(self) -> Iterator[DesignObjectType]:
        """All registered DOTs."""
        return iter(self._dots.values())

    # ------------------------------------------------------------------ graphs

    def create_graph(self, da_id: str) -> DerivationGraph:
        """Open the derivation graph for a newly created DA."""
        if da_id in self._graphs:
            raise UnknownObjectError(
                f"derivation graph for {da_id!r} already exists")
        graph = DerivationGraph(owner=da_id)
        self._graphs[da_id] = graph
        self.wal.append(LogRecordKind.GRAPH_CREATE, {"da": da_id}, force=True)
        return graph

    def graph(self, da_id: str) -> DerivationGraph:
        """The derivation graph of a DA."""
        try:
            return self._graphs[da_id]
        except KeyError:
            raise UnknownObjectError(
                f"no derivation graph for DA {da_id!r}") from None

    def has_graph(self, da_id: str) -> bool:
        """True when *da_id* owns a derivation graph."""
        return da_id in self._graphs

    def graph_ids(self) -> list[str]:
        """DAs owning a derivation graph here — what a federation
        coordinator reads to rebuild DA placement after losing its
        in-memory index."""
        return list(self._graphs)

    # ------------------------------------------------------------------ reads

    def read(self, dov_id: str) -> DesignObjectVersion:
        """Read a durable version (checkout-side access)."""
        return self.store.get(dov_id)

    def describe(self, dov_id: str) -> dict[str, Any]:
        """Shipping metadata of a durable version (no payload transfer).

        The read-path surface of the data-shipping protocol: the
        modelled payload size (what a checkout fetch costs on the LAN)
        and the version stamp, without shipping the data itself.
        """
        dov = self.store.get(dov_id)
        return {
            "dov_id": dov.dov_id,
            "payload_size": dov.payload_size,
            "stamp": dov.stamp,
        }

    def describe_many(self, dov_ids: list[str]
                      ) -> dict[str, dict[str, Any]]:
        """Batch :meth:`describe`: one control round-trip, many stamps.

        Ids that are not (or no longer) durable are simply absent from
        the result — the caller treats absence as "drop your copy".
        This is the server half of stamp-based buffer re-validation:
        after a server restart a workstation sends its resident ids
        and keeps exactly those whose stamps still match.
        """
        descriptions: dict[str, dict[str, Any]] = {}
        for dov_id in dov_ids:
            if dov_id in self.store:
                descriptions[dov_id] = self.describe(dov_id)
        return descriptions

    def invalidation_targets(self, dov: DesignObjectVersion) -> list[str]:
        """Durable versions a committed *dov* supersedes (its parents).

        The server-TM revokes the read leases on exactly these ids
        when *dov* becomes durable.
        """
        return [p for p in dov.parents if p in self.store]

    def __contains__(self, dov_id: str) -> bool:
        return dov_id in self.store

    # ------------------------------------------------------------- checkin 2PC

    def stage_checkin(self, da_id: str, dot_name: str,
                      data: dict[str, Any], parents: tuple[str, ...],
                      created_at: float) -> DesignObjectVersion:
        """Phase 1 of checkin: validate and stage a new version.

        Raises :class:`IntegrityError` when the data violates the DOT's
        schema constraints — the paper's 'checkin failure' case — and
        :class:`UnknownObjectError` for unknown parents or graph.
        """
        if not self.store.is_up:
            # surface the outage, not a bogus unknown-graph error (the
            # graphs map is volatile and empty while crashed)
            raise StorageError("repository is down (server crash)")
        dot = self.dot(dot_name)
        graph = self.graph(da_id)
        problems = dot.validate(data)
        if problems:
            raise IntegrityError(
                f"checkin into {da_id!r} rejected: " + "; ".join(problems))
        for parent in parents:
            if parent not in self.store:
                raise UnknownObjectError(
                    f"parent DOV {parent!r} is not durable")
        dov = DesignObjectVersion(
            dov_id=self.ids.next("dov"),
            dot_name=dot_name,
            # a payload the client already froze is adopted as-is: the
            # durable version then *shares* the immutable data (and its
            # cached size) with the shipped copy — zero re-walk
            data=adopt_payload(data),
            created_by=da_id,
            created_at=created_at,
            parents=parents,
        )
        self.store.stage(dov)
        self._pending[dov.dov_id] = graph.owner
        return dov

    def commit_checkin(self, dov_id: str) -> DesignObjectVersion:
        """Phase 2 (commit): make the version durable, extend the graph."""
        try:
            da_id = self._pending.pop(dov_id)
        except KeyError:
            raise UnknownObjectError(
                f"no staged checkin for DOV {dov_id!r}") from None
        dov = self.store.commit(dov_id)
        self._graphs[da_id].add(dov)
        if self.on_commit is not None:
            self.on_commit(dov)
        return dov

    def commit_group(self, dov_ids: list[str]) -> list[DesignObjectVersion]:
        """Phase 2 (commit) for a whole staged group, atomically.

        The durability of the batch rides on a single forced WAL flush
        (:meth:`~repro.repository.storage.VersionStore.commit_batch`):
        a server crash mid-group loses the entire unforced tail, so
        recovery sees all of the batch or none of it.  Graphs extend
        and the :attr:`on_commit` observer fires per version *in batch
        order* — lease invalidations for a group are therefore
        scheduled in the same deterministic order the workstation
        checked the versions in.
        """
        if not self.store.is_up:
            # the staging bookkeeping is volatile: while crashed, the
            # honest answer is "down", not "unknown DOV"
            raise StorageError("repository is down (server crash)")
        owners = []
        for dov_id in dov_ids:
            try:
                owners.append(self._pending[dov_id])
            except KeyError:
                raise UnknownObjectError(
                    f"no staged checkin for DOV {dov_id!r}") from None
        dovs = self.store.commit_batch(dov_ids)
        for dov in dovs:
            self._pending.pop(dov.dov_id, None)
        for dov, da_id in zip(dovs, owners):
            self._graphs[da_id].add(dov)
            if self.on_commit is not None:
                self.on_commit(dov)
        return dovs

    def abort_checkin(self, dov_id: str) -> bool:
        """Phase 2 (abort): drop the staged version."""
        self._pending.pop(dov_id, None)
        return self.store.discard(dov_id)

    # ----------------------------------------- federated commit participant

    def prepare_group(self, gtxn_id: str, dov_ids: list[str]) -> None:
        """Member phase 1 of a cross-member batch: force a prepare
        record carrying the batch's complete redo information.

        After this returns, the member can apply the coordinator's
        COMMIT decision even if it crashes first: :meth:`redo_group`
        rebuilds the staged versions from the record.  One forced WAL
        write per member per batch — the participant half of the
        presumed-abort protocol (no abort record will ever be forced).
        """
        records = []
        for dov_id in dov_ids:
            dov = self.store.staged(dov_id)
            record = VersionStore._checkin_payload(dov)
            record["owner"] = self._pending.get(dov_id, dov.created_by)
            records.append(record)
        self.wal.append(LogRecordKind.TXN_PREPARE,
                        {"gtxn": gtxn_id, "records": records},
                        force=True)

    def complete_group(self, gtxn_id: str,
                       dov_ids: list[str]) -> list[DesignObjectVersion]:
        """Member phase 2 of a cross-member batch: apply the logged
        COMMIT decision (atomic :meth:`commit_group`, one WAL force),
        then settle the prepare with an un-forced commit marker."""
        dovs = self.commit_group(dov_ids)
        self.wal.append(LogRecordKind.TXN_COMMIT, {"gtxn": gtxn_id},
                        force=False)
        return dovs

    def forget_group(self, gtxn_id: str, dov_ids: list[str]) -> int:
        """Member abort of a prepared batch (presumed abort: the
        marker is never forced — a missing decision means abort)."""
        discarded = self.abort_group(dov_ids)
        self.wal.append(LogRecordKind.TXN_ABORT, {"gtxn": gtxn_id},
                        force=False)
        return discarded

    def _prepare_record(self, gtxn_id: str) -> dict[str, Any] | None:
        for record in self.wal.stable_records(LogRecordKind.TXN_PREPARE):
            if record.payload.get("gtxn") == gtxn_id:
                return record.payload
        return None

    def in_doubt_groups(self) -> list[str]:
        """Prepared batches without a stable commit/abort marker, in
        prepare order — what a recovering member asks the global
        decision log about."""
        settled = {
            record.payload.get("gtxn")
            for kind in (LogRecordKind.TXN_COMMIT, LogRecordKind.TXN_ABORT)
            for record in self.wal.stable_records(kind)}
        in_doubt: list[str] = []
        for record in self.wal.stable_records(LogRecordKind.TXN_PREPARE):
            gtxn_id = record.payload.get("gtxn")
            if gtxn_id in settled or gtxn_id in in_doubt:
                continue
            if all(raw["dov_id"] in self.store
                   for raw in record.payload["records"]):
                # the whole portion is durable (the commit marker was
                # merely un-forced): effectively settled, no redo
                continue
            in_doubt.append(gtxn_id)
        return in_doubt

    def redo_group(self, gtxn_id: str) -> list[DesignObjectVersion]:
        """Re-apply a logged COMMIT decision after a member crash.

        Rebuilds the batch from the forced prepare record, re-stages
        whatever is not yet durable and commits it through the normal
        atomic group path (fresh ``DOV_CHECKIN`` records + one force,
        so a *second* crash recovers deterministically too).
        Idempotent: already-durable versions are skipped, so redo
        converges no matter how often recovery re-runs it.  The
        :attr:`on_commit` observer fires for every *newly* durable
        version in batch order — exactly what the first commit would
        have produced.
        """
        payload = self._prepare_record(gtxn_id)
        if payload is None:
            raise UnknownObjectError(
                f"no prepare record for batch {gtxn_id!r}")
        to_commit: list[str] = []
        for raw in payload["records"]:
            if raw["dov_id"] in self.store:
                continue  # already durable: redo is idempotent
            dov = DesignObjectVersion(
                dov_id=raw["dov_id"], dot_name=raw["dot"],
                data=adopt_payload(raw["data"]),
                created_by=raw["created_by"],
                created_at=raw["created_at"],
                parents=tuple(raw["parents"]))
            self.store.stage(dov)
            self._pending[dov.dov_id] = raw.get("owner",
                                                raw["created_by"])
            to_commit.append(dov.dov_id)
        redone = {dov.dov_id: dov
                  for dov in (self.commit_group(to_commit)
                              if to_commit else [])}
        self.wal.append(LogRecordKind.TXN_COMMIT, {"gtxn": gtxn_id},
                        force=False)
        return [redone.get(raw["dov_id"], None)
                or self.store.get(raw["dov_id"])
                for raw in payload["records"]]

    def abort_group(self, dov_ids: list[str]) -> int:
        """Phase 2 (abort) for a staged group; returns #discarded."""
        return sum(1 for dov_id in dov_ids if self.abort_checkin(dov_id))

    def checkin(self, da_id: str, dot_name: str, data: dict[str, Any],
                parents: tuple[str, ...] = (),
                created_at: float = 0.0) -> DesignObjectVersion:
        """One-shot checkin (stage + commit) for non-distributed callers."""
        dov = self.stage_checkin(da_id, dot_name, data, parents, created_at)
        return self.commit_checkin(dov.dov_id)

    # ------------------------------------------------------------- checkpointing

    def checkpoint(self) -> int:
        """Write a checkpoint and truncate the WAL before it.

        The checkpoint record carries the complete durable state
        (versions + graph owners), so recovery only needs the latest
        checkpoint plus the WAL tail after it — the standard trade of
        log length against checkpoint cost.  Returns the number of WAL
        records truncated.
        """
        dovs = [{
            "dov_id": dov.dov_id, "dot": dov.dot_name, "data": dov.data,
            "created_by": dov.created_by, "created_at": dov.created_at,
            "parents": list(dov.parents),
        } for dov in self.store]
        record = self.wal.append(LogRecordKind.CHECKPOINT, {
            "dovs": dovs,
            "graph_owners": sorted(self._graphs),
        }, force=True)
        return self.wal.truncate(up_to_lsn=record.lsn - 1)

    # ------------------------------------------------------------------ failure

    def crash(self) -> dict[str, int]:
        """Server crash: volatile state (staged checkins, graphs map) lost."""
        report = self.store.crash()
        report["pending_lost"] = len(self._pending)
        self._pending.clear()
        self._graphs.clear()
        return report

    def recover(self) -> dict[str, int]:
        """Restart: restore the latest checkpoint (if any), then redo
        the WAL tail to rebuild durable DOVs and derivation graphs."""
        checkpoints = self.wal.stable_records(LogRecordKind.CHECKPOINT)
        checkpoint_lsn = 0
        recovered = 0
        if checkpoints:
            latest = checkpoints[-1]
            checkpoint_lsn = latest.lsn
            dovs = [DesignObjectVersion(
                dov_id=raw["dov_id"], dot_name=raw["dot"],
                data=adopt_payload(raw["data"]),
                created_by=raw["created_by"],
                created_at=raw["created_at"],
                parents=tuple(raw["parents"]),
            ) for raw in latest.payload["dovs"]]
            recovered += self.store.restore_bulk(dovs)
            for da_id in latest.payload["graph_owners"]:
                self._graphs.setdefault(da_id, DerivationGraph(owner=da_id))
        else:
            recovered += self.store.recover()

        for record in self.wal.stable_records(LogRecordKind.GRAPH_CREATE):
            if record.lsn <= checkpoint_lsn:
                continue
            da_id = record.payload["da"]
            if da_id not in self._graphs:
                self._graphs[da_id] = DerivationGraph(owner=da_id)
        if checkpoints:
            # redo checkins logged after the checkpoint
            for record in self.wal.stable_records(LogRecordKind.DOV_CHECKIN):
                if record.lsn <= checkpoint_lsn:
                    continue
                payload = record.payload
                dov = DesignObjectVersion(
                    dov_id=payload["dov_id"], dot_name=payload["dot"],
                    data=adopt_payload(payload["data"]),
                    created_by=payload["created_by"],
                    created_at=payload["created_at"],
                    parents=tuple(payload["parents"]))
                recovered += self.store.restore_bulk([dov])
        # (re)populate graphs from the durable versions, parents first
        def creation_order(dov: DesignObjectVersion) -> tuple:
            suffix = dov.dov_id.rsplit("-", 1)[-1]
            numeric = int(suffix) if suffix.isdigit() else 0
            return (dov.created_at, numeric, dov.dov_id)

        for dov in sorted(self.store, key=creation_order):
            graph = self._graphs.get(dov.created_by)
            if graph is not None and dov.dov_id not in graph:
                graph.add(dov)
        return {"versions": recovered, "graphs": len(self._graphs)}

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict[str, int]:
        """Repository size snapshot (used in bench output)."""
        return {
            "dots": len(self._dots),
            "graphs": len(self._graphs),
            "durable_versions": len(self.store),
            "staged_versions": len(self.store.staged_ids()),
            "wal_records": len(self.wal),
        }
