"""Version configurations over derivation graphs.

The paper sidesteps them — "the specific version model and the applied
notion of configurations are beyond the scope of this paper"
(Sect.4.2) — and points to [KS92] for the full model.  This module
implements the essential notion as an extension: a **configuration**
binds one concrete DOV to each *slot* (e.g. one version per subcell of
a CUD), so a composite design state can be named, validated, frozen and
evolved as a unit.

Operations:

* :meth:`ConfigurationManager.compose` — build a configuration from
  explicit slot bindings;
* :meth:`ConfigurationManager.latest` — bind every slot to the newest
  qualifying version of its DA;
* :meth:`Configuration.validate` — all members durable, slot DOTs
  consistent, at most one version per derivation graph (no self-
  conflicting configuration);
* :meth:`ConfigurationManager.freeze` — make the configuration
  immutable;
* :meth:`ConfigurationManager.derive` — successor configuration with
  some slots rebound (history is kept as a configuration lineage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.repository.repository import DesignDataRepository
from repro.util.errors import RepositoryError, UnknownObjectError
from repro.util.ids import IdGenerator


@dataclass
class Configuration:
    """A named binding of slots to concrete DOVs."""

    config_id: str
    name: str
    #: slot name (e.g. subcell name) -> DOV id
    bindings: dict[str, str]
    created_at: float = 0.0
    frozen: bool = False
    #: predecessor configuration, if derived
    parent: str | None = None

    def validate(self, repository: DesignDataRepository) -> list[str]:
        """Consistency problems of this configuration (empty = valid)."""
        problems: list[str] = []
        seen_graphs: dict[str, str] = {}
        for slot, dov_id in sorted(self.bindings.items()):
            if dov_id not in repository:
                problems.append(f"slot {slot!r}: DOV {dov_id!r} is not "
                                f"durable")
                continue
            dov = repository.read(dov_id)
            owner = dov.created_by
            if owner in seen_graphs and seen_graphs[owner] != dov_id:
                problems.append(
                    f"slot {slot!r}: second version of derivation graph "
                    f"{owner!r} (already bound: {seen_graphs[owner]!r})")
            seen_graphs.setdefault(owner, dov_id)
        return problems

    def members(self) -> list[str]:
        """The bound DOV ids, slot-sorted."""
        return [self.bindings[s] for s in sorted(self.bindings)]


class ConfigurationManager:
    """Creates, freezes and evolves configurations over a repository."""

    def __init__(self, repository: DesignDataRepository,
                 ids: IdGenerator | None = None) -> None:
        self.repository = repository
        self.ids = ids or IdGenerator()
        self._configs: dict[str, Configuration] = {}

    # -- lookup ---------------------------------------------------------------

    def get(self, config_id: str) -> Configuration:
        """Look up a configuration."""
        try:
            return self._configs[config_id]
        except KeyError:
            raise UnknownObjectError(
                f"unknown configuration {config_id!r}") from None

    def configurations(self) -> list[Configuration]:
        """All configurations, oldest first."""
        return list(self._configs.values())

    # -- creation --------------------------------------------------------------

    def compose(self, name: str, bindings: dict[str, str],
                created_at: float = 0.0,
                require_valid: bool = True) -> Configuration:
        """Build a configuration from explicit slot bindings."""
        config = Configuration(self.ids.next("cfg"), name,
                               dict(bindings), created_at)
        if require_valid:
            problems = config.validate(self.repository)
            if problems:
                raise RepositoryError(
                    f"configuration {name!r} invalid: "
                    + "; ".join(problems))
        self._configs[config.config_id] = config
        return config

    def latest(self, name: str, slot_to_da: dict[str, str],
               created_at: float = 0.0) -> Configuration:
        """Bind each slot to the newest leaf of its DA's graph."""
        bindings = {}
        for slot, da_id in slot_to_da.items():
            graph = self.repository.graph(da_id)
            leaves = graph.leaves()
            if not leaves:
                raise RepositoryError(
                    f"slot {slot!r}: DA {da_id!r} has no versions yet")
            newest = max(leaves, key=lambda d: (d.created_at, d.dov_id))
            bindings[slot] = newest.dov_id
        return self.compose(name, bindings, created_at)

    # -- lifecycle ---------------------------------------------------------------

    def freeze(self, config_id: str) -> Configuration:
        """Make a configuration immutable (a named release state)."""
        config = self.get(config_id)
        config.frozen = True
        return config

    def derive(self, config_id: str, name: str,
               rebind: dict[str, str],
               created_at: float = 0.0) -> Configuration:
        """Successor configuration with some slots rebound.

        The predecessor must stay intact: deriving from a frozen
        configuration is the normal evolution path.
        """
        base = self.get(config_id)
        unknown = set(rebind) - set(base.bindings)
        if unknown:
            raise RepositoryError(
                f"cannot rebind unknown slots {sorted(unknown)}")
        bindings = {**base.bindings, **rebind}
        successor = self.compose(name, bindings, created_at)
        successor.parent = base.config_id
        return successor

    def lineage(self, config_id: str) -> list[Configuration]:
        """The configuration's ancestry, oldest first."""
        chain: list[Configuration] = []
        current: Configuration | None = self.get(config_id)
        while current is not None:
            chain.append(current)
            current = (self._configs.get(current.parent)
                       if current.parent else None)
        return list(reversed(chain))
