"""The federation's placement index: O(1) homes at any member count.

The seed federation resolved every staged version's home by scanning
**every member's** ``staged_ids()`` — O(members x batch) per
``commit_group``, the one hot path whose cost still grew with
federation size.  :class:`PlacementIndex` is the coordinator-side
index that removes the scans:

* **DA placement** — which member holds a DA's derivation graph.  Two
  strategies: ``"directory"`` (explicit :meth:`assign` pins plus
  round-robin for the rest — the seed behaviour, byte-identical) and
  ``"hash"`` (a consistent-hash ring with virtual nodes, so a DA's
  home is a pure function of its id and the member set — hundreds of
  members place uniformly with no coordinator counter);
* **staged-home map** — staged DOV id -> member, maintained at
  ``stage_checkin`` / ``abort_checkin`` / commit time, so group-commit
  home resolution is O(batch) with zero member scans;
* **directory** — durable DOV id -> member, the O(1) read-routing map
  (millions of DOVs stay one dict lookup).

Everything in the index is *volatile* coordinator state: a coordinator
or whole-site loss wipes it, and
:meth:`~repro.repository.federation.FederatedRepository.recover_directory`
rebuilds it from the members' own WAL-recovered stores — the index is
a cache of the federation's durable truth, never the truth itself.

:func:`federation_fast_path` is the compat switch: ``False`` restores
the seed's member-scan resolution (the index is still *maintained*, so
the flag can flip mid-run), which the perf harness uses to prove the
indexed path byte-identical on the seeded T10 crash matrix.
"""

from __future__ import annotations

from bisect import bisect_right
from contextlib import contextmanager
from typing import Any, Iterator
from zlib import crc32

#: virtual nodes per member on the consistent-hash ring: enough for an
#: even spread at a handful of members, cheap at hundreds
RING_REPLICAS = 64

_FAST_PATH = True


def federation_fast_path_enabled() -> bool:
    """True while indexed (O(batch)) home resolution is active."""
    return _FAST_PATH


def set_federation_fast_path(enabled: bool) -> bool:
    """Toggle indexed home resolution; returns the previous setting."""
    global _FAST_PATH
    previous = _FAST_PATH
    _FAST_PATH = bool(enabled)
    return previous


@contextmanager
def federation_fast_path(enabled: bool = True):
    """Scoped toggle of the indexed resolution path.

    ``federation_fast_path(False)`` restores the seed's
    scan-every-member behaviour — the baseline of the
    ``federation_scaling`` benchmark and the compat side of the T10
    byte-identical determinism guard.
    """
    previous = set_federation_fast_path(enabled)
    try:
        yield
    finally:
        set_federation_fast_path(previous)


class PlacementIndex:
    """DA homes, staged-version homes, and the durable DOV directory.

    Pure bookkeeping — the index never touches a member repository;
    the :class:`~repro.repository.federation.FederatedRepository`
    feeds it at stage/abort/commit time and rebuilds it after a
    coordinator loss.
    """

    PLACEMENTS = ("directory", "hash")

    def __init__(self, members: list[str],
                 placement: str = "directory",
                 ring_replicas: int = RING_REPLICAS) -> None:
        if placement not in self.PLACEMENTS:
            raise ValueError(
                f"unknown placement strategy {placement!r} "
                f"(known: {', '.join(self.PLACEMENTS)})")
        self.placement = placement
        self._members = list(members)
        self._next_member = 0
        #: da id -> member name (assignments + placements)
        self._homes: dict[str, str] = {}
        #: staged (uncommitted) dov id -> member name
        self._staged: dict[str, str] = {}
        #: durable dov id -> member name (the global directory)
        self._directory: dict[str, str] = {}
        self._ring_points: list[int] = []
        self._ring_members: list[str] = []
        if placement == "hash":
            points = []
            for member in members:
                for replica in range(ring_replicas):
                    points.append(
                        (crc32(f"{member}#{replica}".encode()), member))
            # ties (astronomically unlikely) break on member name so
            # the ring is a pure function of the member set
            for point, member in sorted(points):
                self._ring_points.append(point)
                self._ring_members.append(member)

    # -- DA placement -------------------------------------------------------

    def place(self, da_id: str) -> str:
        """Choose (and remember) the home member of a new DA."""
        home = self._homes.get(da_id)
        if home is not None:
            return home
        if self.placement == "hash":
            point = crc32(da_id.encode())
            index = bisect_right(self._ring_points, point)
            home = self._ring_members[index % len(self._ring_members)]
        else:
            home = self._members[self._next_member % len(self._members)]
            self._next_member += 1
        self._homes[da_id] = home
        return home

    def assign(self, da_id: str, member: str) -> None:
        """Pin a DA to an explicit member (overrides any strategy)."""
        self._homes[da_id] = member

    def home_of(self, da_id: str) -> str | None:
        """The placed home of a DA, or None when unplaced."""
        return self._homes.get(da_id)

    def homes(self) -> dict[str, str]:
        """Copy of the DA placement map."""
        return dict(self._homes)

    # -- staged-home map ----------------------------------------------------

    def stage(self, dov_id: str, member: str) -> None:
        """Record where a freshly staged version lives."""
        self._staged[dov_id] = member

    def unstage(self, dov_id: str) -> str | None:
        """Forget a staged version (abort or commit); returns its home."""
        return self._staged.pop(dov_id, None)

    def staged_home(self, dov_id: str) -> str | None:
        """Home member of a staged version — the O(1) resolution the
        seed federation paid a full member scan for."""
        return self._staged.get(dov_id)

    def drop_member_staged(self, member: str) -> int:
        """A member crashed: its staged versions were volatile and died
        with it, so their index entries go too.  Returns #dropped."""
        stale = [dov_id for dov_id, home in self._staged.items()
                 if home == member]
        for dov_id in stale:
            del self._staged[dov_id]
        return len(stale)

    # -- durable directory --------------------------------------------------

    def commit_durable(self, dov_id: str, member: str) -> None:
        """A version became durable at *member*: move it from the
        staged map (wherever the commit came from — normal, redo, or
        recovery) into the directory."""
        self._staged.pop(dov_id, None)
        self._directory[dov_id] = member

    def locate(self, dov_id: str) -> str | None:
        """Member holding a durable version, or None when unknown."""
        return self._directory.get(dov_id)

    def directory_snapshot(self) -> dict[str, str]:
        """Copy of the durable directory (the rebuild-equality oracle)."""
        return dict(self._directory)

    def __contains__(self, dov_id: str) -> bool:
        return dov_id in self._directory

    def __iter__(self) -> Iterator[str]:
        return iter(self._directory)

    # -- failure / rebuild --------------------------------------------------

    def clear(self) -> None:
        """Coordinator loss: the whole index is volatile and vanishes
        (the round-robin cursor survives only through the homes that
        were already placed)."""
        self._homes.clear()
        self._staged.clear()
        self._directory.clear()

    def restore(self, homes: dict[str, str], staged: dict[str, str],
                directory: dict[str, str]) -> None:
        """Install a rebuilt index (directory-rebuild recovery)."""
        self._homes = dict(homes)
        self._staged = dict(staged)
        self._directory = dict(directory)
        if self.placement == "directory":
            # keep round-robin fair after a rebuild: skip past the
            # homes already handed out
            self._next_member = max(self._next_member, len(self._homes))

    # -- stats --------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Index sizes for the federation's stats surface."""
        return {
            "placement": self.placement,
            "placements": len(self._homes),
            "staged_index": len(self._staged),
            "directory_entries": len(self._directory),
        }
