"""Write-ahead log.

Durability of derived DOVs "is guaranteed by the data repository, i.e.
by the logging and recovery methods of the server-TM" (Sect.5.2).  This
module provides that logging substrate: an append-only log with explicit
*force* (flush-to-stable) semantics.  A simulated crash discards the
unforced tail; recovery replays the stable prefix.

The same mechanism backs the DM's persistent script/log and the CM's
cooperation-protocol log — each component owns its own
:class:`WriteAheadLog` instance on its node's stable storage.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator

from repro.repository.versions import is_frozen_payload


class LogRecordKind(str, Enum):
    """Record types used across the activity managers."""

    # repository / server-TM
    DOV_CHECKIN = "dov_checkin"
    GRAPH_CREATE = "graph_create"
    TXN_PREPARE = "txn_prepare"
    TXN_COMMIT = "txn_commit"
    TXN_ABORT = "txn_abort"
    # client-TM
    RECOVERY_POINT = "recovery_point"
    SAVEPOINT = "savepoint"
    # DM
    DOP_START = "dop_start"
    DOP_FINISH = "dop_finish"
    SCRIPT_POSITION = "script_position"
    DOV_USED = "dov_used"
    # CM
    COOP_OPERATION = "coop_operation"
    DA_STATE = "da_state"
    # federated atomic commit (txn layer)
    GLOBAL_DECISION = "global_decision"
    # generic
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    """One immutable log entry."""

    lsn: int
    kind: LogRecordKind
    payload: dict[str, Any] = field(default_factory=dict)


class WriteAheadLog:
    """Append-only log with a volatile tail and a stable prefix.

    ``append`` adds to the volatile tail, ``force`` moves the tail to
    stable storage (counted, because experiment T3 measures forced log
    writes), ``crash`` discards the tail, and ``stable_records`` is what
    recovery sees after a crash.
    """

    def __init__(self, name: str = "wal") -> None:
        self.name = name
        self._stable: list[LogRecord] = []
        #: stable records bucketed by kind — recovery scans ask for one
        #: kind at a time, and a full-log filter per query is wasted
        #: work once logs grow past checkpoint windows
        self._stable_by_kind: dict[LogRecordKind, list[LogRecord]] = {}
        self._volatile: list[LogRecord] = []
        self._next_lsn = 1
        #: number of force() calls that actually flushed something
        self.forced_writes = 0
        #: deep copies skipped because a payload value was frozen
        self.copies_saved = 0

    # -- writing ------------------------------------------------------------

    def _snapshot_payload(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Defensive copy of a record payload, zero-copy for frozen values.

        The WAL must never share mutable state with its callers (a
        later in-place edit would corrupt the durable history), hence
        the deep copy — but frozen payload values cannot be mutated
        through any reference, so they are shared as-is and the walk
        is skipped (:attr:`copies_saved` counts the skips).
        """
        snapshot: dict[str, Any] = {}
        for key, value in payload.items():
            if is_frozen_payload(value):
                snapshot[key] = value
                self.copies_saved += 1
            else:
                snapshot[key] = copy.deepcopy(value)
        return snapshot

    def append(self, kind: LogRecordKind,
               payload: dict[str, Any] | None = None,
               force: bool = False) -> LogRecord:
        """Append a record; optionally force it to stable storage."""
        record = LogRecord(self._next_lsn, kind,
                           self._snapshot_payload(payload or {}))
        self._next_lsn += 1
        self._volatile.append(record)
        if force:
            self.force()
        return record

    def force(self) -> int:
        """Flush the volatile tail; returns the number of records flushed."""
        flushed = len(self._volatile)
        if flushed:
            self._stable.extend(self._volatile)
            for record in self._volatile:
                self._stable_by_kind.setdefault(record.kind,
                                                []).append(record)
            self._volatile.clear()
            self.forced_writes += 1
        return flushed

    # -- failure ------------------------------------------------------------

    def crash(self) -> int:
        """Simulate a crash: the unforced tail is lost. Returns #lost."""
        lost = len(self._volatile)
        self._volatile.clear()
        return lost

    # -- reading ------------------------------------------------------------

    @property
    def stable_lsn(self) -> int:
        """Highest LSN guaranteed to survive a crash (0 when empty)."""
        return self._stable[-1].lsn if self._stable else 0

    def stable_records(self,
                       kind: LogRecordKind | None = None) -> list[LogRecord]:
        """The crash-surviving prefix, optionally filtered by kind.

        By-kind queries read a maintained per-kind bucket instead of
        filtering the whole log, so recovery scans stay proportional
        to the records they actually consume.
        """
        if kind is None:
            return list(self._stable)
        return list(self._stable_by_kind.get(kind, ()))

    def all_records(self) -> list[LogRecord]:
        """Stable prefix plus volatile tail (pre-crash view)."""
        return self._stable + self._volatile

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self.all_records())

    def __len__(self) -> int:
        return len(self._stable) + len(self._volatile)

    def truncate(self, up_to_lsn: int) -> int:
        """Discard stable records with ``lsn <= up_to_lsn`` (checkpointing).

        Returns the number of records discarded.
        """
        before = len(self._stable)
        self._stable = [r for r in self._stable if r.lsn > up_to_lsn]
        self._stable_by_kind = {}
        for record in self._stable:
            self._stable_by_kind.setdefault(record.kind,
                                            []).append(record)
        return before - len(self._stable)
