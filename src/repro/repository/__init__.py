"""Design data repository substrate.

Stands in for the paper's PRIMA-based integrated data repository
[HMMS87, KS92]: DOT schemas with part-of composition, immutable DOVs,
per-DA derivation graphs, WAL-backed durability and server-crash
recovery.
"""

from repro.repository.configurations import (
    Configuration,
    ConfigurationManager,
)
from repro.repository.federation import FederatedRepository
from repro.repository.placement import (
    PlacementIndex,
    federation_fast_path,
)
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    Constraint,
    DesignObjectType,
    range_constraint,
)
from repro.repository.storage import VersionStore
from repro.repository.versions import DerivationGraph, DesignObjectVersion
from repro.repository.wal import LogRecord, LogRecordKind, WriteAheadLog

__all__ = [
    "AttributeDef",
    "Configuration",
    "ConfigurationManager",
    "AttributeKind",
    "Constraint",
    "DerivationGraph",
    "DesignDataRepository",
    "DesignObjectType",
    "DesignObjectVersion",
    "FederatedRepository",
    "LogRecord",
    "LogRecordKind",
    "PlacementIndex",
    "VersionStore",
    "WriteAheadLog",
    "federation_fast_path",
    "range_constraint",
]
