"""Design object versions (DOVs) and derivation graphs.

"All the DOVs created within a DA are organized in a *derivation graph*,
and belong to the scope of that very DA" (Sect.4.1).  A DOV is an
immutable snapshot of design data: tools never update a version in
place, they check out input versions and check in a newly derived one.
The derivation graph records which versions each new version was derived
from; it is a DAG per DA (multiple parents arise when a tool merges
several inputs).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.util.errors import UnknownObjectError

#: modelled byte cost of a fixed-size scalar (numbers, booleans, None)
_SCALAR_BYTES = 8
#: modelled per-entry container overhead (keys, length words, pointers)
_CONTAINER_OVERHEAD = 8


def payload_sizeof(value: Any) -> int:
    """Deterministic modelled size (in bytes) of a design payload.

    This is the unit of the simulated LAN's data-shipping cost model:
    strings and bytes count their length, fixed-size scalars count
    :data:`_SCALAR_BYTES`, containers add a small per-entry overhead.
    The measure is stable across processes (unlike ``sys.getsizeof``),
    which keeps identically seeded simulations byte-identical.
    """
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, (bool, int, float)) or value is None:
        return _SCALAR_BYTES
    if isinstance(value, dict):
        return sum(payload_sizeof(k) + payload_sizeof(v)
                   + _CONTAINER_OVERHEAD for k, v in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(payload_sizeof(item) + _CONTAINER_OVERHEAD
                   for item in value)
    # unknown objects: flat scalar cost (keeps the model total)
    return _SCALAR_BYTES


@dataclass(frozen=True)
class DesignObjectVersion:
    """One immutable design state.

    Attributes
    ----------
    dov_id:
        Repository-wide unique identifier.
    dot_name:
        Name of the :class:`~repro.repository.schema.DesignObjectType`
        this version instantiates.
    data:
        Flat attribute dict (validated against the DOT on checkin).
    created_by:
        Id of the DA in whose scope the version was derived.
    created_at:
        Simulated checkin time.
    parents:
        Ids of the versions this one was derived from (empty for DOV0 /
        initial versions).
    """

    dov_id: str
    dot_name: str
    data: dict[str, Any]
    created_by: str
    created_at: float
    parents: tuple[str, ...] = ()

    def copy_data(self) -> dict[str, Any]:
        """Deep copy of the payload (checkout hands tools a private copy)."""
        return copy.deepcopy(self.data)

    @property
    def payload_size(self) -> int:
        """Modelled size in bytes of the version's data payload.

        Drives the size-aware shipping cost of checkout fetches over
        the simulated LAN (workstation object buffers pay this once
        per miss instead of once per read).
        """
        return payload_sizeof(self.data)

    @property
    def stamp(self) -> tuple[str, float]:
        """Version stamp ``(dov_id, created_at)`` of this snapshot.

        DOVs are immutable, so the id alone identifies the bytes; the
        stamp additionally carries the checkin instant for buffer
        bookkeeping and traces.
        """
        return (self.dov_id, self.created_at)

    def get(self, attr: str, default: Any = None) -> Any:
        """Convenience attribute accessor."""
        return self.data.get(attr, default)


@dataclass
class DerivationGraph:
    """The per-DA DAG of design object versions.

    The graph owner (a DA id) matters for scope checks: the TM protects
    each DA's derivation graph with short locks during checkin
    (Sect.5.2), and the CM's scope-locks isolate whole graphs.
    """

    owner: str
    _nodes: dict[str, DesignObjectVersion] = field(default_factory=dict)
    _children: dict[str, list[str]] = field(default_factory=dict)
    root_id: str | None = None

    # -- mutation -------------------------------------------------------------

    def add(self, dov: DesignObjectVersion) -> None:
        """Insert a version; parents already in the graph gain an edge.

        Parents from *other* graphs (usage-relationship inputs) are
        recorded on the DOV itself but do not create local edges.
        """
        if dov.dov_id in self._nodes:
            raise ValueError(f"duplicate DOV {dov.dov_id!r} in graph "
                             f"of {self.owner!r}")
        self._nodes[dov.dov_id] = dov
        self._children.setdefault(dov.dov_id, [])
        for parent in dov.parents:
            if parent in self._nodes:
                self._children[parent].append(dov.dov_id)
        if self.root_id is None and not dov.parents:
            self.root_id = dov.dov_id

    # -- queries --------------------------------------------------------------

    def __contains__(self, dov_id: str) -> bool:
        return dov_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[DesignObjectVersion]:
        return iter(self._nodes.values())

    def get(self, dov_id: str) -> DesignObjectVersion:
        """Look up a version; raises :class:`UnknownObjectError`."""
        try:
            return self._nodes[dov_id]
        except KeyError:
            raise UnknownObjectError(
                f"DOV {dov_id!r} not in derivation graph of "
                f"{self.owner!r}") from None

    def ids(self) -> set[str]:
        """Ids of all versions in this graph."""
        return set(self._nodes)

    def children_of(self, dov_id: str) -> list[str]:
        """Direct successors of a version within this graph."""
        if dov_id not in self._nodes:
            raise UnknownObjectError(f"DOV {dov_id!r} not in graph")
        return list(self._children[dov_id])

    def leaves(self) -> list[DesignObjectVersion]:
        """Versions without successors — the current frontier."""
        return [self._nodes[i] for i, kids in self._children.items()
                if not kids]

    def descendants_of(self, dov_id: str) -> set[str]:
        """All (transitive) successors of *dov_id* within this graph."""
        if dov_id not in self._nodes:
            raise UnknownObjectError(f"DOV {dov_id!r} not in graph")
        seen: set[str] = set()
        stack = list(self._children[dov_id])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._children[node])
        return seen

    def ancestors_of(self, dov_id: str) -> set[str]:
        """All (transitive) predecessors of *dov_id* within this graph."""
        target = self.get(dov_id)
        seen: set[str] = set()
        stack = [p for p in target.parents if p in self._nodes]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(p for p in self._nodes[node].parents
                         if p in self._nodes)
        return seen

    def is_ancestor(self, maybe_ancestor: str, dov_id: str) -> bool:
        """True when *maybe_ancestor* precedes *dov_id* in this graph."""
        return maybe_ancestor in self.ancestors_of(dov_id)

    def to_dict(self) -> dict[str, Any]:
        """Serialisable snapshot (used by the CM's persistent state)."""
        return {
            "owner": self.owner,
            "root": self.root_id,
            "nodes": sorted(self._nodes),
            "edges": {k: list(v) for k, v in self._children.items() if v},
        }
