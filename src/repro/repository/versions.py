"""Design object versions (DOVs) and derivation graphs.

"All the DOVs created within a DA are organized in a *derivation graph*,
and belong to the scope of that very DA" (Sect.4.1).  A DOV is an
immutable snapshot of design data: tools never update a version in
place, they check out input versions and check in a newly derived one.
The derivation graph records which versions each new version was derived
from; it is a DAG per DA (multiple parents arise when a tool merges
several inputs).
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.util.errors import UnknownObjectError

#: modelled byte cost of a fixed-size scalar (numbers, booleans, None)
_SCALAR_BYTES = 8
#: modelled per-entry container overhead (keys, length words, pointers)
_CONTAINER_OVERHEAD = 8

#: module switch of the frozen-payload fast path.  On (the default),
#: every :class:`DesignObjectVersion` deep-freezes its payload once at
#: construction and stamps the cached modelled size; off reproduces
#: the pre-freeze behaviour exactly (mutable payload dict, deepcopy on
#: :meth:`DesignObjectVersion.copy_data`, a full recursive walk on
#: every ``payload_size`` access) — the in-harness baseline of
#: ``benchmarks/perf`` and the reference side of the determinism guard.
_FAST_PATH = True

#: count of *actual* recursive sizing/freezing walks (cache hits do not
#: count) — the counting hook of the one-walk-per-DOV regression tests.
_WALKS = {"sizeof": 0, "freeze": 0}


def payload_fast_path_enabled() -> bool:
    """True while the frozen-payload fast path is switched on."""
    return _FAST_PATH


def set_payload_fast_path(enabled: bool) -> bool:
    """Switch the fast path on/off; returns the previous setting."""
    global _FAST_PATH
    previous = _FAST_PATH
    _FAST_PATH = bool(enabled)
    return previous


@contextmanager
def payload_fast_path(enabled: bool = True):
    """Scoped fast-path switch (the benchmark/guard compat flag)."""
    previous = set_payload_fast_path(enabled)
    try:
        yield
    finally:
        set_payload_fast_path(previous)


def payload_walks() -> dict[str, int]:
    """Snapshot of the recursive-walk counters (regression hook).

    ``sizeof`` counts full :func:`payload_sizeof` walks that could not
    be served from a frozen container's cached size; ``freeze`` counts
    :func:`freeze_payload` walks.  A frozen DOV costs exactly one
    ``freeze`` walk over its lifetime — every later sizing is O(1).
    """
    return dict(_WALKS)


class FrozenDict(dict):
    """An immutable, payload-sized dict — the frozen canonical form.

    A :class:`dict` subclass (so schema validation, JSON encoding and
    equality with plain dicts keep working unchanged) whose mutators
    all raise, carrying the modelled payload size computed at
    construction.  ``copy.deepcopy``/``copy.copy`` return the instance
    itself — the zero-copy contract: no reference to a frozen payload
    can ever observe a mutation, so sharing is always safe.

    The size stamp is computed in ``__init__`` (members that are
    already frozen answer in O(1), so the freeze walk stays a single
    walk overall) — a directly constructed instance therefore carries
    a correct size too, never a stale default.  Note: construction
    does *not* deep-freeze its members; use :func:`freeze_payload`
    for arbitrary nested data.
    """

    #: structural marker checked by the storage/network fast paths
    __frozen_payload__ = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._frozen_size = sum(
            _sizeof(key) + _sizeof(value) + _CONTAINER_OVERHEAD
            for key, value in self.items())

    def _immutable(self, *args: Any, **kwargs: Any) -> Any:
        raise TypeError("frozen design payload is immutable")

    __setitem__ = __delitem__ = _immutable
    clear = pop = popitem = setdefault = update = _immutable
    __ior__ = _immutable

    @classmethod
    def _adopt(cls, items: dict, size: int) -> "FrozenDict":
        """Construct from already-frozen members with a known size.

        The freeze walk computes every member's size bottom-up anyway;
        adopting that total skips ``__init__``'s re-walk, so freezing
        stays a genuinely single walk (the group-checkin hot path).
        """
        frozen = dict.__new__(cls)
        dict.update(frozen, items)
        frozen._frozen_size = size
        return frozen

    def __deepcopy__(self, memo: dict) -> "FrozenDict":
        return self

    def __copy__(self) -> "FrozenDict":
        return self

    def __reduce__(self):
        return (FrozenDict, (dict(self),))


class FrozenList(list):
    """An immutable, payload-sized list — frozen canonical sequences.

    Mirrors :class:`FrozenDict` for list payload values: still a
    ``list`` (type checks and equality with plain lists hold), but
    every mutator raises and deep copies return the instance itself.
    """

    __frozen_payload__ = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._frozen_size = sum(
            _sizeof(item) + _CONTAINER_OVERHEAD for item in self)

    def _immutable(self, *args: Any, **kwargs: Any) -> Any:
        raise TypeError("frozen design payload is immutable")

    __setitem__ = __delitem__ = __iadd__ = __imul__ = _immutable
    append = extend = insert = pop = remove = _immutable
    sort = reverse = clear = _immutable

    @classmethod
    def _adopt(cls, items: list, size: int) -> "FrozenList":
        """Construct from already-frozen members with a known size
        (see :meth:`FrozenDict._adopt`)."""
        frozen = list.__new__(cls)
        list.extend(frozen, items)
        frozen._frozen_size = size
        return frozen

    def __deepcopy__(self, memo: dict) -> "FrozenList":
        return self

    def __copy__(self) -> "FrozenList":
        return self

    def __reduce__(self):
        return (FrozenList, (list(self),))


_FROZEN_CONTAINERS = (FrozenDict, FrozenList)


def is_frozen_payload(value: Any) -> bool:
    """True when *value* is a frozen payload container (zero-copy safe)."""
    return type(value) in _FROZEN_CONTAINERS


def adopt_payload(data: Any) -> Any:
    """Adopt a frozen payload as-is; shallow-copy a mutable one.

    The single adopt-or-copy rule of every DOV (re)construction site —
    staging a client-frozen checkin, WAL redo, checkpoint restore: a
    frozen payload is shared (byte-identical and immutable, so the
    copy would buy nothing), anything else keeps the defensive copy.
    """
    return data if is_frozen_payload(data) else dict(data)


def _frozen_size_of(value: Any) -> int | None:
    """Cached modelled size when *value* is frozen, else None."""
    if type(value) in _FROZEN_CONTAINERS:
        return value._frozen_size
    return None


def payload_sizeof(value: Any) -> int:
    """Deterministic modelled size (in bytes) of a design payload.

    This is the unit of the simulated LAN's data-shipping cost model:
    strings and bytes count their length, fixed-size scalars count
    :data:`_SCALAR_BYTES`, containers add a small per-entry overhead.
    The measure is stable across processes (unlike ``sys.getsizeof``),
    which keeps identically seeded simulations byte-identical.

    Frozen payload containers short-circuit to the size cached during
    their freeze walk — O(1), no recursion, and the answer is exactly
    what the full walk would compute.
    """
    size = _frozen_size_of(value)
    if size is not None:
        return size
    _WALKS["sizeof"] += 1
    return _sizeof(value)


def _sizeof(value: Any) -> int:
    size = _frozen_size_of(value)
    if size is not None:
        return size
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, (bool, int, float)) or value is None:
        return _SCALAR_BYTES
    if isinstance(value, dict):
        return sum(_sizeof(k) + _sizeof(v)
                   + _CONTAINER_OVERHEAD for k, v in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(_sizeof(item) + _CONTAINER_OVERHEAD
                   for item in value)
    # unknown objects: flat scalar cost (keeps the model total)
    return _SCALAR_BYTES


def freeze_payload(value: Any) -> Any:
    """Deep-freeze a design payload in one walk, caching its size.

    Dicts become :class:`FrozenDict`, lists :class:`FrozenList`, sets
    ``frozenset``, ``bytearray`` becomes ``bytes``; scalars, tuples of
    frozen values and already-frozen containers pass through.  The
    single walk also computes the modelled payload size bottom-up, so
    a frozen container answers :func:`payload_sizeof` in O(1) — the
    zero-copy hot-path invariant: freeze once at DOV creation, never
    deep-copy or re-walk afterwards.
    """
    if type(value) in _FROZEN_CONTAINERS:
        return value
    _WALKS["freeze"] += 1
    frozen, _ = _freeze(value)
    return frozen


def _freeze(value: Any) -> tuple[Any, int]:
    # exact-type dispatch first: payload trees are overwhelmingly
    # plain strs/ints/floats/dicts/lists, and `type(...) is` beats the
    # isinstance chain on exactly that hot path; subclasses and exotic
    # types fall through to the general (isinstance-based) branch
    tp = type(value)
    if tp is str:
        return value, len(value)
    if tp is int or tp is float or tp is bool or value is None:
        return value, _SCALAR_BYTES
    if tp is dict:
        frozen_members: dict[Any, Any] = {}
        total = 0
        for key, item in value.items():
            if type(key) is str:
                frozen_key, key_size = key, len(key)
            else:
                frozen_key, key_size = _freeze(key)
            item_type = type(item)
            if item_type is str:
                frozen_item, item_size = item, len(item)
            elif item_type is int or item_type is float \
                    or item_type is bool or item is None:
                frozen_item, item_size = item, _SCALAR_BYTES
            else:
                frozen_item, item_size = _freeze(item)
            frozen_members[frozen_key] = frozen_item
            total += key_size + item_size + _CONTAINER_OVERHEAD
        return FrozenDict._adopt(frozen_members, total), total
    if tp is list:
        frozen_items: list[Any] = []
        total = 0
        for item in value:
            item_type = type(item)
            if item_type is str:
                frozen_item, item_size = item, len(item)
            elif item_type is int or item_type is float \
                    or item_type is bool or item is None:
                frozen_item, item_size = item, _SCALAR_BYTES
            else:
                frozen_item, item_size = _freeze(item)
            frozen_items.append(frozen_item)
            total += item_size + _CONTAINER_OVERHEAD
        return FrozenList._adopt(frozen_items, total), total
    if tp in _FROZEN_CONTAINERS:
        return value, value._frozen_size
    if tp is bytes:
        return value, len(value)
    if isinstance(value, str):
        return value, len(value)
    if isinstance(value, bytes):
        return value, len(value)
    if isinstance(value, bytearray):
        return bytes(value), len(value)
    if isinstance(value, (bool, int, float)):
        return value, _SCALAR_BYTES
    if isinstance(value, dict):
        # members freeze first and report their sizes, so the frozen
        # container adopts the total without re-walking anything —
        # freezing a payload really is one walk.  The common leaves
        # (str keys, scalar values) are handled inline: a flat design
        # record freezes without a single recursive call per member.
        items: dict[Any, Any] = {}
        total = 0
        for key, item in value.items():
            if type(key) is str:
                frozen_key, key_size = key, len(key)
            else:
                frozen_key, key_size = _freeze(key)
            item_type = type(item)
            if item_type is str:
                frozen_item, item_size = item, len(item)
            elif item_type is int or item_type is float \
                    or item_type is bool or item is None:
                frozen_item, item_size = item, _SCALAR_BYTES
            else:
                frozen_item, item_size = _freeze(item)
            items[frozen_key] = frozen_item
            total += key_size + item_size + _CONTAINER_OVERHEAD
        return FrozenDict._adopt(items, total), total
    if isinstance(value, list):
        members_list: list[Any] = []
        total = 0
        for item in value:
            item_type = type(item)
            if item_type is str:
                frozen_item, item_size = item, len(item)
            elif item_type is int or item_type is float \
                    or item_type is bool or item is None:
                frozen_item, item_size = item, _SCALAR_BYTES
            else:
                frozen_item, item_size = _freeze(item)
            members_list.append(frozen_item)
            total += item_size + _CONTAINER_OVERHEAD
        return FrozenList._adopt(members_list, total), total
    if isinstance(value, tuple):
        # tuples stay tuples (hashable members stay hashable); only
        # their members are frozen
        members = [_freeze(item) for item in value]
        total = sum(item_size + _CONTAINER_OVERHEAD
                    for _, item_size in members)
        if all(frozen is item
               for (frozen, _), item in zip(members, value)):
            return value, total
        return tuple(frozen for frozen, _ in members), total
    if isinstance(value, (set, frozenset)):
        members = [_freeze(item) for item in value]
        total = sum(item_size + _CONTAINER_OVERHEAD
                    for _, item_size in members)
        return frozenset(frozen for frozen, _ in members), total
    # unknown objects: flat scalar cost — but *copied*, not shared:
    # they may be mutable, and every zero-copy short-circuit
    # downstream trusts that nothing reachable from a frozen payload
    # can change (the seed path deep-copied them at each boundary)
    return copy.deepcopy(value), _SCALAR_BYTES


@dataclass(frozen=True)
class DesignObjectVersion:
    """One immutable design state.

    Attributes
    ----------
    dov_id:
        Repository-wide unique identifier.
    dot_name:
        Name of the :class:`~repro.repository.schema.DesignObjectType`
        this version instantiates.
    data:
        Flat attribute dict (validated against the DOT on checkin).
    created_by:
        Id of the DA in whose scope the version was derived.
    created_at:
        Simulated checkin time.
    parents:
        Ids of the versions this one was derived from (empty for DOV0 /
        initial versions).
    """

    dov_id: str
    dot_name: str
    data: dict[str, Any]
    created_by: str
    created_at: float
    parents: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # deep-freeze the payload once at creation (the zero-copy hot
        # path): the one walk both canonicalises the data and caches
        # the modelled size.  Already-frozen data (group checkins, WAL
        # redo, dataclasses.replace) is adopted without any walk.
        data = self.data
        if type(data) is FrozenDict:
            object.__setattr__(self, "_payload_size", data._frozen_size)
        elif _FAST_PATH:
            frozen = freeze_payload(data)
            object.__setattr__(self, "data", frozen)
            object.__setattr__(self, "_payload_size",
                               frozen._frozen_size)

    def copy_data(self) -> dict[str, Any]:
        """The payload as a private-by-construction mapping.

        A frozen payload is returned as-is — it cannot be mutated
        through any reference, so sharing it *is* handing out a
        private copy, without the recursive deepcopy walk.  Unfrozen
        payloads (fast path off) keep the seed's deep copy.
        """
        if is_frozen_payload(self.data):
            return self.data
        return copy.deepcopy(self.data)

    @property
    def payload_size(self) -> int:
        """Modelled size in bytes of the version's data payload.

        Drives the size-aware shipping cost of checkout fetches over
        the simulated LAN (workstation object buffers pay this once
        per miss instead of once per read).  Cached: the freeze walk
        at construction computed it, so this is an O(1) lookup — no
        recursive re-walk per access.
        """
        size = self.__dict__.get("_payload_size")
        if size is not None:
            return size
        size = payload_sizeof(self.data)
        if _FAST_PATH:
            object.__setattr__(self, "_payload_size", size)
        return size

    @property
    def stamp(self) -> tuple[str, float]:
        """Version stamp ``(dov_id, created_at)`` of this snapshot.

        DOVs are immutable, so the id alone identifies the bytes; the
        stamp additionally carries the checkin instant for buffer
        bookkeeping and traces.
        """
        return (self.dov_id, self.created_at)

    def get(self, attr: str, default: Any = None) -> Any:
        """Convenience attribute accessor."""
        return self.data.get(attr, default)


@dataclass
class DerivationGraph:
    """The per-DA DAG of design object versions.

    The graph owner (a DA id) matters for scope checks: the TM protects
    each DA's derivation graph with short locks during checkin
    (Sect.5.2), and the CM's scope-locks isolate whole graphs.
    """

    owner: str
    _nodes: dict[str, DesignObjectVersion] = field(default_factory=dict)
    _children: dict[str, list[str]] = field(default_factory=dict)
    root_id: str | None = None

    # -- mutation -------------------------------------------------------------

    def add(self, dov: DesignObjectVersion) -> None:
        """Insert a version; parents already in the graph gain an edge.

        Parents from *other* graphs (usage-relationship inputs) are
        recorded on the DOV itself but do not create local edges.
        """
        if dov.dov_id in self._nodes:
            raise ValueError(f"duplicate DOV {dov.dov_id!r} in graph "
                             f"of {self.owner!r}")
        self._nodes[dov.dov_id] = dov
        self._children.setdefault(dov.dov_id, [])
        for parent in dov.parents:
            if parent in self._nodes:
                self._children[parent].append(dov.dov_id)
        if self.root_id is None and not dov.parents:
            self.root_id = dov.dov_id

    # -- queries --------------------------------------------------------------

    def __contains__(self, dov_id: str) -> bool:
        return dov_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[DesignObjectVersion]:
        return iter(self._nodes.values())

    def get(self, dov_id: str) -> DesignObjectVersion:
        """Look up a version; raises :class:`UnknownObjectError`."""
        try:
            return self._nodes[dov_id]
        except KeyError:
            raise UnknownObjectError(
                f"DOV {dov_id!r} not in derivation graph of "
                f"{self.owner!r}") from None

    def ids(self) -> set[str]:
        """Ids of all versions in this graph."""
        return set(self._nodes)

    def children_of(self, dov_id: str) -> list[str]:
        """Direct successors of a version within this graph."""
        if dov_id not in self._nodes:
            raise UnknownObjectError(f"DOV {dov_id!r} not in graph")
        return list(self._children[dov_id])

    def leaves(self) -> list[DesignObjectVersion]:
        """Versions without successors — the current frontier."""
        return [self._nodes[i] for i, kids in self._children.items()
                if not kids]

    def descendants_of(self, dov_id: str) -> set[str]:
        """All (transitive) successors of *dov_id* within this graph."""
        if dov_id not in self._nodes:
            raise UnknownObjectError(f"DOV {dov_id!r} not in graph")
        seen: set[str] = set()
        stack = list(self._children[dov_id])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._children[node])
        return seen

    def ancestors_of(self, dov_id: str) -> set[str]:
        """All (transitive) predecessors of *dov_id* within this graph."""
        target = self.get(dov_id)
        seen: set[str] = set()
        stack = [p for p in target.parents if p in self._nodes]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(p for p in self._nodes[node].parents
                         if p in self._nodes)
        return seen

    def is_ancestor(self, maybe_ancestor: str, dov_id: str) -> bool:
        """True when *maybe_ancestor* precedes *dov_id* in this graph."""
        return maybe_ancestor in self.ancestors_of(dov_id)

    def to_dict(self) -> dict[str, Any]:
        """Serialisable snapshot (used by the CM's persistent state)."""
        return {
            "owner": self.owner,
            "root": self.root_id,
            "nodes": sorted(self._nodes),
            "edges": {k: list(v) for k, v in self._children.items() if v},
        }
