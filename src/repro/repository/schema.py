"""Design object types (DOTs).

A DOT gives "the type information for the design states of [a] DA"
(Sect.4.1).  Two properties of DOTs carry weight in the CONCORD model:

* a DOT is a *complex object type*: it has typed attributes and a
  part-of composition hierarchy ("the complex structure of a DOT
  provides a natural basis for structuring the design process");
* delegation requires that "the DOT of the sub-DA has to be a 'part' of
  the super-DA's DOT" — implemented here as :meth:`DesignObjectType.is_part_of`.

Integrity constraints attached to a DOT are enforced by the server-TM /
repository on every checkin ("every derived DOV observes the constraints
specified in the underlying database schema", Sect.5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterator

from repro.util.errors import SchemaError


class AttributeKind(str, Enum):
    """Primitive attribute domains supported by the repository."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"
    JSON = "json"      # arbitrary nested dict/list payload (tool data)

    def accepts(self, value: Any) -> bool:
        """True when *value* belongs to this domain."""
        if self is AttributeKind.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is AttributeKind.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is AttributeKind.STRING:
            return isinstance(value, str)
        if self is AttributeKind.BOOL:
            return isinstance(value, bool)
        return isinstance(value, (dict, list, str, int, float, bool, type(None)))


@dataclass(frozen=True)
class AttributeDef:
    """One typed attribute of a DOT."""

    name: str
    kind: AttributeKind
    required: bool = True
    default: Any = None

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` when *value* is out of domain."""
        if value is None:
            if self.required:
                raise SchemaError(
                    f"attribute {self.name!r} is required but missing")
            return
        if not self.kind.accepts(value):
            raise SchemaError(
                f"attribute {self.name!r} expects {self.kind.value}, "
                f"got {type(value).__name__}: {value!r}")


@dataclass(frozen=True)
class Constraint:
    """A named schema integrity constraint over object data.

    ``check`` receives the flat attribute dict of a DOV and returns True
    when the constraint holds.  Constraints are *schema*-level: they are
    enforced on every checkin, unlike design-specification features
    (AC level) which describe the *goal* and may be unfulfilled in
    preliminary DOVs.
    """

    name: str
    check: Callable[[dict[str, Any]], bool]
    description: str = ""

    def holds(self, data: dict[str, Any]) -> bool:
        """Evaluate the constraint; exceptions count as violations."""
        try:
            return bool(self.check(data))
        except Exception:
            return False


def range_constraint(attr: str, lo: float | None = None,
                     hi: float | None = None) -> Constraint:
    """Constraint that *attr* (when present) lies within [lo, hi]."""

    def check(data: dict[str, Any]) -> bool:
        value = data.get(attr)
        if value is None:
            return True
        if lo is not None and value < lo:
            return False
        if hi is not None and value > hi:
            return False
        return True

    bounds = f"[{lo}, {hi}]"
    return Constraint(f"range({attr})", check,
                      f"{attr} must lie within {bounds}")


class DesignObjectType:
    """A complex design object type with attributes and part-of children.

    Example — a fragment of the VLSI cell hierarchy::

        cell = DesignObjectType("StandardCell", attributes=[...])
        block = DesignObjectType("Block", parts={"cells": cell})
        module = DesignObjectType("Module", parts={"blocks": block})
    """

    def __init__(self, name: str,
                 attributes: list[AttributeDef] | None = None,
                 parts: dict[str, "DesignObjectType"] | None = None,
                 constraints: list[Constraint] | None = None) -> None:
        if not name:
            raise SchemaError("DOT name must be non-empty")
        self.name = name
        self.attributes: dict[str, AttributeDef] = {
            a.name: a for a in (attributes or [])}
        if attributes and len(self.attributes) != len(attributes):
            raise SchemaError(f"duplicate attribute names in DOT {name!r}")
        self.parts: dict[str, DesignObjectType] = dict(parts or {})
        self.constraints: list[Constraint] = list(constraints or [])

    # -- structure ----------------------------------------------------------

    def descendants(self) -> Iterator["DesignObjectType"]:
        """All DOTs reachable via part-of edges (self excluded)."""
        seen: set[str] = set()
        stack = list(self.parts.values())
        while stack:
            dot = stack.pop()
            if dot.name in seen:
                continue
            seen.add(dot.name)
            yield dot
            stack.extend(dot.parts.values())

    def is_part_of(self, other: "DesignObjectType") -> bool:
        """True when *self* is *other* or a (transitive) part of it.

        This is the delegation admissibility check of Sect.4.1.
        """
        if self.name == other.name:
            return True
        return any(d.name == self.name for d in other.descendants())

    # -- validation ----------------------------------------------------------

    def validate(self, data: dict[str, Any]) -> list[str]:
        """Return a list of violation messages for *data* (empty = valid).

        Checks attribute domains, unknown attributes, and all schema
        constraints.  Does not raise; the repository converts a
        non-empty result into an :class:`IntegrityError` on checkin.
        """
        problems: list[str] = []
        for attr in self.attributes.values():
            try:
                attr.validate(data.get(attr.name, attr.default))
            except SchemaError as exc:
                problems.append(str(exc))
        for key in data:
            if key not in self.attributes:
                problems.append(f"unknown attribute {key!r} for DOT "
                                f"{self.name!r}")
        for constraint in self.constraints:
            if not constraint.holds(data):
                problems.append(
                    f"constraint {constraint.name!r} violated"
                    + (f" ({constraint.description})"
                       if constraint.description else ""))
        return problems

    def defaults(self) -> dict[str, Any]:
        """Attribute dict populated with declared defaults."""
        return {a.name: a.default for a in self.attributes.values()
                if a.default is not None}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DesignObjectType({self.name!r}, "
                f"attrs={list(self.attributes)}, parts={list(self.parts)})")
