"""Plain-text table rendering for experiment output.

Every experiment driver returns an :class:`ExperimentResult` whose
``render()`` produces the table the paper-figure regeneration prints —
both in the benchmarks and in ``examples/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

Row = dict[str, Any]


def format_table(rows: list[Row], columns: list[str] | None = None) -> str:
    """Fixed-width text table from a list of dict rows."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column],
                                 len(_fmt(row.get(column, ""))))
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    ruler = "  ".join("-" * widths[c] for c in columns)
    lines = [header, ruler]
    for row in rows:
        lines.append("  ".join(
            _fmt(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@dataclass
class ExperimentResult:
    """Uniform result envelope of one experiment driver."""

    experiment: str
    title: str
    rows: list[Row] = field(default_factory=list)
    columns: list[str] | None = None
    notes: list[str] = field(default_factory=list)
    #: free-form extra payload for assertions in tests/benchmarks
    data: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """The printable experiment report."""
        parts = [f"== {self.experiment}: {self.title} =="]
        parts.append(format_table(self.rows, self.columns))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def add(self, **row: Any) -> None:
        """Append one table row."""
        self.rows.append(row)
