"""Ablation experiments for CONCORD's design choices (A1-A3).

Each ablation removes one mechanism the paper argues for and measures
what it was buying:

* **A1 — quality-gated propagation** (Sect.4.1 usage relationships):
  replace the feature-gated Propagate with saga-style ungated early
  release and measure the rework it induces;
* **A2 — recovery-point policy** (Sect.5.2): sweep the recovery-point
  interval and measure lost work against recovery-point writes (the
  fire-wall density trade-off);
* **A3 — local commit optimisation** (Sect.6): the paper proposes
  implementing same-machine communication (DM-TM) "based on main
  memory communication"; measure 2PC latency with and without the
  local fast path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.models import concord_model
from repro.bench.reporting import ExperimentResult
from repro.net.network import Network, NodeKind
from repro.net.two_phase_commit import TwoPhaseCoordinator, Vote
from repro.te.recovery import RecoveryPointPolicy
from repro.workload.generator import team_workload
from repro.workload.simulator import TeamSimulator, crash_lost_work


# ---------------------------------------------------------------------------
# A1 — quality gating
# ---------------------------------------------------------------------------

def run_a1(team_sizes: tuple[int, ...] = (4, 8),
           seed: int = 7) -> ExperimentResult:
    """Quality-gated vs ungated pre-release.

    The gate is modelled by the rework probability consumers face:
    gated propagation delivers only results that already fulfil the
    required features (withdrawals are rare); ungated release delivers
    whatever exists (frequent invalidation).  Sweep the invalidation
    risk between the two poles.
    """
    result = ExperimentResult(
        "A1", "Ablation: quality-gated propagation vs ungated "
              "early release")
    for team in team_sizes:
        workload = team_workload(team, seed=seed)
        for label, rework in (("gated (concord)", 0.1),
                              ("weak gate", 0.3),
                              ("ungated (saga-like)", 0.6),
                              ("no invalidation handling", 0.9)):
            model = concord_model(rework_probability=rework)
            metrics = TeamSimulator(model, workload).run()
            result.add(team=team, variant=label,
                       rework_probability=rework,
                       makespan=round(metrics.makespan, 1),
                       rework=round(metrics.total_rework, 1))
    result.notes.append(
        "expected shape: makespan and rework grow monotonically as the "
        "quality gate weakens — the gate is what makes pre-release "
        "safe")
    return result


# ---------------------------------------------------------------------------
# A2 — recovery-point density
# ---------------------------------------------------------------------------

def run_a2(intervals: tuple[float, ...] = (5.0, 15.0, 30.0, 60.0, 0.0),
           step_durations: tuple[float, ...] = (55.0, 70.0, 62.0, 48.0),
           crash_times: tuple[float, ...] = (43.0, 101.0, 173.0)
           ) -> ExperimentResult:
    """Recovery-point interval: lost work vs point-writing cost.

    ``interval=0`` disables periodic points (checkout-only) — the
    paper's mechanism degenerates to step-granular recovery.
    """
    result = ExperimentResult(
        "A2", "Ablation: recovery-point interval (lost work vs "
              "recovery-point writes)")
    steps = list(step_durations)
    total = sum(steps)
    for interval in intervals:
        model = concord_model(recovery_point_interval=interval)
        losses = [crash_lost_work(model, steps, t).lost_work
                  for t in crash_times]
        if interval > 0:
            points = sum(int(duration // interval)
                         for duration in steps) + len(steps)
        else:
            points = len(steps)  # the mandatory post-checkout points
        result.add(
            interval=interval if interval else "off",
            mean_lost=round(sum(losses) / len(losses), 1),
            max_lost=round(max(losses), 1),
            recovery_point_writes=points,
            writes_per_100min=round(points / total * 100, 2),
        )
    result.notes.append(
        "expected shape: smaller intervals bound lost work tighter but "
        "write more recovery points — the fire-wall density trade-off "
        "of Sect.5.2")
    return result


# ---------------------------------------------------------------------------
# A3 — local commit fast path
# ---------------------------------------------------------------------------

@dataclass
class _YesParticipant:
    node_id: str

    def prepare(self, txn_id: str) -> Vote:
        return Vote.YES

    def commit(self, txn_id: str) -> None:
        pass

    def abort(self, txn_id: str) -> None:
        pass


def run_a3(commits: int = 50) -> ExperimentResult:
    """Same-machine 2PC with vs without the main-memory fast path.

    Coordinator and participant on the *same* node model the DM-TM
    case: with the local fast path every hop costs local latency, the
    ablation charges full LAN latency to every message.
    """
    result = ExperimentResult(
        "A3", "Ablation: local (main-memory) commit optimisation")
    for label, local_latency in (("main-memory fast path", 0.0005),
                                 ("no fast path (LAN cost)", 0.010)):
        network = Network(lan_latency=0.010,
                          local_latency=local_latency)
        network.add_node("machine", NodeKind.WORKSTATION)
        coordinator = TwoPhaseCoordinator(network, "machine")
        participant = _YesParticipant("machine")
        total_latency = 0.0
        for i in range(commits):
            outcome = coordinator.execute(f"txn-{label}-{i}",
                                          [participant])
            total_latency += outcome.latency
        result.add(variant=label,
                   commits=commits,
                   total_latency_ms=round(total_latency * 1000, 2),
                   per_commit_ms=round(total_latency / commits * 1000,
                                       3))
    fast, slow = result.rows
    result.data["speedup"] = (slow["per_commit_ms"]
                              / fast["per_commit_ms"])
    result.notes.append(
        "expected shape: the local fast path cuts per-commit latency "
        "by the LAN/local latency ratio — the Sect.6 argument for "
        "main-memory communication between co-located managers")
    return result


ALL_ABLATIONS = {"A1": run_a1, "A2": run_a2, "A3": run_a3}
