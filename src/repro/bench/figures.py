"""Drivers regenerating the paper's figures F1-F8.

The paper has no quantitative tables; its figures are the evaluation.
Each ``run_fN`` builds the figure's scenario on the real system and
returns an :class:`~repro.bench.reporting.ExperimentResult` whose rows
are the machine-checkable content of the figure.  EXPERIMENTS.md
records the paper-vs-measured comparison.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentResult
from repro.bench.scenarios import (
    fig5_delegation_scenario,
    make_vlsi_system,
    run_full_chip_design,
)
from repro.core.states import (
    DaOperation,
    DaState,
    DaStateMachine,
    legal_operations,
    transition_table,
)
from repro.dc.script import ActionKind
from repro.util.errors import IllegalTransitionError
from repro.util.trace import Level
from repro.vlsi.cells import sample_hierarchy
from repro.vlsi.floorplan import Floorplan
from repro.vlsi.methodology import (
    alternative_paths_script,
    chip_design_script,
    playout_constraints,
    traversal_matrix,
    traverse_design_plane,
)


# ---------------------------------------------------------------------------
# F1 — Fig.1: abstraction levels of the CONCORD model
# ---------------------------------------------------------------------------

def run_f1() -> ExperimentResult:
    """One full design run traced across the AC / DC / TE levels.

    Regenerates Fig.1's layering as the operation counts each level's
    manager performed, demonstrating the nesting (every DOP commit at
    DC wraps checkout/work/checkin at TE, every cooperation operation
    sits above the DC work flow).
    """
    system, _report = fig5_delegation_scenario()
    result = ExperimentResult("F1", "Abstraction levels of the CONCORD "
                                    "model (operation counts per level)")
    for level in (Level.AC, Level.DC, Level.TE):
        histogram = system.trace.count_by_operation(level)
        total = sum(histogram.values())
        top = sorted(histogram.items(), key=lambda kv: -kv[1])[:5]
        result.add(level=level.value, operations=total,
                   top_operations=", ".join(f"{k}×{v}" for k, v in top))
    counts = system.trace.count_by_level()
    result.data["counts"] = {lv.value: n for lv, n in counts.items()}
    result.notes.append(
        "every level is non-empty and TE >= DC DOP operations: the "
        "three-layer nesting of Fig.1")
    return result


# ---------------------------------------------------------------------------
# F2 — Fig.2: the design plane
# ---------------------------------------------------------------------------

def run_f2() -> ExperimentResult:
    """Traversal of the design plane (4 domains × 4 hierarchy levels)."""
    hierarchy = sample_hierarchy()
    steps = traverse_design_plane(hierarchy)
    matrix = traversal_matrix(steps)
    result = ExperimentResult(
        "F2", "Design plane traversal (tool applications per "
              "domain × hierarchy level)")
    domains = ("behavior", "structure", "floor_plan", "mask_layout")
    levels = ("CHIP", "MODULE", "BLOCK", "STANDARD_CELL")
    for level in levels:
        row = {"hierarchy": level}
        for domain in domains:
            row[domain] = matrix.get((domain, level), 0)
        result.add(**row)
    result.data["steps"] = steps
    result.data["tool_order"] = [s.tool for s in steps]
    result.notes.append(
        f"{len(steps)} tool applications; starts with structure "
        f"synthesis (tool 1), ends with chip assembly (tool 7)")
    return result


# ---------------------------------------------------------------------------
# F3 — Fig.3: chip planning work flow
# ---------------------------------------------------------------------------

def run_f3() -> ExperimentResult:
    """Chip planning: inputs -> chip planner -> floorplan + interfaces."""
    system = make_vlsi_system()
    da = run_full_chip_design(system)
    leaf = system.repository.graph(da.da_id).leaves()[0]
    result = ExperimentResult(
        "F3", "Chip planning (Fig.3): inputs and outputs of the CUD run")
    plan_dov = None
    for dov in system.repository.graph(da.da_id):
        if dov.data.get("floorplan"):
            plan_dov = dov
            break
    assert plan_dov is not None
    floorplan = Floorplan.from_dict(plan_dov.data["floorplan"])
    result.add(artifact="module and net list (input)",
               value=f"{len(plan_dov.data['structure']['subcells'])} "
                     f"subcells, "
                     f"{len(plan_dov.data['structure']['netlist']['nets'])}"
                     f" nets")
    result.add(artifact="shape functions (input)",
               value=f"{len(plan_dov.data['shape_functions'])} subcell "
                     f"staircases")
    result.add(artifact="floorplan interface (input)",
               value=f"CUD bounds "
                     f"{plan_dov.data['interface']['max_width']}x"
                     f"{plan_dov.data['interface']['max_height']}, "
                     f"{len(plan_dov.data['interface']['pins'])} pin "
                     f"intervals")
    result.add(artifact="floorplan contents (output)",
               value=f"{len(floorplan.placements)} placements, "
                     f"{floorplan.width}x{floorplan.height}, "
                     f"wirelength {floorplan.wirelength}")
    result.add(artifact="floorplan interfaces (output)",
               value=f"{len(floorplan.subcell_interfaces())} subcell "
                     f"interfaces for the next level")
    result.data["floorplan"] = floorplan
    result.data["final_dov"] = leaf.dov_id
    result.notes.append("floorplan is geometrically valid: "
                        + ("yes" if not floorplan.validate() else "NO"))
    return result


# ---------------------------------------------------------------------------
# F4 — Fig.4: design activities and DA hierarchies
# ---------------------------------------------------------------------------

def run_f4() -> ExperimentResult:
    """DA description vectors and the delegation hierarchy of Fig.4b."""
    system, report = fig5_delegation_scenario()
    result = ExperimentResult(
        "F4", "Design activities and DA hierarchies (description "
              "vectors + delegation tree)")
    for da in system.cm.das():
        result.add(
            da=da.da_id,
            parent=da.parent or "-",
            dot=da.dot.name,
            designer=da.designer,
            spec_features=len(da.spec),
            state=da.state.value,
            depth=system.cm.hierarchy_depth(da.da_id),
        )
    snapshot = system.cm.hierarchy_snapshot()
    result.data["hierarchy"] = snapshot
    result.data["delegations"] = len(system.cm._delegations)
    result.notes.append(
        "every sub-DA's DOT is a part of its super-DA's DOT "
        "(Module is part of Chip)")
    return result


# ---------------------------------------------------------------------------
# F5 — Fig.5: the delegation scenario within chip planning
# ---------------------------------------------------------------------------

def run_f5() -> ExperimentResult:
    """The full Fig.5 episode incl. impossible-spec renegotiation."""
    system, report = fig5_delegation_scenario()
    result = ExperimentResult(
        "F5", "Delegation scenario within chip planning (Fig.5)")
    for i, phase in enumerate(report.phases, 1):
        result.add(phase=i, event=phase)
    result.data["report"] = report
    result.data["protocol_records"] = len(system.cm.log)
    total_inherited = sum(len(v) for v in report.inherited_dovs.values())
    result.notes.append(
        f"{len(report.sub_das)} sub-DAs created; "
        f"{total_inherited} final DOVs devolved to "
        f"{report.top_da}'s scope at termination")
    result.notes.append(
        f"impossible specification raised by {report.impossible_from}; "
        f"specs of {', '.join(report.modified_specs)} modified "
        f"(more area for A, less for B)")
    return result


# ---------------------------------------------------------------------------
# F6 — Fig.6: sample scripts
# ---------------------------------------------------------------------------

def run_f6() -> ExperimentResult:
    """The two Fig.6 scripts: enumeration, openness, constraint checks."""
    constraints = playout_constraints()
    result = ExperimentResult("F6", "Sample scripts (Fig.6)")

    fig6a = chip_design_script()
    cursor = fig6a.cursor()
    first = cursor.enabled()[0]
    result.add(script="Fig.6a", property="fixed first step",
               value=first.tool or first.kind.value)
    cursor.fire(first.token)
    open_action = cursor.enabled()[0]
    result.add(script="Fig.6a", property="then an open segment",
               value=open_action.kind.value)
    # the designer inserts the intermediate steps the constraints demand
    for tool in ("shape_function_generator", "pad_frame_editor",
                 "chip_planner"):
        cursor.fire(open_action.token, ("insert", tool))
        pending = cursor.enabled()[0]
        cursor.fire(pending.token)       # execute the inserted step
        open_action = cursor.enabled()[0]
    cursor.fire(open_action.token, "close")
    last = cursor.enabled()[0]
    result.add(script="Fig.6a", property="fixed last step",
               value=last.tool)
    cursor.fire(last.token)
    executed = list(cursor.executed_tools())
    result.add(script="Fig.6a", property="executed sequence legal",
               value=str(constraints.violations(executed) == []))

    fig6b = alternative_paths_script()
    sequences = fig6b.sequences()
    result.add(script="Fig.6b", property="alternative paths",
               value=len(sequences))
    for i, sequence in enumerate(sequences):
        result.add(script="Fig.6b", property=f"path {i}",
                   value=" -> ".join(sequence))
    problems = constraints.validate_script(
        fig6b, history=["structure_synthesis"])
    result.add(script="Fig.6b",
               property="valid after structure synthesis",
               value=str(problems == []))
    result.data["fig6a_executed"] = executed
    result.data["fig6b_sequences"] = sequences
    return result


# ---------------------------------------------------------------------------
# F7 — Fig.7: the DA state/transition graph
# ---------------------------------------------------------------------------

def run_f7() -> ExperimentResult:
    """Exhaustive legality matrix of the Fig.7 state machine."""
    result = ExperimentResult(
        "F7", "Simplified state/transition graph for a DA (Fig.7)")
    table = transition_table()
    states = [DaState.GENERATED, DaState.ACTIVE, DaState.NEGOTIATING,
              DaState.READY_FOR_TERMINATION, DaState.TERMINATED]
    legal = illegal = 0
    for state in states:
        allowed = legal_operations(state)
        targets = []
        for operation in allowed:
            machine = DaStateMachine("probe")
            machine.state = state
            new_state = machine.apply(operation)
            targets.append(f"{operation.value}->{new_state.value}")
            legal += 1
        for operation in DaOperation:
            if operation in allowed:
                continue
            machine = DaStateMachine("probe")
            machine.state = state
            try:
                machine.apply(operation)
                raise AssertionError(
                    f"{operation} unexpectedly legal in {state}")
            except IllegalTransitionError:
                illegal += 1
        result.add(state=state.value, legal_operations=len(allowed),
                   transitions="; ".join(sorted(targets)) or "-")
    result.data["table"] = table
    result.data["legal"] = legal
    result.data["illegal"] = illegal
    result.notes.append(
        f"{legal} legal transitions exercised, {illegal} illegal "
        f"(state, operation) pairs correctly rejected")
    return result


# ---------------------------------------------------------------------------
# F8 — Fig.8: responsibilities and interplay of activity managers
# ---------------------------------------------------------------------------

def run_f8() -> ExperimentResult:
    """Joint failure handling across CM / DM / TM (Fig.8).

    Three episodes: a workstation crash in the middle of a DOP (TM
    recovers the context from the recovery point, DM resumes the
    script), a workstation crash between DOPs (DM forward recovery
    from persistent script + log), and a server crash (repository redo
    from the WAL, CM reload of the persistent hierarchy state).
    """
    result = ExperimentResult(
        "F8", "Responsibilities and interplay of activity managers "
              "(joint failure handling)")

    # --- episode 1: workstation crash mid-DOP ------------------------------
    system = make_vlsi_system(("ws-1",), recovery_interval=30.0)
    da = run_full_chip_design(system)
    runtime = system.runtime(da.da_id)
    client_tm = runtime.client_tm
    basis = system.repository.graph(da.da_id).leaves()[0].dov_id
    dop = client_tm.begin_dop(da.da_id, "chip_planner")
    client_tm.checkout(dop, basis)
    client_tm.work(dop, 30.0)          # interval recovery point fires
    client_tm.work(dop, 15.0)          # ... 15 minutes past the point
    work_before = dop.context.work_done
    system.crash_workstation("ws-1")
    system.network.restart_node("ws-1")
    recovered, point_time = client_tm.recover_dop(dop.dop_id, da.da_id,
                                                  "chip_planner")
    lost = work_before - recovered.context.work_done
    result.add(episode="workstation crash mid-DOP",
               manager="client-TM",
               recovered=f"DOP context at recovery point "
                         f"({recovered.context.work_done:.0f} of "
                         f"{work_before:.0f} min kept)",
               lost=f"{lost:.0f} min since last recovery point")
    client_tm.abort_dop(recovered, "episode cleanup")

    # --- episode 2: workstation crash between DOPs ---------------------------
    system2 = make_vlsi_system(("ws-1",))
    da2 = run_full_chip_design(system2)
    dm2 = system2.runtime(da2.da_id).dm
    executed_before = dm2.executed_dops
    system2.crash_workstation("ws-1")
    reports = system2.restart_workstation("ws-1")
    report2 = reports[da2.da_id]
    result.add(episode="workstation crash between DOPs",
               manager="DM",
               recovered=f"script position replayed "
                         f"({report2['script_positions_replayed']} "
                         f"log records), "
                         f"{report2['executed_dops']} DOPs intact",
               lost="none (forward recovery from persistent script+log)")
    assert report2["executed_dops"] == executed_before

    # --- episode 3: server crash ----------------------------------------------
    system3, fig5 = fig5_delegation_scenario()
    versions_before = len(system3.repository.store)
    das_before = len(system3.cm.das())
    system3.crash_server()
    system3.restart_server()
    versions_after = len(system3.repository.store)
    das_after = len(system3.cm.das())
    result.add(episode="server crash",
               manager="server-TM/repository + CM",
               recovered=f"{versions_after}/{versions_before} durable "
                         f"DOVs redone from WAL; {das_after}/{das_before}"
                         f" DAs reloaded from persistent hierarchy state",
               lost="only staged (uncommitted) checkins")
    result.data["episodes"] = 3
    result.data["dov_recovery"] = (versions_before, versions_after)
    result.data["da_recovery"] = (das_before, das_after)
    return result


ALL_FIGURES = {
    "F1": run_f1, "F2": run_f2, "F3": run_f3, "F4": run_f4,
    "F5": run_f5, "F6": run_f6, "F7": run_f7, "F8": run_f8,
}
