"""Microbenchmark harness for the zero-copy hot paths.

Wall-clock throughput of the four hot paths the frozen-payload fast
path optimises — buffer-hit checkout, write-through checkout/checkin
round trips, group-checkin flushes, kernel event dispatch — plus the
payload-sizing primitive itself.  Where the fast path changes the
mechanics, each benchmark is measured twice: once with the frozen
fast path on (the default production configuration) and once with the
pre-freeze deepcopy baseline
(:func:`~repro.repository.versions.payload_fast_path` ``(False)``),
so every report carries its own in-harness speedup.

``python -m repro perf`` (or ``python benchmarks/perf/run_perf.py``)
runs the suite and emits ``BENCH_PERF.json`` at the repo root — the
perf trajectory future PRs diff against with ``tools/bench_report.py``.
All workloads are deterministic; only the wall-clock timings vary
between machines, which is why the CI perf job is non-blocking.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

from repro.net.network import Network
from repro.net.rpc import TransactionalRpc
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.repository.versions import (
    DesignObjectVersion,
    payload_fast_path,
)
from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel
from repro.te.locks import LockManager
from repro.te.object_buffer import ObjectBuffer
from repro.te.transaction_manager import (
    ClientTM,
    ServerTM,
    register_server_endpoints,
)
from repro.util.ids import IdGenerator

#: schema version of the BENCH_PERF.json envelope
SCHEMA = 1

#: repo-root artifact file the harness emits by default
DEFAULT_ARTIFACT = "BENCH_PERF.json"

#: acceptance floor: buffer-hit checkout must beat the deepcopy
#: baseline by at least this factor
BUFFER_HIT_MIN_SPEEDUP = 3.0

#: acceptance floor: the write-back group flush must beat the deepcopy
#: baseline by at least this factor (PR 5: batched graph locks, the
#: single-walk freeze, and the O(1) dirty index lifted the 2PC/WAL
#: control path that used to dominate the flush)
GROUP_FLUSH_MIN_SPEEDUP = 2.0


def _nested_payload(entries: int = 48, rev: int = 0) -> dict[str, Any]:
    """A representative design payload: shallow top, bushy below.

    Many container nodes (not just long strings) so the deepcopy
    baseline pays a real recursive walk per operation.
    """
    return {
        "name": f"cell-{rev}",
        "meta": {"rev": rev, "tags": ["synth", "placed", "routed"]},
        "tree": {
            f"n{i}": {"v": i, "w": float(i), "s": "x" * 24}
            for i in range(entries)
        },
    }


def _make_rig(buffering: bool = True,
              write_back: bool = False) -> dict[str, Any]:
    """One workstation + server TE rig on a quiet (kernel-less) LAN."""
    clock = SimClock()
    network = Network(clock)
    network.add_server()
    repository = DesignDataRepository()
    locks = LockManager()
    server_tm = ServerTM(repository, locks, network, clock=clock)
    server_tm.scope_check = lambda da_id, dov_id: True
    rpc = TransactionalRpc(network)
    register_server_endpoints(rpc, server_tm)
    network.add_workstation("ws-1")
    buffer = ObjectBuffer("ws-1") if buffering else None
    client = ClientTM("ws-1", server_tm, rpc, clock, ids=IdGenerator(),
                      buffer=buffer, write_back=write_back)
    repository.register_dot(DesignObjectType("Cell", attributes=[
        AttributeDef("name", AttributeKind.STRING),
        AttributeDef("meta", AttributeKind.JSON),
        AttributeDef("tree", AttributeKind.JSON),
    ]))
    repository.create_graph("da-1")
    return {"clock": clock, "network": network, "repository": repository,
            "server_tm": server_tm, "client": client, "buffer": buffer}


def _best_ops_per_sec(run_ops: Callable[[], int], repeats: int) -> float:
    """Best-of-*repeats* throughput of one measured workload."""
    best = 0.0
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        ops = run_ops()
        elapsed = time.perf_counter() - start
        if elapsed > 0.0:
            best = max(best, ops / elapsed)
    return best


# -- the microbenchmarks -----------------------------------------------------


def _measure_buffer_hit(ops: int, fast: bool, repeats: int) -> float:
    """Buffer-hit checkouts per second (the zero-network read path)."""
    with payload_fast_path(fast):
        rig = _make_rig(buffering=True)
        client: ClientTM = rig["client"]
        dov0 = rig["repository"].checkin(
            "da-1", "Cell", _nested_payload(), ())
        warm = client.begin_dop("da-1", tool="bench")
        client.checkout(warm, dov0.dov_id)  # the one miss: installs
        client.drop_dop(warm)

        def run_ops() -> int:
            done = 0
            while done < ops:
                dop = client.begin_dop("da-1", tool="bench")
                for _ in range(16):
                    client.checkout(dop, dov0.dov_id)
                done += 16
                client.drop_dop(dop)
            return done

        return _best_ops_per_sec(run_ops, repeats)


def _measure_write_through(ops: int, fast: bool, repeats: int) -> float:
    """Uncached checkout+checkin round trips per second (RPC + 2PC +
    WAL force per round — the write-through data-shipping path)."""
    with payload_fast_path(fast):
        rig = _make_rig(buffering=False)
        client: ClientTM = rig["client"]
        state = {"current": rig["repository"].checkin(
            "da-1", "Cell", _nested_payload(), ()).dov_id, "rev": 0}

        def run_ops() -> int:
            for _ in range(ops):
                dop = client.begin_dop("da-1", tool="bench")
                client.checkout(dop, state["current"])
                state["rev"] += 1
                result = client.checkin(
                    dop, "Cell", data=_nested_payload(rev=state["rev"]),
                    parents=[state["current"]])
                state["current"] = result.dov.dov_id
                client.commit_dop(dop, result)
            return ops

        return _best_ops_per_sec(run_ops, repeats)


def _measure_group_flush(flushes: int, batch: int, fast: bool,
                         repeats: int) -> float:
    """Group-checkin flushes per second (*batch* deferred checkins per
    flush: one batched ship, one 2PC, one forced WAL write, rebind)."""
    with payload_fast_path(fast):
        rig = _make_rig(buffering=True, write_back=True)
        client: ClientTM = rig["client"]
        state = {"rev": 0}

        def run_ops() -> int:
            for _ in range(flushes):
                dop = client.begin_dop("da-1", tool="bench")
                for _ in range(batch):
                    state["rev"] += 1
                    client.checkin(dop, "Cell",
                                   data=_nested_payload(rev=state["rev"]),
                                   parents=[])
                client.commit_dop(dop)  # End-of-DOP flush trigger
            return flushes

        return _best_ops_per_sec(run_ops, repeats)


def _measure_cross_flush(rounds: int, team: int, batch: int, fast: bool,
                         repeats: int) -> float:
    """Cross-workstation group commits per second: *team* dirty sets
    under ONE coordinator, ONE decision and ONE forced WAL write
    (:func:`repro.txn.flush_group`)."""
    from repro.txn import flush_group

    with payload_fast_path(fast):
        clock = SimClock()
        network = Network(clock)
        network.add_server()
        repository = DesignDataRepository()
        locks = LockManager()
        server_tm = ServerTM(repository, locks, network, clock=clock)
        server_tm.scope_check = lambda da_id, dov_id: True
        rpc = TransactionalRpc(network)
        register_server_endpoints(rpc, server_tm)
        ids = IdGenerator()
        repository.register_dot(DesignObjectType("Cell", attributes=[
            AttributeDef("name", AttributeKind.STRING),
            AttributeDef("meta", AttributeKind.JSON),
            AttributeDef("tree", AttributeKind.JSON),
        ]))
        clients = []
        for index in range(team):
            workstation = f"ws-{index}"
            network.add_workstation(workstation)
            repository.create_graph(f"da-{index}")
            clients.append(ClientTM(
                workstation, server_tm, rpc, clock, ids=ids,
                buffer=ObjectBuffer(workstation), write_back=True,
                flush_on_end_dop=False))
        state = {"rev": 0}

        def run_ops() -> int:
            for _ in range(rounds):
                dops = []
                for index, client in enumerate(clients):
                    dop = client.begin_dop(f"da-{index}", tool="bench")
                    for _ in range(batch):
                        state["rev"] += 1
                        client.checkin(
                            dop, "Cell",
                            data=_nested_payload(rev=state["rev"]),
                            parents=[])
                    dops.append((client, dop))
                flush_group(clients)
                for client, dop in dops:
                    client.commit_dop(dop)
            return rounds
        return _best_ops_per_sec(run_ops, repeats)


def _measure_kernel_events(events: int, repeats: int) -> float:
    """Kernel events dispatched per second (schedule + trace + run,
    with a cancellation mixed in every eighth event to exercise the
    O(1) live-event accounting)."""

    def run_ops() -> int:
        kernel = Kernel(SimClock(), trace_events=False)
        state = {"left": events}

        def tick() -> None:
            if state["left"] <= 0:
                return
            state["left"] -= 1
            event = kernel.after(0.001, tick, label="tick")
            if state["left"] % 8 == 0:
                kernel.cancel(event)
                state["left"] -= 1
                kernel.after(0.001, tick, label="tick")

        kernel.at(0.0, tick, label="seed")
        kernel.run_until_quiescent(max_events=events * 2 + 16)
        return kernel.executed

    return _best_ops_per_sec(run_ops, repeats)


def _measure_scorecard(fast: bool, repeats: int,
                       quick: bool) -> float:
    """Full scorecard runs per second — the end-to-end wall-clock
    claim: every figure/experiment driver, frozen vs deepcopy.  Quick
    mode restricts the card to the data-shipping experiments."""
    from repro.bench.scorecard import run_scorecard

    only = {"T8", "T9"} if quick else None

    def run_ops() -> int:
        card = run_scorecard(only=only)
        assert card.data["failures"] == 0
        return 1

    with payload_fast_path(fast):
        return _best_ops_per_sec(run_ops, repeats)


def _measure_sizing(ops: int, fast: bool, repeats: int) -> float:
    """``payload_size`` accesses per second: cached stamp vs the
    recursive re-walk of the pre-freeze property."""
    with payload_fast_path(fast):
        dov = DesignObjectVersion(
            "dov-bench", "Cell", _nested_payload(), "da-1", 0.0)

        def run_ops() -> int:
            total = 0
            for _ in range(ops):
                total += dov.payload_size
            return ops if total else ops

        return _best_ops_per_sec(run_ops, repeats)


# -- the suite ---------------------------------------------------------------


def run_perf(quick: bool = False, repeats: int = 3,
             emit_path: str | Path | None = None) -> dict[str, Any]:
    """Run every microbenchmark; optionally emit the JSON artifact.

    ``quick=True`` shrinks the op counts (smoke-test mode for the
    tier-1 suite); timings then say nothing, but the report structure
    and the workloads are identical.
    """
    scale = 0.05 if quick else 1.0

    def n(full: int, floor: int = 8) -> int:
        return max(int(full * scale), floor)

    benchmarks: dict[str, dict[str, Any]] = {}

    def contrast(name: str, description: str, ops: int,
                 measure: Callable[[bool], float]) -> None:
        fast = measure(True)
        baseline = measure(False)
        benchmarks[name] = {
            "description": description,
            "ops": ops,
            "ops_per_sec": round(fast, 2),
            "baseline_ops_per_sec": round(baseline, 2),
            "speedup_vs_deepcopy_baseline":
                round(fast / baseline, 2) if baseline else None,
        }

    ops = n(4800, 32)
    contrast(
        "checkout_buffer_hit",
        "buffer-hit checkouts/sec: frozen zero-copy install vs the "
        "deepcopy-per-read baseline",
        ops, lambda fast: _measure_buffer_hit(ops, fast, repeats))

    rounds = n(320)
    contrast(
        "checkout_checkin_write_through",
        "uncached checkout+checkin round trips/sec (RPC + sized "
        "shipment + 2PC + forced WAL write per round)",
        rounds, lambda fast: _measure_write_through(rounds, fast, repeats))

    flushes, batch = n(48), 16
    contrast(
        "group_checkin_flush",
        f"write-back group flushes/sec ({batch} deferred checkins per "
        "flush: one batched ship, one 2PC, one WAL force, rebind)",
        flushes,
        lambda fast: _measure_group_flush(flushes, batch, fast, repeats))
    benchmarks["group_checkin_flush"]["batch"] = batch
    fps = benchmarks["group_checkin_flush"]["ops_per_sec"]
    benchmarks["group_checkin_flush"]["flush_latency_ms"] = \
        round(1000.0 / fps, 3) if fps else None

    rounds, team = n(24), 4
    contrast(
        "cross_workstation_group_commit",
        f"cross-workstation group commits/sec ({team} workstations' "
        f"dirty sets, {batch} checkins each, under ONE coordinator / "
        "decision / forced WAL write)",
        rounds,
        lambda fast: _measure_cross_flush(rounds, team, batch, fast,
                                          repeats))
    benchmarks["cross_workstation_group_commit"]["team"] = team
    benchmarks["cross_workstation_group_commit"]["batch"] = batch

    events = n(24000, 256)
    benchmarks["kernel_events"] = {
        "description": "kernel events dispatched/sec (schedule + run + "
                       "O(1) pending accounting, cancels mixed in)",
        "ops": events,
        "ops_per_sec": round(_measure_kernel_events(events, repeats), 2),
    }

    sizings = n(4000, 64)
    contrast(
        "payload_sizing",
        "DesignObjectVersion.payload_size accesses/sec: cached "
        "one-walk stamp vs recursive re-walk per access",
        sizings, lambda fast: _measure_sizing(sizings, fast, repeats))

    contrast(
        "scorecard_wall_clock",
        "full reproduction-scorecard runs/sec (every driver, end to "
        "end) — the whole-system wall-clock effect of the fast path",
        1, lambda fast: _measure_scorecard(fast, repeats, quick))
    card = benchmarks["scorecard_wall_clock"]
    card["wall_seconds"] = \
        round(1.0 / card["ops_per_sec"], 3) if card["ops_per_sec"] else None
    card["baseline_wall_seconds"] = \
        round(1.0 / card["baseline_ops_per_sec"], 3) \
        if card["baseline_ops_per_sec"] else None

    hit = benchmarks["checkout_buffer_hit"]
    flush = benchmarks["group_checkin_flush"]
    report = {
        "schema": SCHEMA,
        "suite": "repro.bench.perf",
        "mode": "quick" if quick else "full",
        "repeats": repeats,
        "acceptance": {
            "buffer_hit_min_speedup": BUFFER_HIT_MIN_SPEEDUP,
            "buffer_hit_speedup": hit["speedup_vs_deepcopy_baseline"],
            "group_flush_min_speedup": GROUP_FLUSH_MIN_SPEEDUP,
            "group_flush_speedup":
                flush["speedup_vs_deepcopy_baseline"],
            "ok": (hit["speedup_vs_deepcopy_baseline"] or 0.0)
            >= BUFFER_HIT_MIN_SPEEDUP
            and (flush["speedup_vs_deepcopy_baseline"] or 0.0)
            >= GROUP_FLUSH_MIN_SPEEDUP,
        },
        "benchmarks": benchmarks,
    }
    if emit_path is not None:
        Path(emit_path).write_text(
            json.dumps(report, indent=2, sort_keys=False) + "\n",
            encoding="utf-8")
    return report


def render(report: dict[str, Any]) -> str:
    """One-screen text rendering of a perf report."""
    lines = [f"== PERF: zero-copy hot paths "
             f"({report['mode']}, repeats={report['repeats']}) =="]
    for name, bench in report["benchmarks"].items():
        lines.append(f"{name:32s} {bench['ops_per_sec']:>12,.0f} ops/s"
                     + (f"  ({bench['speedup_vs_deepcopy_baseline']:.2f}x "
                        f"vs deepcopy baseline)"
                        if bench.get("speedup_vs_deepcopy_baseline")
                        else ""))
    acceptance = report["acceptance"]
    lines.append(
        f"acceptance: buffer-hit speedup "
        f"{acceptance['buffer_hit_speedup']:.2f}x "
        f">= {acceptance['buffer_hit_min_speedup']:.1f}x, "
        f"group-flush speedup "
        f"{acceptance['group_flush_speedup']:.2f}x "
        f">= {acceptance['group_flush_min_speedup']:.1f}x -> "
        + ("OK" if acceptance["ok"] else "FAIL"))
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - convenience entry
    print(render(run_perf(emit_path=DEFAULT_ARTIFACT)))
