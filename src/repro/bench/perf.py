"""Microbenchmark harness for the zero-copy and kernel hot paths.

Wall-clock throughput of the hot paths the fast builds optimise —
buffer-hit checkout, write-through checkout/checkin round trips,
group-checkin flushes, raw kernel event dispatch, TTL timer churn —
plus the payload-sizing primitive itself.  Where a fast path changes
the mechanics, each benchmark is measured twice: once with the fast
path on (the default production configuration) and once against its
in-harness baseline, so every report carries its own speedup.  Two
baseline families exist:

* the **deepcopy payload** baseline
  (:func:`~repro.repository.versions.payload_fast_path` ``(False)``)
  for the data-shipping paths (PR 4);
* the **pre-wheel kernel** baseline
  (:func:`~repro.sim.scheduler.kernel_fast_path` ``(False)`` plus
  :func:`~repro.txn.leases.lease_fast_path` ``(False)``) for the
  event-loop paths (PR 7): a plain binary heap, a fresh record per
  event, and one re-armable ``sim.Timer`` per lease.

The report also carries a **determinism guard**: the fast kernel build
must leave seeded event traces byte-identical, and a sharded kernel
must reproduce the single-shard final states — perf that changes
behaviour is a bug, not a win.

``python -m repro perf`` (or ``python benchmarks/perf/run_perf.py``)
runs the suite and emits ``BENCH_PERF.json`` at the repo root — the
perf trajectory future PRs diff against with ``tools/bench_report.py``.
All workloads are deterministic; only the wall-clock timings vary
between machines.  The CI perf job fails the build when the committed
full-mode artifact says ``acceptance.ok: false``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

from repro.net.network import Network
from repro.net.rpc import TransactionalRpc
from repro.repository.placement import federation_fast_path
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.repository.versions import (
    DesignObjectVersion,
    payload_fast_path,
)
from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel
from repro.sim.scheduler import kernel_fast_path
from repro.te.locks import LockManager
from repro.te.object_buffer import ObjectBuffer
from repro.te.transaction_manager import (
    ClientTM,
    ServerTM,
    register_server_endpoints,
)
from repro.txn.leases import LeaseTable, lease_fast_path
from repro.util.ids import IdGenerator

#: schema version of the BENCH_PERF.json envelope
SCHEMA = 1

#: repo-root artifact file the harness emits by default
DEFAULT_ARTIFACT = "BENCH_PERF.json"

#: acceptance floor: buffer-hit checkout must beat the deepcopy
#: baseline by at least this factor
BUFFER_HIT_MIN_SPEEDUP = 3.0

#: acceptance floor: the write-back group flush must beat the deepcopy
#: baseline by at least this factor (PR 5: batched graph locks, the
#: single-walk freeze, and the O(1) dirty index lifted the 2PC/WAL
#: control path that used to dominate the flush)
GROUP_FLUSH_MIN_SPEEDUP = 2.0

#: acceptance floor: raw dispatch rate of the fast kernel build on a
#: pre-scheduled far-future event storm (PR 7: timer wheel + dispatch
#: run + slab recycling; the pre-wheel kernel managed ~770k)
KERNEL_EVENTS_MIN_OPS_PER_SEC = 2_000_000

#: acceptance floor: the full TTL-lease lifecycle (staggered grants,
#: batch renewals, early releases, expiry) must beat the
#: one-``sim.Timer``-per-lease heap baseline by at least this factor
TIMER_CHURN_MIN_SPEEDUP = 5.0

#: acceptance floor (full mode only): the whole reproduction scorecard
#: against the all-baselines build — deepcopy payloads AND the
#: pre-wheel kernel/lease regime
SCORECARD_MIN_SPEEDUP = 1.5

#: acceptance floor (full mode only): the multi-process sharded kernel
#: at 4 worker processes must deliver at least this much *capacity*
#: speedup on the T11 saturation storm — total events divided by the
#: busiest worker's CPU seconds, against the single-process
#: ShardedKernel's events per CPU second.  Capacity, not wall clock:
#: CI containers (including this one) pin the suite to one core, where
#: 4 workers time-slice and wall clock can only lose to process
#: overhead; events/CPU-second measures how the protocol divides the
#: work, which is what turns into wall-clock speedup the moment real
#: cores exist.  The theoretical ceiling is 1/max-shard-share (~3.2x
#: for the storm's ~31% server shard — the Amdahl floor the federation
#: arc exists to remove), so 1.5x leaves honest room for rollback
#: re-execution.
SHARD_SCALING_MIN_SPEEDUP = 1.5

#: acceptance ceiling (full mode only): per-batch cross-member commit
#: cost at the largest federation sweep point divided by the cost at
#: the smallest — the **flatness** of the member-count scaling curve.
#: The placement index makes home resolution O(batch); the only
#: member-count term left is building the federation itself, so the
#: curve must stay flat within noise
FEDERATION_FLATNESS_MAX = 1.3

#: frontier window of the bounded-log run: the decision log
#: auto-checkpoints every this-many completed batches, and its record
#: count (sampled after every batch) must stay <= 2x this window no
#: matter how many batches ever committed
FEDERATION_LOG_WINDOW = 8


def _nested_payload(entries: int = 48, rev: int = 0) -> dict[str, Any]:
    """A representative design payload: shallow top, bushy below.

    Many container nodes (not just long strings) so the deepcopy
    baseline pays a real recursive walk per operation.
    """
    return {
        "name": f"cell-{rev}",
        "meta": {"rev": rev, "tags": ["synth", "placed", "routed"]},
        "tree": {
            f"n{i}": {"v": i, "w": float(i), "s": "x" * 24}
            for i in range(entries)
        },
    }


def _make_rig(buffering: bool = True,
              write_back: bool = False) -> dict[str, Any]:
    """One workstation + server TE rig on a quiet (kernel-less) LAN."""
    clock = SimClock()
    network = Network(clock)
    network.add_server()
    repository = DesignDataRepository()
    locks = LockManager()
    server_tm = ServerTM(repository, locks, network, clock=clock)
    server_tm.scope_check = lambda da_id, dov_id: True
    rpc = TransactionalRpc(network)
    register_server_endpoints(rpc, server_tm)
    network.add_workstation("ws-1")
    buffer = ObjectBuffer("ws-1") if buffering else None
    client = ClientTM("ws-1", server_tm, rpc, clock, ids=IdGenerator(),
                      buffer=buffer, write_back=write_back)
    repository.register_dot(DesignObjectType("Cell", attributes=[
        AttributeDef("name", AttributeKind.STRING),
        AttributeDef("meta", AttributeKind.JSON),
        AttributeDef("tree", AttributeKind.JSON),
    ]))
    repository.create_graph("da-1")
    return {"clock": clock, "network": network, "repository": repository,
            "server_tm": server_tm, "client": client, "buffer": buffer}


def _best_ops_per_sec(run_ops: Callable[[], int], repeats: int) -> float:
    """Best-of-*repeats* throughput of one measured workload."""
    best = 0.0
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        ops = run_ops()
        elapsed = time.perf_counter() - start
        if elapsed > 0.0:
            best = max(best, ops / elapsed)
    return best


# -- the microbenchmarks -----------------------------------------------------


def _measure_buffer_hit(ops: int, fast: bool, repeats: int) -> float:
    """Buffer-hit checkouts per second (the zero-network read path)."""
    with payload_fast_path(fast):
        rig = _make_rig(buffering=True)
        client: ClientTM = rig["client"]
        dov0 = rig["repository"].checkin(
            "da-1", "Cell", _nested_payload(), ())
        warm = client.begin_dop("da-1", tool="bench")
        client.checkout(warm, dov0.dov_id)  # the one miss: installs
        client.drop_dop(warm)

        def run_ops() -> int:
            done = 0
            while done < ops:
                dop = client.begin_dop("da-1", tool="bench")
                for _ in range(16):
                    client.checkout(dop, dov0.dov_id)
                done += 16
                client.drop_dop(dop)
            return done

        return _best_ops_per_sec(run_ops, repeats)


def _measure_write_through(ops: int, fast: bool, repeats: int) -> float:
    """Uncached checkout+checkin round trips per second (RPC + 2PC +
    WAL force per round — the write-through data-shipping path)."""
    with payload_fast_path(fast):
        rig = _make_rig(buffering=False)
        client: ClientTM = rig["client"]
        state = {"current": rig["repository"].checkin(
            "da-1", "Cell", _nested_payload(), ()).dov_id, "rev": 0}

        def run_ops() -> int:
            for _ in range(ops):
                dop = client.begin_dop("da-1", tool="bench")
                client.checkout(dop, state["current"])
                state["rev"] += 1
                result = client.checkin(
                    dop, "Cell", data=_nested_payload(rev=state["rev"]),
                    parents=[state["current"]])
                state["current"] = result.dov.dov_id
                client.commit_dop(dop, result)
            return ops

        return _best_ops_per_sec(run_ops, repeats)


def _measure_group_flush(flushes: int, batch: int, fast: bool,
                         repeats: int) -> float:
    """Group-checkin flushes per second (*batch* deferred checkins per
    flush: one batched ship, one 2PC, one forced WAL write, rebind)."""
    with payload_fast_path(fast):
        rig = _make_rig(buffering=True, write_back=True)
        client: ClientTM = rig["client"]
        state = {"rev": 0}

        def run_ops() -> int:
            for _ in range(flushes):
                dop = client.begin_dop("da-1", tool="bench")
                for _ in range(batch):
                    state["rev"] += 1
                    client.checkin(dop, "Cell",
                                   data=_nested_payload(rev=state["rev"]),
                                   parents=[])
                client.commit_dop(dop)  # End-of-DOP flush trigger
            return flushes

        return _best_ops_per_sec(run_ops, repeats)


def _measure_cross_flush(rounds: int, team: int, batch: int, fast: bool,
                         repeats: int) -> float:
    """Cross-workstation group commits per second: *team* dirty sets
    under ONE coordinator, ONE decision and ONE forced WAL write
    (:func:`repro.txn.flush_group`)."""
    from repro.txn import flush_group

    with payload_fast_path(fast):
        clock = SimClock()
        network = Network(clock)
        network.add_server()
        repository = DesignDataRepository()
        locks = LockManager()
        server_tm = ServerTM(repository, locks, network, clock=clock)
        server_tm.scope_check = lambda da_id, dov_id: True
        rpc = TransactionalRpc(network)
        register_server_endpoints(rpc, server_tm)
        ids = IdGenerator()
        repository.register_dot(DesignObjectType("Cell", attributes=[
            AttributeDef("name", AttributeKind.STRING),
            AttributeDef("meta", AttributeKind.JSON),
            AttributeDef("tree", AttributeKind.JSON),
        ]))
        clients = []
        for index in range(team):
            workstation = f"ws-{index}"
            network.add_workstation(workstation)
            repository.create_graph(f"da-{index}")
            clients.append(ClientTM(
                workstation, server_tm, rpc, clock, ids=ids,
                buffer=ObjectBuffer(workstation), write_back=True,
                flush_on_end_dop=False))
        state = {"rev": 0}

        def run_ops() -> int:
            for _ in range(rounds):
                dops = []
                for index, client in enumerate(clients):
                    dop = client.begin_dop(f"da-{index}", tool="bench")
                    for _ in range(batch):
                        state["rev"] += 1
                        client.checkin(
                            dop, "Cell",
                            data=_nested_payload(rev=state["rev"]),
                            parents=[])
                    dops.append((client, dop))
                flush_group(clients)
                for client, dop in dops:
                    client.commit_dop(dop)
            return rounds
        return _best_ops_per_sec(run_ops, repeats)


def _measure_kernel_events(events: int, fast: bool,
                           repeats: int) -> float:
    """Raw kernel dispatch rate: events per second popped and executed
    from a pre-scheduled far-future storm.

    The storm is time-ordered over an 80-time-unit horizon — the shape
    a workstation fleet's heartbeat/lease traffic has — and scheduling
    happens *outside* the timed region: this benchmark isolates the
    dispatch engine (wheel drains, the sorted dispatch run, the batch
    pop loop, slab recycling) from the schedule-side cost, which the
    ``kernel_timer_churn`` contrast covers end to end.
    """
    best = 0.0
    step = 80.0 / max(events, 1)
    for _ in range(max(repeats, 1)):
        with kernel_fast_path(fast):
            kernel = Kernel(SimClock(), trace_events=False)
        noop = _noop
        defer = kernel.defer
        for index in range(events):
            defer(1.0 + index * step, noop, "storm")
        start = time.perf_counter()
        kernel.run()
        elapsed = time.perf_counter() - start
        assert kernel.executed == events
        if elapsed > 0.0:
            best = max(best, events / elapsed)
    return best


def _noop() -> None:
    """The measured event body of the dispatch storm."""


def _measure_timer_churn(leases: int, fast: bool,
                         repeats: int) -> float:
    """TTL-lease lifecycles settled per second, end to end.

    The workload is the cancel-heavy far-future population the timer
    wheel exists for: ``leases`` leases granted in per-workstation
    waves (staggered horizons), after which 60% of the fleet releases
    its whole set mid-life (the cancels), 20% batch-renews twice
    before going silent, and 20% just expires.  The fast build runs
    bucketed lease expiry on the wheel kernel; the baseline runs the
    pre-PR regime — one re-armable ``sim.Timer`` per lease on the heap
    kernel, where every release still dispatches a no-op check event
    and every renewal costs an extra re-check.
    """
    stations = max(leases // 1000, 4)
    per_station = max(leases // stations, 1)
    ttl = 30.0

    def run_ops() -> int:
        with kernel_fast_path(fast), lease_fast_path(fast):
            kernel = Kernel(SimClock(), trace_events=False)
            table = LeaseTable(kernel.clock, ttl=ttl,
                               kernel_source=lambda: kernel)

        def grant_wave(station: str) -> None:
            for index in range(per_station):
                table.grant(station, f"dov-{station}-{index}")

        def release_wave(station: str) -> None:
            for index in range(per_station):
                table.release(station, f"dov-{station}-{index}")

        for number in range(stations):
            station = f"ws-{number:04d}"
            at = number * 0.01
            kernel.at(at, lambda s=station: grant_wave(s),
                      label="grant-wave")
            if number % 5 < 3:  # 60%: cancel mid-life
                kernel.at(at + ttl * 0.5,
                          lambda s=station: release_wave(s),
                          label="release-wave")
            elif number % 5 == 3:  # 20%: renew twice, then lapse
                for round_no in (1, 2):
                    kernel.at(at + round_no * ttl * 0.6,
                              lambda s=station:
                              table.renew_workstation(s),
                              label="renew-wave")
        kernel.run_until_quiescent(max_events=leases * 8 + 10_000)
        assert len(table) == 0
        return stations * per_station

    return _best_ops_per_sec(run_ops, repeats)


def _measure_scorecard(fast: bool, repeats: int,
                       quick: bool) -> float:
    """Full scorecard runs per second — the end-to-end wall-clock
    claim: every figure/experiment driver, the fast build vs the
    all-baselines build (deepcopy payloads + pre-wheel kernel and
    leases).  Quick mode restricts the card to the data-shipping
    experiments."""
    from repro.bench.scorecard import run_scorecard

    only = {"T8", "T9"} if quick else None

    def run_ops() -> int:
        card = run_scorecard(only=only)
        assert card.data["failures"] == 0
        return 1

    with payload_fast_path(fast), kernel_fast_path(fast), \
            lease_fast_path(fast):
        return _best_ops_per_sec(run_ops, repeats)


def _measure_shard_scaling(quick: bool) -> dict[str, Any]:
    """The shard-scaling curve of the multi-process kernel.

    Runs the T11 saturation storm once on the single-process
    :class:`~repro.sim.shard.ShardedKernel` (the baseline and the
    determinism reference — the storm's event population is identical
    at every shard count, so one reference serves them all) and then
    on real spawned worker processes at each measured shard count.
    Every parallel run's merged trace must be byte-identical to the
    reference; the reported metric is **capacity** (events per
    busiest-worker CPU second — see :data:`SHARD_SCALING_MIN_SPEEDUP`
    for why wall clock is not the gate on a one-core container).
    """
    from repro.sim.parallel import (
        build_saturation_storm,
        run_program_parallel,
        run_program_sequential,
    )

    if quick:
        workstations, ws_work, server_work, counts = 24, 60, 20, (2,)
    else:
        workstations, ws_work, server_work, counts = 400, 1500, 400, (2, 4)

    def storm(shards: int):
        return build_saturation_storm(
            shards=shards, workstations=workstations,
            ws_work=ws_work, server_work=server_work)

    reference = run_program_sequential(storm(1))
    base_cpu = reference.stats["cpu_seconds"]
    base_capacity = reference.executed / base_cpu if base_cpu else 0.0

    runs: dict[str, dict[str, Any]] = {}
    identical = True
    peak_capacity = 0.0
    peak_speedup: float | None = None
    for shards in counts:
        result = run_program_parallel(storm(shards))
        stats = result.stats
        worker_cpu = stats["max_worker_cpu_seconds"]
        capacity = result.executed / worker_cpu if worker_cpu else 0.0
        same = (result.events == reference.events
                and result.executed == reference.executed)
        identical = identical and same
        runs[f"shards={shards}"] = {
            "workers": stats["workers"],
            "events_per_cpu_sec": round(capacity, 2),
            "capacity_speedup":
                round(capacity / base_capacity, 2)
                if base_capacity else None,
            "wall_seconds": round(stats["wall_seconds"], 3),
            "max_worker_cpu_seconds": round(worker_cpu, 4),
            "rounds": stats["rounds"],
            "rollbacks": stats["rollbacks"],
            "rolled_back_events": stats["rolled_back_events"],
            "speculated": stats["speculated"],
            "committed_speculative": stats["committed_speculative"],
            "trace_identical": same,
        }
        peak_capacity = capacity
        peak_speedup = runs[f"shards={shards}"]["capacity_speedup"]

    storm_meta = storm(max(counts)).meta
    return {
        "description":
            "T11 saturation storm on spawned worker processes "
            "(conservative lookahead + speculation/rollback): merged "
            "events per busiest-worker CPU second vs the "
            "single-process ShardedKernel",
        "ops": reference.executed,
        "metric": "capacity (events / max worker CPU-second) — wall "
                  "clock cannot win on a single-core container",
        "ops_per_sec": round(peak_capacity, 2),
        "baseline": "single-process ShardedKernel",
        "baseline_ops_per_sec": round(base_capacity, 2),
        "speedup_vs_baseline": peak_speedup,
        "workstations": workstations,
        "work_shares": storm_meta["work_shares"],
        "lookahead": storm_meta["lan_latency"],
        "trace_identical": identical,
        "runs": runs,
    }


def _measure_federation_scaling(quick: bool,
                                repeats: int) -> dict[str, Any]:
    """Per-batch cross-member commit cost as the federation grows.

    The sweep holds the *work* constant — the same four active DAs,
    pinned to the same four members, the same 16-version batch — and
    grows only the **member count** around it.  Every batch's prepare/
    decide/complete therefore touches exactly four members at every
    sweep point; the only thing that used to scale with federation
    size was the per-version home-resolution scan the placement index
    removed.  The gate is *flatness*: seconds per batch at the largest
    sweep point must stay within :data:`FEDERATION_FLATNESS_MAX` of
    the smallest.  The compat baseline re-times the largest federation
    with ``federation_fast_path(False)`` (the seed's scan per staged
    version), and a separate bounded-log run proves the decision log's
    checkpoint frontier keeps its record count inside 2x the
    :data:`FEDERATION_LOG_WINDOW` across >= 3 truncation cycles —
    ending with a coordinator crash + recovery over the truncated log.
    """
    from repro.repository.federation import FederatedRepository
    from repro.txn.decision_log import GlobalDecisionLog

    das = 4
    per_da = 4
    batches = 4 if quick else 10
    counts = (4, 8) if quick else (4, 16, 64)

    def build(members: int,
              decision_log: GlobalDecisionLog | None = None):
        ids = IdGenerator()
        federation = FederatedRepository(
            {f"site-{index}": DesignDataRepository(ids)
             for index in range(members)},
            decision_log=decision_log)
        federation.register_dot(DesignObjectType("Cell", attributes=[
            AttributeDef("name", AttributeKind.STRING),
            AttributeDef("meta", AttributeKind.JSON),
            AttributeDef("tree", AttributeKind.JSON),
        ]))
        heads: dict[str, str] = {}
        for index in range(das):
            da_id = f"da-{index}"
            federation.assign(da_id, f"site-{index}")
            federation.create_graph(da_id)
            heads[da_id] = federation.checkin(
                da_id, "Cell", _nested_payload(4, rev=0), ()).dov_id
        return federation, heads

    def run_batches(federation, heads, count: int,
                    state: dict[str, int]) -> float:
        """Stage+commit *count* batches; returns timed commit seconds
        (staging happens outside the timed region — the benchmark
        isolates the cross-member commit path)."""
        elapsed = 0.0
        for _ in range(count):
            staged = []
            for index in range(das):
                da_id = f"da-{index}"
                for _ in range(per_da):
                    state["rev"] += 1
                    dov = federation.stage_checkin(
                        da_id, "Cell",
                        _nested_payload(4, rev=state["rev"]),
                        (heads[da_id],),
                        created_at=float(state["rev"]))
                    staged.append(dov.dov_id)
            start = time.perf_counter()
            committed = federation.commit_group(staged)
            elapsed += time.perf_counter() - start
            for dov in committed:
                heads[dov.created_by] = dov.dov_id
        return elapsed

    def seconds_per_batch(members: int) -> float:
        best = float("inf")
        for _ in range(max(repeats, 1)):
            federation, heads = build(members)
            elapsed = run_batches(federation, heads, batches,
                                  {"rev": 0})
            best = min(best, elapsed / batches)
        return best

    sweep = {members: seconds_per_batch(members) for members in counts}
    smallest, largest = min(counts), max(counts)
    flatness = round(sweep[largest] / sweep[smallest], 3) \
        if sweep[smallest] else None
    with federation_fast_path(False):
        compat = seconds_per_batch(largest)
    speedup = round(compat / sweep[largest], 2) \
        if sweep[largest] else None

    # -- bounded-log run: >= 3 checkpoint/truncation cycles, record
    # count sampled after every batch, then a coordinator crash over
    # the truncated log to prove recovery still resolves everything
    window = FEDERATION_LOG_WINDOW
    log = GlobalDecisionLog(checkpoint_interval=window)
    federation, heads = build(smallest, decision_log=log)
    state = {"rev": 0}
    peak_records = 0
    for _ in range(3 * window + 2):
        run_batches(federation, heads, 1, state)
        peak_records = max(peak_records, log.stats()["wal_records"])
    log_stats = log.stats()
    federation.crash_coordinator()
    recovery = federation.recover_coordinator()
    # the unforced completion tail may be lost with the coordinator;
    # recovery re-settles those batches — what matters is that nothing
    # stays incomplete afterwards
    bounded = (peak_records <= 2 * window
               and log_stats["truncations"] >= 3
               and len(log.incomplete()) == 0)

    batch_size = das * per_da
    return {
        "description":
            "cross-member commit_group seconds/batch at fixed work "
            f"({batch_size} versions over {das} pinned members) as "
            "the federation grows — O(batch) placement-index "
            "resolution vs the per-version member scan",
        "ops": batches * batch_size,
        "ops_per_sec": round(1.0 / sweep[largest], 2)
        if sweep[largest] else None,
        "metric": "ops_per_sec = cross-member batches/sec at the "
                  "largest sweep point; flatness = largest-sweep "
                  "cost / smallest-sweep cost (lower is flatter)",
        "batch": batch_size,
        "active_members": das,
        "sweep": {f"members={members}": round(cost * 1000.0, 4)
                  for members, cost in sweep.items()},
        "sweep_unit": "ms per batch",
        "flatness": flatness,
        "flatness_max": FEDERATION_FLATNESS_MAX,
        "baseline": f"member-scan resolution at {largest} members "
                    "(federation_fast_path off)",
        "baseline_ms_per_batch": round(compat * 1000.0, 4),
        "speedup_vs_baseline": speedup,
        "bounded_log": {
            "window": window,
            "batches": 3 * window + 2,
            "peak_wal_records": peak_records,
            "max_wal_records": 2 * window,
            "truncations": log_stats["truncations"],
            "forgotten_decisions": log_stats["forgotten_decisions"],
            "recovery_settled": recovery["settled"],
            "ok": bounded,
        },
    }


def _environment() -> dict[str, Any]:
    """Host metadata stamped into the artifact: the context any reader
    of the capacity numbers needs (most of all the core count)."""
    import os
    import platform

    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def _determinism_guard(quick: bool) -> dict[str, Any]:
    """Prove the fast kernel changes speed, not behaviour.

    * **Trace guard** — the seeded T7 concurrent-delegation scenario
      must produce a byte-identical kernel event trace under the fast
      build (wheel + slab + dispatch run) and the compat build (plain
      heap, fresh record per event); a synthetic storm must trace
      identically on ``Kernel`` and ``ShardedKernel(shards=1)``.
    * **Shard guard** — under ``shards=2`` the interleaving across
      shards may differ, but the final scenario reports (states,
      makespans, counters) must equal the single-shard run's.
    * **Federation guard** — the full T10 crash matrix must produce
      identical reports with the placement index on and off
      (``federation_fast_path(False)`` restores the seed's member
      scans), and a federation directory rebuilt from the members
      after a coordinator loss must equal the pre-crash directory.
    """
    from dataclasses import asdict

    from repro.bench.scenarios import (
        concurrent_delegation_scenario,
        federated_commit_scenario,
        object_buffer_scenario,
        write_back_scenario,
    )
    from repro.sim.shard import ShardedKernel

    subcells = ("A", "B")

    def t7(fast: bool, shards: int = 1) -> tuple[Any, Any]:
        with kernel_fast_path(fast):
            system, report = concurrent_delegation_scenario(
                subcells, shards=shards)
        return system.kernel.trace_signature(), asdict(report)

    fast_trace, fast_report = t7(True)
    compat_trace, __ = t7(False)
    __, sharded_report = t7(True, shards=2)

    def storm_signature(kernel: Kernel) -> tuple:
        for index in range(64):
            kernel.defer((index * 7) % 13 + index * 0.01, _noop,
                         label=f"storm-{index}")
        kernel.run()
        return kernel.trace_signature()

    shard1 = storm_signature(ShardedKernel(SimClock(), shards=1)) \
        == storm_signature(Kernel(SimClock()))

    def t10_matrix(fast: bool) -> dict[str, Any]:
        with federation_fast_path(fast):
            return {crash: asdict(federated_commit_scenario(crash=crash))
                    for crash in ("none", "before", "after",
                                  "coordinator")}

    def directory_rebuild_identical() -> bool:
        # seeded cross-member commits + a version left staged, then a
        # coordinator loss: the index rebuilt from the members alone
        # must equal the pre-crash snapshot on every surface
        from repro.bench.scenarios import _federation_rebuild_check
        return _federation_rebuild_check()

    checks = {
        "t7_trace_fast_vs_compat": fast_trace == compat_trace,
        "t7_trace_events": fast_trace[0],
        "shard1_storm_trace_identical": shard1,
        "t7_report_identical_shards2": fast_report == sharded_report,
        "t10_report_identical_fast_vs_compat":
            t10_matrix(True) == t10_matrix(False),
        "federation_directory_rebuild_identical":
            directory_rebuild_identical(),
    }
    if not quick:
        checks["t8_report_identical_shards2"] = \
            asdict(object_buffer_scenario()) \
            == asdict(object_buffer_scenario(shards=2))
        checks["t9_report_identical_shards2"] = \
            asdict(write_back_scenario()) \
            == asdict(write_back_scenario(shards=2))
    checks["ok"] = all(value is True or not isinstance(value, bool)
                       for value in checks.values())
    return checks


def _measure_sizing(ops: int, fast: bool, repeats: int) -> float:
    """``payload_size`` accesses per second: cached stamp vs the
    recursive re-walk of the pre-freeze property."""
    with payload_fast_path(fast):
        dov = DesignObjectVersion(
            "dov-bench", "Cell", _nested_payload(), "da-1", 0.0)

        def run_ops() -> int:
            total = 0
            for _ in range(ops):
                total += dov.payload_size
            return ops if total else ops

        return _best_ops_per_sec(run_ops, repeats)


# -- the suite ---------------------------------------------------------------


def run_perf(quick: bool = False, repeats: int = 3,
             emit_path: str | Path | None = None) -> dict[str, Any]:
    """Run every microbenchmark; optionally emit the JSON artifact.

    ``quick=True`` shrinks the op counts (smoke-test mode for the
    tier-1 suite); timings then say nothing, but the report structure
    and the workloads are identical.
    """
    scale = 0.05 if quick else 1.0

    def n(full: int, floor: int = 8) -> int:
        return max(int(full * scale), floor)

    benchmarks: dict[str, dict[str, Any]] = {}

    def contrast(name: str, description: str, ops: int,
                 measure: Callable[[bool], float],
                 baseline: str = "deepcopy payload") -> None:
        fast = measure(True)
        base = measure(False)
        bench: dict[str, Any] = {
            "description": description,
            "ops": ops,
            "ops_per_sec": round(fast, 2),
            "baseline": baseline,
            "baseline_ops_per_sec": round(base, 2),
            "speedup_vs_baseline":
                round(fast / base, 2) if base else None,
        }
        if baseline == "deepcopy payload":
            # historical key the PR 4 artifacts and reports used
            bench["speedup_vs_deepcopy_baseline"] = \
                bench["speedup_vs_baseline"]
        benchmarks[name] = bench

    ops = n(4800, 32)
    contrast(
        "checkout_buffer_hit",
        "buffer-hit checkouts/sec: frozen zero-copy install vs the "
        "deepcopy-per-read baseline",
        ops, lambda fast: _measure_buffer_hit(ops, fast, repeats))

    rounds = n(320)
    contrast(
        "checkout_checkin_write_through",
        "uncached checkout+checkin round trips/sec (RPC + sized "
        "shipment + 2PC + forced WAL write per round)",
        rounds, lambda fast: _measure_write_through(rounds, fast, repeats))

    flushes, batch = n(48), 16
    contrast(
        "group_checkin_flush",
        f"write-back group flushes/sec ({batch} deferred checkins per "
        "flush: one batched ship, one 2PC, one WAL force, rebind)",
        flushes,
        lambda fast: _measure_group_flush(flushes, batch, fast, repeats))
    benchmarks["group_checkin_flush"]["batch"] = batch
    fps = benchmarks["group_checkin_flush"]["ops_per_sec"]
    benchmarks["group_checkin_flush"]["flush_latency_ms"] = \
        round(1000.0 / fps, 3) if fps else None

    rounds, team = n(24), 4
    contrast(
        "cross_workstation_group_commit",
        f"cross-workstation group commits/sec ({team} workstations' "
        f"dirty sets, {batch} checkins each, under ONE coordinator / "
        "decision / forced WAL write)",
        rounds,
        lambda fast: _measure_cross_flush(rounds, team, batch, fast,
                                          repeats))
    benchmarks["cross_workstation_group_commit"]["team"] = team
    benchmarks["cross_workstation_group_commit"]["batch"] = batch

    events = n(200_000, 2048)
    contrast(
        "kernel_events",
        "kernel events dispatched/sec from a pre-scheduled "
        "far-future storm (wheel drains + sorted dispatch run + "
        "batch pop + slab recycling vs the plain-heap kernel)",
        events,
        lambda fast: _measure_kernel_events(events, fast, repeats),
        baseline="pre-wheel heap kernel")

    churn = n(100_000, 2048)
    contrast(
        "kernel_timer_churn",
        "TTL-lease lifecycles/sec end to end (staggered grants, 60% "
        "released mid-life, 20% batch-renewed twice, 20% expiring): "
        "bucketed expiry on the wheel kernel vs one sim.Timer heap "
        "entry per lease",
        churn,
        lambda fast: _measure_timer_churn(churn, fast, repeats),
        baseline="one sim.Timer per lease on the heap kernel")

    sizings = n(4000, 64)
    contrast(
        "payload_sizing",
        "DesignObjectVersion.payload_size accesses/sec: cached "
        "one-walk stamp vs recursive re-walk per access",
        sizings, lambda fast: _measure_sizing(sizings, fast, repeats))

    contrast(
        "scorecard_wall_clock",
        "full reproduction-scorecard runs/sec (every driver, end to "
        "end) — the whole-system wall-clock effect of the fast "
        "builds vs deepcopy payloads + the pre-wheel kernel/leases",
        1, lambda fast: _measure_scorecard(fast, repeats, quick),
        baseline="deepcopy payload + pre-wheel kernel and leases")
    card = benchmarks["scorecard_wall_clock"]
    card["wall_seconds"] = \
        round(1.0 / card["ops_per_sec"], 3) if card["ops_per_sec"] else None
    card["baseline_wall_seconds"] = \
        round(1.0 / card["baseline_ops_per_sec"], 3) \
        if card["baseline_ops_per_sec"] else None

    benchmarks["shard_scaling"] = _measure_shard_scaling(quick)
    scaling = benchmarks["shard_scaling"]

    benchmarks["federation_scaling"] = \
        _measure_federation_scaling(quick, repeats)
    federation = benchmarks["federation_scaling"]

    determinism = _determinism_guard(quick)
    determinism["parallel_merge_trace_identical"] = \
        scaling["trace_identical"]
    determinism["ok"] = determinism["ok"] and scaling["trace_identical"]

    hit = benchmarks["checkout_buffer_hit"]
    flush = benchmarks["group_checkin_flush"]
    kernel = benchmarks["kernel_events"]
    churn_bench = benchmarks["kernel_timer_churn"]
    acceptance: dict[str, Any] = {
        "buffer_hit_min_speedup": BUFFER_HIT_MIN_SPEEDUP,
        "buffer_hit_speedup": hit["speedup_vs_baseline"],
        "group_flush_min_speedup": GROUP_FLUSH_MIN_SPEEDUP,
        "group_flush_speedup": flush["speedup_vs_baseline"],
        "kernel_events_min_ops_per_sec": KERNEL_EVENTS_MIN_OPS_PER_SEC,
        "kernel_events_ops_per_sec": kernel["ops_per_sec"],
        "timer_churn_min_speedup": TIMER_CHURN_MIN_SPEEDUP,
        "timer_churn_speedup": churn_bench["speedup_vs_baseline"],
        "scorecard_min_speedup": SCORECARD_MIN_SPEEDUP,
        "scorecard_speedup": card["speedup_vs_baseline"],
        "shard_scaling_min_speedup": SHARD_SCALING_MIN_SPEEDUP,
        "shard_scaling_speedup": scaling["speedup_vs_baseline"],
        "federation_flatness_max": FEDERATION_FLATNESS_MAX,
        "federation_flatness": federation["flatness"],
        "federation_log_bounded": federation["bounded_log"]["ok"],
        "determinism_ok": determinism["ok"],
        #: quick mode shrinks op counts until timings say nothing, and
        #: its scorecard subset omits the kernel-bound T11 driver — the
        #: quantitative gates bind on the full run only
        "perf_gates_applied": not quick,
    }
    ok = ((hit["speedup_vs_baseline"] or 0.0)
          >= BUFFER_HIT_MIN_SPEEDUP
          and (flush["speedup_vs_baseline"] or 0.0)
          >= GROUP_FLUSH_MIN_SPEEDUP
          # structural, not a timing: the checkpoint frontier must
          # bound the decision log in quick mode too
          and federation["bounded_log"]["ok"]
          and determinism["ok"])
    if not quick:
        ok = (ok
              and kernel["ops_per_sec"]
              >= KERNEL_EVENTS_MIN_OPS_PER_SEC
              and (churn_bench["speedup_vs_baseline"] or 0.0)
              >= TIMER_CHURN_MIN_SPEEDUP
              and (card["speedup_vs_baseline"] or 0.0)
              >= SCORECARD_MIN_SPEEDUP
              and (scaling["speedup_vs_baseline"] or 0.0)
              >= SHARD_SCALING_MIN_SPEEDUP
              and (federation["flatness"] or float("inf"))
              <= FEDERATION_FLATNESS_MAX)
    acceptance["ok"] = ok
    report = {
        "schema": SCHEMA,
        "suite": "repro.bench.perf",
        "mode": "quick" if quick else "full",
        "repeats": repeats,
        "environment": _environment(),
        "acceptance": acceptance,
        "determinism": determinism,
        "benchmarks": benchmarks,
    }
    if emit_path is not None:
        Path(emit_path).write_text(
            json.dumps(report, indent=2, sort_keys=False) + "\n",
            encoding="utf-8")
    return report


def render(report: dict[str, Any]) -> str:
    """One-screen text rendering of a perf report."""
    lines = [f"== PERF: zero-copy + kernel hot paths "
             f"({report['mode']}, repeats={report['repeats']}) =="]
    for name, bench in report["benchmarks"].items():
        lines.append(f"{name:32s} {bench['ops_per_sec']:>12,.0f} ops/s"
                     + (f"  ({bench['speedup_vs_baseline']:.2f}x "
                        f"vs {bench.get('baseline', 'baseline')})"
                        if bench.get("speedup_vs_baseline")
                        else ""))
    determinism = report.get("determinism", {})
    if determinism:
        failed = [key for key, value in determinism.items()
                  if value is False]
        lines.append("determinism: "
                     + ("traces/states identical"
                        if determinism.get("ok")
                        else "VIOLATED: " + ", ".join(failed)))
    acceptance = report["acceptance"]
    gates = [
        f"buffer-hit {acceptance['buffer_hit_speedup']:.2f}x "
        f">= {acceptance['buffer_hit_min_speedup']:.1f}x",
        f"group-flush {acceptance['group_flush_speedup']:.2f}x "
        f">= {acceptance['group_flush_min_speedup']:.1f}x",
    ]
    if acceptance.get("perf_gates_applied"):
        gates += [
            f"kernel-events "
            f"{acceptance['kernel_events_ops_per_sec']:,.0f} "
            f">= {acceptance['kernel_events_min_ops_per_sec']:,d}/s",
            f"timer-churn {acceptance['timer_churn_speedup']:.2f}x "
            f">= {acceptance['timer_churn_min_speedup']:.1f}x",
            f"scorecard {acceptance['scorecard_speedup']:.2f}x "
            f">= {acceptance['scorecard_min_speedup']:.1f}x",
            f"shard-scaling {acceptance['shard_scaling_speedup']:.2f}x "
            f">= {acceptance['shard_scaling_min_speedup']:.1f}x "
            f"capacity",
            f"federation-flatness {acceptance['federation_flatness']:.2f}x "
            f"<= {acceptance['federation_flatness_max']:.1f}x",
        ]
    if "federation_log_bounded" in acceptance:
        gates.append("federation-log "
                     + ("bounded" if acceptance["federation_log_bounded"]
                        else "UNBOUNDED"))
    lines.append("acceptance: " + ", ".join(gates) + " -> "
                 + ("OK" if acceptance["ok"] else "FAIL"))
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - convenience entry
    print(render(run_perf(emit_path=DEFAULT_ARTIFACT)))
