"""The reproduction scorecard: one command, every claim checked.

Runs every figure driver (F1-F8), experiment (T1-T11) and ablation
(A1-A3) and evaluates the *shape* each must exhibit (the reproduction
criterion: who wins, by roughly what factor, where crossovers fall —
not absolute numbers).  ``python -m repro.bench.scorecard`` prints the
card; the test suite asserts every row passes.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.ablations import run_a1, run_a2, run_a3
from repro.bench.experiments import (
    run_t1,
    run_t2,
    run_t3,
    run_t4,
    run_t5,
    run_t6,
    run_t7,
    run_t8,
    run_t9,
    run_t10,
    run_t11,
)
from repro.bench.figures import (
    run_f1,
    run_f2,
    run_f3,
    run_f4,
    run_f5,
    run_f6,
    run_f7,
    run_f8,
)
from repro.bench.reporting import ExperimentResult


def _check_f1(result: ExperimentResult) -> str | None:
    counts = result.data["counts"]
    if not (counts.get("AC") and counts.get("DC") and counts.get("TE")):
        return "a level recorded no operations"
    if not counts["TE"] > counts["DC"]:
        return "TE must outnumber DC (Fig.1 nesting)"
    return None


def _check_f2(result: ExperimentResult) -> str | None:
    tools = result.data["tool_order"]
    if tools[0] != "structure_synthesis":
        return "traversal must start with tool 1"
    if tools[-1] != "chip_assembly":
        return "traversal must end with tool 7"
    return None


def _check_f3(result: ExperimentResult) -> str | None:
    floorplan = result.data["floorplan"]
    if floorplan.validate():
        return "floorplan geometrically invalid"
    if not floorplan.subcell_interfaces():
        return "no subcell interfaces produced"
    return None


def _check_f4(result: ExperimentResult) -> str | None:
    hierarchy = result.data["hierarchy"]
    if len(hierarchy["roots"]) != 1:
        return "expected exactly one top-level DA"
    if len(hierarchy["roots"][0]["children"]) != 4:
        return "expected four sub-DAs (A-D)"
    return None


def _check_f5(result: ExperimentResult) -> str | None:
    report = result.data["report"]
    if not report.impossible_from:
        return "no impossible-specification episode"
    if len(report.modified_specs) != 2:
        return "expected two spec modifications (A and B)"
    if not report.inherited_dovs:
        return "no final DOVs devolved"
    return None


def _check_f6(result: ExperimentResult) -> str | None:
    if len(result.data["fig6b_sequences"]) != 3:
        return "Fig.6b must enumerate three paths"
    executed = result.data["fig6a_executed"]
    if executed[0] != "structure_synthesis" \
            or executed[-1] != "chip_assembly":
        return "Fig.6a fixed endpoints violated"
    return None


def _check_f7(result: ExperimentResult) -> str | None:
    if result.data["legal"] + result.data["illegal"] != 75:
        return "state x operation coverage incomplete"
    return None


def _check_f8(result: ExperimentResult) -> str | None:
    before, after = result.data["dov_recovery"]
    if before != after:
        return "durable DOVs lost across server crash"
    das_before, das_after = result.data["da_recovery"]
    if das_before != das_after:
        return "CM hierarchy lost across server crash"
    return None


def _check_t1(result: ExperimentResult) -> str | None:
    chain = [r for r in result.rows if r["topology"] == "chain"]
    by_team: dict = {}
    for row in chain:
        by_team.setdefault(row["team"], {})[row["model"]] = row
    gaps = []
    for team in sorted(by_team):
        models = by_team[team]
        if not (models["concord"]["makespan"]
                < models["contracts"]["makespan"]
                <= models["flat_acid"]["makespan"]):
            return f"ordering violated for team={team}"
        gaps.append(models["flat_acid"]["makespan"]
                    - models["concord"]["makespan"])
    if gaps != sorted(gaps):
        return "gap does not grow with team size"
    return None


def _check_t2(result: ExperimentResult) -> str | None:
    flat = sorted(((r["crash_time"], r["lost_work"])
                   for r in result.rows if r["model"] == "flat_acid"))
    for crash_time, lost in flat:
        if abs(lost - crash_time) > 1e-6:
            return "flat ACID must lose everything since start"
    for row in result.rows:
        if row["model"].startswith("concord(rp=10"):
            if row["lost_work"] >= 10.0:
                return "concord lost more than its rp interval"
    return None


def _check_t3(result: ExperimentResult) -> str | None:
    rows = {(r["protocol"], r["case"]): r for r in result.rows}
    if not rows[("presumed_abort", "one-no abort")]["messages"] \
            < rows[("basic", "one-no abort")]["messages"]:
        return "presumed abort did not save abort messages"
    if not rows[("presumed_abort+ro", "read-only mix")]["messages"] \
            < rows[("presumed_abort", "read-only mix")]["messages"]:
        return "read-only optimisation saved nothing"
    return None


def _check_t4(result: ExperimentResult) -> str | None:
    sharing = [r["value"] for r in result.rows
               if "derivation conflicts" in r["measure"]]
    if sharing != sorted(sharing):
        return "derivation conflicts must grow with sharing"
    return None


def _check_t5(result: ExperimentResult) -> str | None:
    feasible = [r for r in result.rows if r["severity"] <= 1.0]
    rounds = [r["rounds"] for r in
              sorted(feasible, key=lambda r: r["severity"])]
    if rounds != sorted(rounds):
        return "rounds must grow with severity"
    if any(r["outcome"] != "agreed" for r in feasible):
        return "feasible negotiations must agree"
    infeasible = [r for r in result.rows if r["severity"] > 1.0]
    if any(r["outcome"] != "escalated" for r in infeasible):
        return "infeasible negotiations must escalate"
    return None


def _check_t6(result: ExperimentResult) -> str | None:
    logs = [r["protocol_log_records"] for r in result.rows]
    if logs != sorted(logs):
        return "protocol log must grow with hierarchy size"
    return None


def _check_t7(result: ExperimentResult) -> str | None:
    rows = {(r["team"], r["mode"]): r for r in result.rows
            if r["mode"] in ("sequential", "concurrent")}
    for team in {r["team"] for r in result.rows}:
        sequential = rows[(team, "sequential")]
        concurrent = rows[(team, "concurrent")]
        if not concurrent["makespan"] < sequential["makespan"]:
            return "concurrent execution must beat sequential"
        if not concurrent["states_match"]:
            return "concurrent and sequential final states must match"
    return None


def _check_t8(result: ExperimentResult) -> str | None:
    rows = {(r["team"], r["write_mix"], r["caching"]): r
            for r in result.rows}
    for team, write_mix, caching in list(rows):
        if caching:
            continue
        uncached = rows[(team, write_mix, False)]
        cached = rows[(team, write_mix, True)]
        if not cached["bytes_shipped"] < uncached["bytes_shipped"]:
            return "caching must ship strictly fewer bytes"
        if not cached["makespan"] < uncached["makespan"]:
            return "caching must lower the makespan"
        if not cached["hit_rate"] > 0.0:
            return "buffer hit rate must be non-zero"
    return None


def _check_t9(result: ExperimentResult) -> str | None:
    rows = {(r["team"], r["write_ratio"], r["write_back"]): r
            for r in result.rows}
    for team, write_ratio, write_back in list(rows):
        if write_back:
            continue
        through = rows[(team, write_ratio, False)]
        back = rows[(team, write_ratio, True)]
        if not back["bytes_shipped"] < through["bytes_shipped"]:
            return "write-back must ship strictly fewer bytes"
        if back["makespan"] > through["makespan"]:
            return "write-back must not worsen the makespan"
        if back["checkins"] != through["checkins"]:
            return "both modes must run identical designer sessions"
        if not (back["flushes"] > 0 and back["batches"] > 0):
            return "write-back must actually group-flush"
        if not back["coalesced"] > 0:
            return "write-back must coalesce superseded intermediates"
        if through["batches"] != 0:
            return "write-through must not batch"
        if not back["revalidated"] > 0:
            return "server restart must keep re-validated entries warm"
    return None


def _check_t10(result: ExperimentResult) -> str | None:
    if not result.data["states_identical"]:
        return "durable state differs across crash placements"
    rows = {r["crash"]: r for r in result.rows}
    if any(r["atomic_violations"] for r in result.rows):
        return "a logged decision was applied partially"
    if not (rows["before"]["aborted"] >= 1
            and rows["before"]["retried"] >= 1):
        return "crash-before must abort (presumed abort) and retry"
    if not rows["after"]["redone"] >= 1:
        return "crash-after must redo from the logged decision"
    if any(not r["state_matches_baseline"] for r in result.rows):
        return "a crash run diverged from the no-crash baseline"
    if rows["none"]["decisions"] < 1:
        return "no cross-member decision was ever logged"
    return None


def _check_t11(result: ExperimentResult) -> str | None:
    if result.data["live_after"]:
        return "leases survived quiescence (expiry never fired)"
    if result.data["expirations"] != result.data["grants"]:
        return "every granted lease must expire exactly once"
    if result.data["renewals"] == 0:
        return "the renewing fleet half never renewed"
    rows = {r["mode"]: r for r in result.rows}
    if not (rows["renewing"]["mean_expiry_t"]
            > rows["silent"]["mean_expiry_t"]):
        return "renewals must postpone expiry past the silent fleet"
    if result.data["kernel_events"] <= 0:
        return "the storm dispatched no kernel events"
    return None


def _check_a1(result: ExperimentResult) -> str | None:
    by_team: dict = {}
    for row in result.rows:
        by_team.setdefault(row["team"], []).append(row)
    for rows in by_team.values():
        ordered = sorted(rows, key=lambda r: r["rework_probability"])
        reworks = [r["rework"] for r in ordered]
        if reworks != sorted(reworks):
            return "rework must grow as the gate weakens"
    return None


def _check_a2(result: ExperimentResult) -> str | None:
    numeric = [r for r in result.rows if r["interval"] != "off"]
    losses = [r["mean_lost"] for r in numeric]
    if losses != sorted(losses):
        return "lost work must grow with the interval"
    return None


def _check_a3(result: ExperimentResult) -> str | None:
    if result.data["speedup"] <= 5.0:
        return "local fast path speedup implausibly small"
    return None


#: id -> (driver, shape check)
SCORECARD: dict[str, tuple[Callable[[], ExperimentResult],
                           Callable[[ExperimentResult], str | None]]] = {
    "F1": (run_f1, _check_f1), "F2": (run_f2, _check_f2),
    "F3": (run_f3, _check_f3), "F4": (run_f4, _check_f4),
    "F5": (run_f5, _check_f5), "F6": (run_f6, _check_f6),
    "F7": (run_f7, _check_f7), "F8": (run_f8, _check_f8),
    "T1": (run_t1, _check_t1), "T2": (run_t2, _check_t2),
    "T3": (run_t3, _check_t3), "T4": (run_t4, _check_t4),
    "T5": (run_t5, _check_t5), "T6": (run_t6, _check_t6),
    "T7": (run_t7, _check_t7), "T8": (run_t8, _check_t8),
    "T9": (run_t9, _check_t9), "T10": (run_t10, _check_t10),
    "T11": (run_t11, _check_t11),
    "A1": (run_a1, _check_a1), "A2": (run_a2, _check_a2),
    "A3": (run_a3, _check_a3),
}


def run_scorecard(only: set[str] | None = None) -> ExperimentResult:
    """Run every driver and check its shape; returns the scorecard."""
    card = ExperimentResult(
        "SCORECARD", "Reproduction scorecard: every figure/experiment "
                     "and its expected shape")
    failures = 0
    for exp_id, (driver, check) in SCORECARD.items():
        if only and exp_id not in only:
            continue
        try:
            result = driver()
            problem = check(result)
        except Exception as exc:  # noqa: BLE001 - reported, not hidden
            problem = f"driver raised {exc!r}"
        if problem:
            failures += 1
        card.add(experiment=exp_id,
                 shape="OK" if problem is None else "FAIL",
                 detail=problem or "expected shape holds")
    card.data["failures"] = failures
    card.notes.append(
        f"{len(card.rows) - failures}/{len(card.rows)} expected shapes "
        f"hold")
    return card


if __name__ == "__main__":  # pragma: no cover - convenience entry
    print(run_scorecard().render())
