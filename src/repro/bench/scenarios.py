"""Shared scenario builders for experiments and examples.

Builds ready-to-run CONCORD installations for the VLSI domain and the
paper's running scenarios: the full chip design (Fig.2/Fig.3) and the
Fig.5 delegation scenario around cell 0 with subcells A-D, including
the impossible-specification / renegotiation episode the paper walks
through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.activity import DesignActivity
from repro.core.features import DesignSpecification, RangeFeature
from repro.core.states import DaState
from repro.core.system import ConcordSystem
from repro.dc.script import DaOpStep, DopStep, Iteration, Script, Sequence
from repro.net.network import Network
from repro.net.rpc import TransactionalRpc
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel
from repro.sim.shard import ShardedKernel
from repro.te.context import DopContext
from repro.te.locks import LockManager
from repro.te.object_buffer import ObjectBuffer
from repro.te.recovery import RecoveryPointPolicy
from repro.te.transaction_manager import (
    ClientTM,
    ServerTM,
    register_server_endpoints,
)
from repro.util.errors import StorageError
from repro.util.ids import IdGenerator
from repro.util.rng import SeededRng
from repro.vlsi.floorplan import Floorplan, FloorplanInterface
from repro.vlsi.methodology import full_design_script, playout_constraints
from repro.vlsi.tools import register_vlsi_tools, vlsi_dots
from repro.workload.generator import team_workload


def make_vlsi_system(workstations: tuple[str, ...] = ("ws-1",),
                     trace: bool = True,
                     recovery_interval: float = 30.0,
                     jitter: float = 0.0,
                     seed: int = 0,
                     shards: int = 1) -> ConcordSystem:
    """A CONCORD installation with the VLSI domain installed."""
    system = ConcordSystem(
        trace=trace,
        recovery_policy=RecoveryPointPolicy(interval=recovery_interval),
        jitter=jitter, seed=seed, shards=shards)
    for name in workstations:
        system.add_workstation(name)
    register_vlsi_tools(system.tools)
    system.tools.register("subcell_seed", subcell_seed, duration=10.0)
    for dot in vlsi_dots().values():
        system.repository.register_dot(dot)
    system.constraints = playout_constraints()
    return system


def subcell_seed(context: DopContext, params: dict[str, Any]) -> None:
    """Scenario tool: seed a sub-DA's working data from the parent plan.

    Reads the parent's floorplan (the sub-DA's initial DOV), extracts
    the placement of ``params['subcell']`` as this cell's interface,
    and installs a fresh behavioral description for the subcell's own
    content (``params['operations']``).
    """
    subcell = params["subcell"]
    operations = params.get("operations",
                            ["op-a", "op-b", "op-c", "op-d"])
    parent_plan_raw = context.data.get("floorplan")
    if parent_plan_raw:
        parent_plan = Floorplan.from_dict(parent_plan_raw)
        placement = parent_plan.placements.get(subcell)
    else:
        placement = None
    if placement is not None:
        interface = FloorplanInterface(subcell, placement.width,
                                       placement.height,
                                       origin=(placement.x, placement.y))
    else:
        interface = FloorplanInterface(subcell,
                                       params.get("max_width", 50.0),
                                       params.get("max_height", 50.0))
    context.data.clear()
    context.data.update({
        "cell": subcell,
        "level": params.get("level", "module"),
        "behavior": {"operations": list(operations)},
        "interface": interface.to_dict(),
    })


def chip_spec(max_width: float, max_height: float) -> DesignSpecification:
    """A chip-planning specification: shape/area limitations.

    The Fig.5 specification "expresses features for shape/area
    limitations and pin restrictions".
    """
    return DesignSpecification([
        RangeFeature("width-limit", "width", hi=max_width),
        RangeFeature("height-limit", "height", hi=max_height),
        RangeFeature("area-limit", "area", hi=max_width * max_height),
    ])


def subcell_script(subcell: str, operations: list[str],
                   max_rounds: int = 2) -> Script:
    """Work flow of a subcell-planning sub-DA in the Fig.5 scenario."""
    return Script(Sequence(
        DopStep("subcell_seed", params={"subcell": subcell,
                                        "operations": operations}),
        DopStep("structure_synthesis"),
        DopStep("shape_function_generator"),
        Iteration(Sequence(DopStep("chip_planner"),
                           DaOpStep("Evaluate")),
                  max_rounds=max_rounds, name="replan"),
    ), name=f"plan-{subcell}")


def run_full_chip_design(system: ConcordSystem,
                         workstation: str = "ws-1",
                         designer: str = "alice") -> DesignActivity:
    """Run the end-to-end Fig.2 traversal as one top-level DA."""
    dots = vlsi_dots()
    spec = chip_spec(60.0, 60.0)
    behavior = {"operations": [f"op-{i}" for i in range(6)]}
    da = system.init_design(dots["Chip"], spec, designer,
                            full_design_script(), workstation,
                            initial_data={"cell": "chip-0",
                                          "level": "chip",
                                          "behavior": behavior})
    system.start(da.da_id)
    system.run(da.da_id)
    return da


@dataclass
class RecursiveReport:
    """Chronicle of the recursive top-down planning scenario."""

    #: cell name -> DA id, per planned (inner) cell
    das: dict[str, str] = field(default_factory=dict)
    #: cell name -> hierarchy depth of its DA
    depths: dict[str, int] = field(default_factory=dict)
    #: cell name -> (width, height) of its floorplan
    floorplans: dict[str, tuple[float, float]] = field(
        default_factory=dict)
    #: DOVs devolved per termination (sub-DA -> inherited)
    devolved: dict[str, list[str]] = field(default_factory=dict)


def recursive_planning_scenario(
        system: ConcordSystem | None = None,
        hierarchy=None) -> tuple[ConcordSystem, RecursiveReport]:
    """Top-down recursive chip planning over a whole cell hierarchy.

    "In a top-down fashion, a floorplan is computed for each cell of
    the hierarchy by recursively applying the chip planner" (Sect.3).
    Every inner cell gets its own DA, delegated from its parent cell's
    DA and seeded with the parent's placement interface; when a subtree
    is fully planned, the sub-DA commits and its final DOVs devolve
    upward level by level.
    """
    from repro.vlsi.cells import sample_hierarchy

    if hierarchy is None:
        hierarchy = sample_hierarchy()
    if system is None:
        system = make_vlsi_system(("ws-1", "ws-2", "ws-3"))
    report = RecursiveReport()
    dots_by_level = {
        0: vlsi_dots()["Chip"], 1: vlsi_dots()["Module"],
        2: vlsi_dots()["Block"],
    }
    workstations = ("ws-1", "ws-2", "ws-3")

    def plan_cell(cell, parent_cell, parent_da_id, initial_dov, depth):
        """Create the DA planning *cell*, run it, recurse into children."""
        operations = [child.name for child in cell.children]
        dot = dots_by_level[min(depth, 2)]
        spec = chip_spec(500.0, 500.0)
        workstation = workstations[depth % len(workstations)]
        if parent_da_id is None:
            script = Script(Sequence(
                DopStep("structure_synthesis"),
                DopStep("shape_function_generator"),
                DopStep("pad_frame_editor",
                        params={"max_width": 500.0,
                                "max_height": 500.0}),
                DopStep("chip_planner"),
                DaOpStep("Evaluate"),
            ), name=f"plan-{cell.name}")
            da = system.init_design(
                dot, spec, f"designer-{cell.name}", script, workstation,
                initial_data={"cell": cell.name, "level": "chip",
                              "behavior": {"operations": operations}})
        else:
            # the parent's floorplan names this cell's placement
            # "<parent>/<cell>" (structure synthesis convention)
            placement_name = f"{parent_cell.name}/{cell.name}"
            script = Script(Sequence(
                DopStep("subcell_seed",
                        params={"subcell": placement_name,
                                "operations": operations}),
                DopStep("structure_synthesis"),
                DopStep("shape_function_generator"),
                DopStep("pad_frame_editor",
                        params={"max_width": 500.0,
                                "max_height": 500.0}),
                DopStep("chip_planner"),
                DaOpStep("Evaluate"),
            ), name=f"plan-{cell.name}")
            da = system.create_sub_da(parent_da_id, dot, spec,
                                      f"designer-{cell.name}", script,
                                      workstation,
                                      initial_dov=initial_dov)
        system.start(da.da_id)
        system.run(da.da_id)
        report.das[cell.name] = da.da_id
        report.depths[cell.name] = system.cm.hierarchy_depth(da.da_id)

        graph = system.repository.graph(da.da_id)
        plan_dov = next((d for d in graph if d.data.get("floorplan")),
                        None)
        if plan_dov is not None:
            plan = Floorplan.from_dict(plan_dov.data["floorplan"])
            report.floorplans[cell.name] = (plan.width, plan.height)

        # recurse into inner children (blocks of modules, etc.)
        for child in cell.children:
            if child.children and plan_dov is not None:
                plan_cell(child, cell, da.da_id, plan_dov.dov_id,
                          depth + 1)

        # commit this DA's subtree upward
        if parent_da_id is not None and da.has_final_dov():
            system.cm.sub_da_ready_to_commit(da.da_id)
            inherited = system.cm.terminate_sub_da(parent_da_id,
                                                   da.da_id)
            report.devolved[da.da_id] = inherited

    plan_cell(hierarchy.root, None, None, None, 0)
    return system, report


@dataclass
class ConcurrentReport:
    """Chronicle of a concurrent delegation run on the shared kernel."""

    top_da: str = ""
    #: subcell -> sub-DA id
    sub_das: dict[str, str] = field(default_factory=dict)
    #: sub-DA id -> DOVs devolved on its (rule-driven) termination
    devolved: dict[str, list[str]] = field(default_factory=dict)
    #: DA id -> final state value
    final_states: dict[str, str] = field(default_factory=dict)
    #: simulated end-to-end time of the delegated phase
    makespan: float = 0.0
    #: kernel events executed during the delegated phase
    events: int = 0
    #: deterministic kernel fingerprint (concurrent runs only)
    signature: tuple[Any, ...] = ()


def concurrent_delegation_scenario(
        subcells: tuple[str, ...] = ("A", "B", "C"),
        concurrent: bool = True,
        crash: tuple[str, float, float] | None = None,
        jitter: float = 0.0,
        seed: int = 0,
        trace: bool = False,
        shards: int = 1,
        on_kernel: Callable[[Kernel], None] | None = None,
        ) -> tuple[ConcordSystem, ConcurrentReport]:
    """Delegated subcell planning with every sub-DA live at once.

    The top-level DA plans cell 0, then delegates one sub-DA per
    subcell.  With ``concurrent=True`` the sub-DAs execute on the
    shared kernel — tool steps interleave on one clock, the
    Ready_To_Commit messages are auto-dispatched to the top DM whose
    ECA rule terminates each sub-DA the instant its message arrives
    (devolving the final DOVs).  With ``concurrent=False`` the same
    scenario runs sequentially (``run`` + ``pump_events``) — the
    reference path concurrency must be equivalent to.  *crash* arms a
    kernel-injected ``(node, at, restart_after)`` failure.
    """
    from repro.dc.rules import EcaRule

    stations = ("ws-0",) + tuple(f"ws-{cell}" for cell in subcells)
    system = make_vlsi_system(stations, trace=trace, jitter=jitter,
                              seed=seed, shards=shards)
    if on_kernel is not None:
        on_kernel(system.kernel)
    report = ConcurrentReport()
    dots = vlsi_dots()

    top_script = Script(Sequence(
        DopStep("structure_synthesis"),
        DopStep("shape_function_generator"),
        DopStep("pad_frame_editor",
                params={"max_width": 500.0, "max_height": 500.0}),
        DopStep("chip_planner"),
        DaOpStep("Evaluate"),
    ), name="plan-cell-0")
    top = system.init_design(
        dots["Chip"], chip_spec(500.0, 500.0), "lead", top_script, "ws-0",
        initial_data={"cell": "cell-0", "level": "chip",
                      "behavior": {"operations": list(subcells)}})
    report.top_da = top.da_id
    system.start(top.da_id)
    system.run(top.da_id)
    plan_dov = system.repository.graph(top.da_id).leaves()[0]

    for cell in subcells:
        script = Script(Sequence(
            DopStep("subcell_seed",
                    params={"subcell": f"cell-0/{cell}",
                            "operations": [f"{cell.lower()}-op-{i}"
                                           for i in range(3)]}),
            DopStep("structure_synthesis"),
            DopStep("shape_function_generator"),
            DopStep("chip_planner"),
            DaOpStep("Evaluate"),
            DaOpStep("Sub_DA_Ready_To_Commit"),
        ), name=f"plan-{cell}")
        sub = system.create_sub_da(
            top.da_id, dots["Module"], chip_spec(500.0, 500.0),
            f"designer-{cell}", script, f"ws-{cell}",
            initial_dov=plan_dov.dov_id)
        report.sub_das[cell] = sub.da_id
        system.start(sub.da_id)

    # the top DM terminates each sub-DA as its Ready_To_Commit arrives
    top_dm = system.runtime(top.da_id).dm
    top_dm.rules.register(EcaRule(
        "auto-terminate", "Ready_To_Commit",
        lambda env: True,
        lambda env: report.devolved.__setitem__(
            env["sender"],
            system.cm.terminate_sub_da(top.da_id, env["sender"]))))

    phase_start = system.clock.now
    events_before = system.kernel.executed
    if crash is not None:
        # crash instants are relative to the delegated phase's start
        node, at, restart_after = crash
        system.schedule_crash(node, at=phase_start + at,
                              restart_after=restart_after)
    sub_ids = list(report.sub_das.values())
    if concurrent:
        system.run_concurrent(sub_ids)
        report.signature = system.kernel.trace_signature()
    else:
        for sub_id in sub_ids:
            system.run(sub_id)
            system.pump_events(top.da_id)
    report.makespan = system.clock.now - phase_start
    report.events = system.kernel.executed - events_before
    for da_id in [top.da_id, *sub_ids]:
        report.final_states[da_id] = system.cm.da(da_id).state.value
    return system, report


@dataclass
class ShippingReport:
    """Chronicle of one T8 data-shipping run on the real TE stack."""

    caching: bool = True
    #: simulated completion time of the last designer session
    makespan: float = 0.0
    #: total payload bytes shipped over the LAN
    bytes_shipped: int = 0
    #: object-buffer lookups served locally / from the server
    hits: int = 0
    misses: int = 0
    hit_rate: float = 0.0
    #: lease invalidations the server scheduled / the buffers applied
    invalidations_sent: int = 0
    invalidations_applied: int = 0
    #: LAN messages of the whole run (control + data + invalidations)
    messages: int = 0
    #: simulated time the designers spent waiting on payload fetches
    fetch_time: float = 0.0
    #: committed checkins (superseding writes) across the team
    checkins: int = 0
    #: deterministic kernel fingerprint of the run
    signature: tuple[Any, ...] = ()
    #: per-node payload bytes received (workstation fetch profile)
    bytes_received_by: dict[str, int] = field(default_factory=dict)


def object_buffer_scenario(team: int = 3,
                           steps_per_session: int = 4,
                           mean_step: float = 60.0,
                           seed: int = 11,
                           caching: bool = True,
                           reread_locality: float = 0.6,
                           write_mix: float = 0.3,
                           reads_per_step: int = 2,
                           object_pool: int = 4,
                           payload_bytes: int = 4000,
                           bandwidth: float = 400.0,
                           lan_latency: float = 0.05,
                           jitter: float = 0.0,
                           shards: int = 1,
                           lease_ttl: float | None = None,
                           on_kernel: Callable[[Kernel], None]
                           | None = None) -> ShippingReport:
    """A designer team exercising the data-shipping path end to end.

    Runs the *implemented* TE protocol — client-TMs, server-TM,
    repository, 2PC checkin — on the unified kernel: one workstation
    per designer, every session a sequence of tool steps that check
    shared library objects out of the server (re-read locality per
    :func:`~repro.workload.generator.team_workload`), occasionally
    deriving and checking in a new version (``write_mix``), which
    supersedes the old one and triggers lease invalidations of the
    buffered copies elsewhere.  With ``caching=True`` each workstation
    has a DOV object buffer, so re-reads are local; with
    ``caching=False`` every checkout re-ships its payload, so network
    cost scales with reads instead of working-set size.

    The workload (read sets, durations, write plan) is drawn from
    *seed* before the run starts, so caching on/off compare the exact
    same design sessions.  Session dependencies are not enforced here
    — T8 measures data shipping, not visibility policies (that is T1).
    """
    clock = SimClock()
    kernel = ShardedKernel(clock, shards=shards) if shards > 1 \
        else Kernel(clock)
    if on_kernel is not None:
        on_kernel(kernel)
    network = Network(clock, lan_latency=lan_latency, jitter=jitter,
                      seed=seed, bandwidth=bandwidth)
    network.attach_kernel(kernel)
    network.add_server()
    kernel.assign_shard("server", 0)
    repository = DesignDataRepository()
    locks = LockManager()
    server_tm = ServerTM(repository, locks, network, clock=clock,
                         lease_ttl=lease_ttl)
    # the library pool is shared by construction; T8 measures
    # shipping, not authorization (scope checks are F-series ground)
    server_tm.scope_check = lambda da_id, dov_id: True
    rpc = TransactionalRpc(network)
    register_server_endpoints(rpc, server_tm)
    ids = IdGenerator()

    repository.register_dot(DesignObjectType("SharedObject", attributes=[
        AttributeDef("name", AttributeKind.STRING),
        AttributeDef("blob", AttributeKind.STRING),
    ]))
    repository.create_graph("lib")
    #: object name -> id of its current (frontier) version
    current: dict[str, str] = {}

    def blob_for(obj: str, generation: int) -> str:
        index = int(obj.rsplit("-", 1)[-1])
        return chr(ord("a") + generation % 26) \
            * (payload_bytes + 256 * index)

    for index in range(object_pool):
        name = f"lib-{index}"
        dov = repository.checkin(
            "lib", "SharedObject",
            {"name": name, "blob": blob_for(name, 0)}, ())
        current[name] = dov.dov_id

    workload = team_workload(
        team, steps_per_session, mean_step, seed,
        reads_per_step=reads_per_step,
        reread_locality=reread_locality, object_pool=object_pool)
    # the write plan is drawn up front so caching on/off runs execute
    # the identical sequence of designer decisions
    write_rng = SeededRng(seed * 7919 + 23)
    write_plan = {
        (spec.session_id, step): write_rng.bernoulli(write_mix)
        for spec in workload.sessions
        for step in range(len(spec.step_durations))}

    report = ShippingReport(caching=caching)
    clients: list[ClientTM] = []
    buffers: list[ObjectBuffer] = []

    def launch(spec, client: ClientTM, da_id: str,
               generations: dict[str, int]) -> None:
        state = {"step": 0}

        def start_step() -> None:
            step = state["step"]
            if step >= len(spec.step_durations):
                return
            dop = client.begin_dop(da_id, tool="t8-tool")
            fetched_before = client.fetch_time
            for obj in spec.reads_at(step):
                client.checkout(dop, current[obj])
            fetch_delay = client.fetch_time - fetched_before
            kernel.after(
                fetch_delay + spec.step_durations[step],
                lambda: finish_step(dop, step),
                label=f"t8-step:{spec.session_id}:{step}")

        def finish_step(dop, step: int) -> None:
            reads = spec.reads_at(step)
            if write_plan[(spec.session_id, step)] and reads:
                target = reads[0]
                generations[target] = generations.get(target, 0) + 1
                result = client.checkin(
                    dop, "SharedObject",
                    data={"name": target,
                          "blob": blob_for(target, generations[target])},
                    parents=[current[target]])
                if result.success:
                    current[target] = result.dov.dov_id
                    report.checkins += 1
                client.commit_dop(dop, result)
            else:
                client.commit_dop(dop)
            state["step"] = step + 1
            start_step()

        kernel.at(0.0, start_step,
                  label=f"t8-begin:{spec.session_id}")

    generations: dict[str, int] = {}
    for index, spec in enumerate(workload.sessions):
        workstation = f"ws-{index}"
        network.add_workstation(workstation)
        kernel.assign_shard(workstation, (1 + index) % max(shards, 1))
        buffer = ObjectBuffer(workstation) if caching else None
        client = ClientTM(workstation, server_tm, rpc, clock, ids=ids,
                          buffer=buffer)
        repository.create_graph(f"da-{index}")
        clients.append(client)
        if buffer is not None:
            buffers.append(buffer)
        launch(spec, client, f"da-{index}", generations)

    kernel.run_until_quiescent()

    stats = network.traffic_stats()
    report.makespan = clock.now
    report.bytes_shipped = stats["bytes_shipped"]
    report.bytes_received_by = stats["bytes_received_by"]
    report.messages = stats["messages_sent"]
    report.hits = sum(b.hits for b in buffers)
    report.misses = sum(b.misses for b in buffers)
    looked_up = report.hits + report.misses
    report.hit_rate = report.hits / looked_up if looked_up else 0.0
    report.invalidations_sent = server_tm.invalidations_sent
    report.invalidations_applied = sum(b.invalidations for b in buffers)
    report.fetch_time = sum(c.fetch_time for c in clients)
    report.signature = kernel.trace_signature()
    return report


@dataclass
class WriteBackReport:
    """Chronicle of one T9 write-back vs write-through run."""

    write_back: bool = False
    #: simulated completion time of the last designer session
    makespan: float = 0.0
    #: total payload bytes shipped over the LAN
    bytes_shipped: int = 0
    #: LAN messages of the whole run (control + data + invalidations)
    messages: int = 0
    #: batched (group-checkin) messages / payloads they carried
    batches: int = 0
    batched_payloads: int = 0
    #: logical checkins the designers issued (identical in both modes)
    checkins: int = 0
    #: group flushes executed / checkins they shipped
    flushes: int = 0
    flushed_checkins: int = 0
    #: dirty provisional versions that never crossed the LAN because a
    #: later checkin superseded them first (write-back's byte saving)
    coalesced: int = 0
    invalidations_sent: int = 0
    hits: int = 0
    misses: int = 0
    hit_rate: float = 0.0
    #: simulated time the designers spent waiting on payload fetches
    fetch_time: float = 0.0
    #: server-restart episode: entries kept warm via stamp
    #: re-validation / dropped, and the bytes a re-read round shipped
    #: afterwards (0 = the warm entries really were served locally)
    revalidated: int = 0
    revalidation_drops: int = 0
    post_restart_bytes: int = 0
    #: deterministic kernel fingerprint of the run
    signature: tuple[Any, ...] = ()


def write_back_scenario(team: int = 3,
                        steps_per_session: int = 4,
                        mean_step: float = 60.0,
                        seed: int = 13,
                        write_back: bool = True,
                        write_ratio: float = 0.6,
                        reads_per_step: int = 2,
                        reread_locality: float = 0.6,
                        object_pool: int = 4,
                        payload_bytes: int = 4000,
                        bandwidth: float = 400.0,
                        lan_latency: float = 0.05,
                        jitter: float = 0.0,
                        flush_interval: int = 0,
                        restart: bool = True,
                        shards: int = 1,
                        lease_ttl: float | None = None,
                        on_kernel: Callable[[Kernel], None]
                        | None = None) -> WriteBackReport:
    """A designer team exercising write-back vs write-through checkins.

    Both modes run the implemented TE protocol with object buffers on;
    the only difference is the checkin path.  Every designer session
    is **one long DOP**: each step checks shared library objects and
    the neighbour's design object out of the server, works, and — per
    the workload's seeded ``write_ratio`` plan — derives and checks in
    a new version of the designer's own object.  With
    ``write_back=False`` each checkin ships its payload and runs its
    own 2PC immediately; with ``write_back=True`` checkins stage dirty
    buffer entries that coalesce and ship as one batched group
    checkin at End-of-DOP (plus every ``flush_interval`` checkins when
    set).  The workload (read sets, durations, write plan) is drawn
    from *seed* before the run, so both modes execute identical
    designer decisions.

    With ``restart=True`` the scenario appends a server-crash /
    restart episode after the team finishes: the server-TM
    re-validates the resident buffer entries against fresh repository
    stamps (warm cache survives recovery), and a follow-up re-read
    round measures how many bytes that saved (`post_restart_bytes`
    stays 0 when every re-read hits the re-validated buffer).
    """
    clock = SimClock()
    kernel = ShardedKernel(clock, shards=shards) if shards > 1 \
        else Kernel(clock)
    if on_kernel is not None:
        on_kernel(kernel)
    network = Network(clock, lan_latency=lan_latency, jitter=jitter,
                      seed=seed, bandwidth=bandwidth)
    network.attach_kernel(kernel)
    server = network.add_server()
    kernel.assign_shard(server.node_id, 0)
    repository = DesignDataRepository()
    # repository recovery registers BEFORE the server-TM's restart
    # hook so stamps are fresh when the buffers re-validate
    server.on_crash.append(lambda: repository.crash())
    server.on_restart.append(lambda: repository.recover())
    locks = LockManager()
    server_tm = ServerTM(repository, locks, network, clock=clock,
                         lease_ttl=lease_ttl)
    server_tm.scope_check = lambda da_id, dov_id: True
    server_tm.revalidate_on_restart = True
    rpc = TransactionalRpc(network)
    register_server_endpoints(rpc, server_tm)
    ids = IdGenerator()

    repository.register_dot(DesignObjectType("SharedObject", attributes=[
        AttributeDef("name", AttributeKind.STRING),
        AttributeDef("blob", AttributeKind.STRING),
    ]))
    repository.create_graph("lib")
    #: object name -> id of its current durable (frontier) version
    current: dict[str, str] = {}

    def blob_for(obj: str, generation: int) -> str:
        index = int(obj.rsplit("-", 1)[-1])
        return chr(ord("a") + generation % 26) \
            * (payload_bytes + 256 * index)

    for index in range(object_pool):
        name = f"lib-{index}"
        dov = repository.checkin(
            "lib", "SharedObject",
            {"name": name, "blob": blob_for(name, 0)}, ())
        current[name] = dov.dov_id
    for index in range(team):
        name = f"cell-{index}"
        dov = repository.checkin(
            "lib", "SharedObject",
            {"name": name, "blob": blob_for(name, 0)}, ())
        current[name] = dov.dov_id

    workload = team_workload(
        team, steps_per_session, mean_step, seed,
        reads_per_step=reads_per_step,
        reread_locality=reread_locality, object_pool=object_pool,
        write_ratio=write_ratio, flush_interval=flush_interval)

    report = WriteBackReport(write_back=write_back)
    clients: list[ClientTM] = []
    buffers: list[ObjectBuffer] = []
    generations: dict[str, int] = {}
    #: per client, the read set of its final step (restart re-reads)
    last_reads: dict[str, list[str]] = {}

    def launch(index: int, spec, client: ClientTM) -> None:
        da_id = f"da-{index}"
        own = f"cell-{index}"
        neighbour = f"cell-{(index - 1) % team}"
        state: dict[str, Any] = {"step": 0, "dop": None, "last": None}

        def start_session() -> None:
            state["dop"] = client.begin_dop(da_id, tool="t9-tool")
            state["last"] = current[own]
            start_step()

        def start_step() -> None:
            step = state["step"]
            dop = state["dop"]
            reads = spec.reads_at(step) + [neighbour]
            fetched_before = client.fetch_time
            for obj in reads:
                client.checkout(dop, current[obj])
            last_reads[client.workstation] = [current[obj]
                                             for obj in reads]
            fetch_delay = client.fetch_time - fetched_before
            kernel.after(
                fetch_delay + spec.step_durations[step],
                lambda: finish_step(step),
                label=f"t9-step:{spec.session_id}:{step}")

        def finish_step(step: int) -> None:
            dop = state["dop"]
            if spec.writes_at(step):
                generations[own] = generations.get(own, 0) + 1
                result = client.checkin(
                    dop, "SharedObject",
                    data={"name": own,
                          "blob": blob_for(own, generations[own])},
                    parents=[state["last"]])
                if result.success:
                    state["last"] = result.dov.dov_id
                    report.checkins += 1
                    if not result.provisional:
                        current[own] = result.dov.dov_id
            state["step"] = step + 1
            if state["step"] >= len(spec.step_durations):
                client.commit_dop(dop)
                # write-back: End-of-DOP flushed; publish the durable
                # frontier of this designer's object
                current[own] = client.resolve(state["last"])
                return
            start_step()

        kernel.at(0.0, start_session,
                  label=f"t9-begin:{spec.session_id}")

    for index, spec in enumerate(workload.sessions):
        workstation = f"ws-{index}"
        network.add_workstation(workstation)
        kernel.assign_shard(workstation, (1 + index) % max(shards, 1))
        buffer = ObjectBuffer(workstation, policy="lru")
        client = ClientTM(
            workstation, server_tm, rpc, clock, ids=ids,
            buffer=buffer, write_back=write_back,
            flush_interval=workload.flush_interval or None,
            pressure_fraction=workload.pressure_fraction)
        repository.create_graph(f"da-{index}")
        clients.append(client)
        buffers.append(buffer)
        launch(index, spec, client)

    kernel.run_until_quiescent()

    stats = network.traffic_stats()
    report.makespan = clock.now
    report.bytes_shipped = stats["bytes_shipped"]
    report.messages = stats["messages_sent"]
    report.batches = stats["batches_sent"]
    report.batched_payloads = stats["batched_payloads"]
    report.flushes = sum(c.flushes for c in clients)
    report.flushed_checkins = sum(c.flushed_checkins for c in clients)
    report.coalesced = sum(b.coalesced for b in buffers)
    report.invalidations_sent = server_tm.invalidations_sent
    report.hits = sum(b.hits for b in buffers)
    report.misses = sum(b.misses for b in buffers)
    looked_up = report.hits + report.misses
    report.hit_rate = report.hits / looked_up if looked_up else 0.0
    report.fetch_time = sum(c.fetch_time for c in clients)
    report.signature = kernel.trace_signature()

    if restart:
        # the seeded server-restart episode: warm buffers survive via
        # stamp re-validation, then a re-read round shows the kept
        # entries serve locally (every re-shipped byte is counted)
        network.crash_node("server")
        network.restart_node("server")
        report.revalidated = sum(b.revalidated for b in buffers)
        report.revalidation_drops = sum(b.revalidation_drops
                                        for b in buffers)
        before = network.bytes_shipped
        for index, client in enumerate(clients):
            dop = client.begin_dop(f"da-{index}", tool="t9-reread")
            for dov_id in last_reads.get(client.workstation, []):
                client.checkout(dop, dov_id)
            client.commit_dop(dop)
        report.post_restart_bytes = network.bytes_shipped - before
    return report


@dataclass
class FederatedCommitReport:
    """Chronicle of one federated-atomic-commit run (experiment T10)."""

    crash: str = "none"
    members: int = 0
    #: cross-member batches the scenario drove to a commit
    batches: int = 0
    #: batches aborted by a member crash during prepare (presumed abort)
    aborted_batches: int = 0
    #: aborted batches re-staged and retried to success
    retried_batches: int = 0
    #: batches a recovering member redid from the global decision log
    redone_batches: int = 0
    #: COMMIT decisions in the global log / its forced writes
    decisions_logged: int = 0
    forced_decision_writes: int = 0
    #: logged decisions observed partially applied after recovery —
    #: any non-zero value is an atomicity violation
    atomic_violations: int = 0
    #: durable versions per member after the run
    durable_per_member: dict[str, int] = field(default_factory=dict)
    #: id-independent durable state: sorted (da, name, rev) triples —
    #: identical across crash placements iff commit is all-or-nothing
    state: tuple = ()
    directory_entries: int = 0


class _CoordinatorCrash(RuntimeError):
    """Injected coordinator failure between decision and notification."""


def federated_commit_scenario(crash: str = "none", members: int = 3,
                              batches: int = 4, crash_batch: int = 1,
                              crash_member: int = 1, seed: int = 17,
                              placement: str = "directory",
                              ) -> FederatedCommitReport:
    """Cross-member ``commit_group`` under injected crashes.

    A federation of *members* repositories holds one DA per member;
    every batch stages one derived version per DA (a genuinely
    cross-member group) and commits it through the federated atomic
    commit.  *crash* places a failure around batch *crash_batch*:

    * ``"none"`` — the undisturbed reference run;
    * ``"before"`` — the target member crashes **before** the global
      decision record exists: prepare fails, the batch aborts
      everywhere (presumed abort — nothing was logged), and after the
      member recovers the batch is re-staged and retried;
    * ``"after"`` — the member crashes **after** the decision record
      (the :attr:`~repro.txn.decision_log.GlobalDecisionLog.on_decision`
      window): live members complete, and the crashed member redoes
      its portion from its forced prepare record when it recovers;
    * ``"coordinator"`` — the *coordinator* dies between the decision
      record and the participant notifications: nobody was told, the
      members still hold their staged portions, and
      :meth:`~repro.repository.federation.FederatedRepository.resolve_incomplete`
      finishes the logged decision on restart.

    All four runs must converge to the identical id-independent
    durable state — the all-or-nothing claim of the decision log.
    *placement* selects the federation's DA-placement strategy
    (irrelevant to the outcome here — every DA is pinned with
    ``assign`` — but it lets the scenario exercise both index modes).
    """
    from repro.repository.federation import FederatedRepository

    report = FederatedCommitReport(crash=crash, members=members)
    # one id generator across the federation: the directory (and the
    # decision-log manifests) key on globally unique DOV ids
    ids = IdGenerator()
    federation = FederatedRepository({
        f"site-{index}": DesignDataRepository(ids)
        for index in range(members)}, placement=placement)
    dot = DesignObjectType("Part", attributes=[
        AttributeDef("name", AttributeKind.STRING),
        AttributeDef("rev", AttributeKind.INT),
        AttributeDef("weight", AttributeKind.FLOAT),
    ])
    federation.register_dot(dot)
    target = f"site-{crash_member % members}"
    current: dict[str, str] = {}
    for index in range(members):
        da_id = f"da-{index}"
        federation.assign(da_id, f"site-{index}")
        federation.create_graph(da_id)
        dov = federation.checkin(
            da_id, "Part", _part_payload(index, 0, seed), ())
        current[da_id] = dov.dov_id

    def stage_batch(rev: int) -> list[str]:
        staged: list[str] = []
        try:
            for index in range(members):
                da_id = f"da-{index}"
                dov = federation.stage_checkin(
                    da_id, "Part", _part_payload(index, rev, seed),
                    (current[da_id],), created_at=float(rev))
                staged.append(dov.dov_id)
        except StorageError:
            federation.abort_group(staged)  # un-stage the partial batch
            raise
        return staged

    def remember(committed: list[Any]) -> None:
        for dov in committed:
            current[dov.created_by] = dov.dov_id

    for batch in range(batches):
        rev = batch + 1
        injected = crash == "before" and batch == crash_batch
        if injected:
            federation.crash_member(target)
        staged = stage_batch(rev) if not injected else None
        if injected:
            # staging on the crashed home member fails outright; the
            # batch never forms — same presumed-abort outcome as a
            # crash during prepare: nothing logged, nothing durable
            try:
                stage_batch(rev)
                raise AssertionError("staging on a crashed member "
                                     "must fail")
            except StorageError:
                report.aborted_batches += 1
            federation.recover_member(target)
            staged = stage_batch(rev)  # retry after recovery
            report.retried_batches += 1
            remember(federation.commit_group(staged))
        elif crash == "after" and batch == crash_batch:
            def crash_member_after_decision(gtxn_id: str,
                                            manifest: dict) -> None:
                federation.decision_log.on_decision = None
                federation.crash_member(target)

            federation.decision_log.on_decision = \
                crash_member_after_decision
            committed = federation.commit_group(staged)
            # the crashed member's portion is in doubt until recovery
            redone_before = federation.redone_batches
            recovery = federation.recover_member(target)
            report.redone_batches += \
                federation.redone_batches - redone_before
            assert recovery["redone_batches"] >= 1
            remember(committed)
            for dov_id in staged:
                current[federation.read(dov_id).created_by] = dov_id
        elif crash == "coordinator" and batch == crash_batch:
            def crash_coordinator(gtxn_id: str, manifest: dict) -> None:
                federation.decision_log.on_decision = None
                raise _CoordinatorCrash(gtxn_id)

            federation.decision_log.on_decision = crash_coordinator
            try:
                federation.commit_group(staged)
                raise AssertionError("injected coordinator crash "
                                     "did not fire")
            except _CoordinatorCrash:
                pass
            # restart: the logged decision completes from staged state
            settled = federation.resolve_incomplete()
            assert settled == 1
            for dov_id in staged:
                current[federation.read(dov_id).created_by] = dov_id
        else:
            remember(federation.commit_group(staged))
        report.batches += 1

    # -- the all-or-nothing audit: after recovery, every logged
    # decision must be applied at every manifest member in full — a
    # partially applied batch is an atomicity violation
    log = federation.decision_log
    for gtxn_id in log.decisions():
        durable = [dov_id in federation.member(name).store
                   for name, ids in log.manifest(gtxn_id).items()
                   for dov_id in ids]
        if durable and not all(durable):
            report.atomic_violations += 1

    state = []
    for index in range(members):
        member = federation.member(f"site-{index}")
        report.durable_per_member[f"site-{index}"] = len(member.store)
        for dov in member.store:
            state.append((dov.created_by, dov.data["name"],
                          dov.data["rev"]))
    report.state = tuple(sorted(state))
    report.decisions_logged = log.stats()["decisions"]
    report.forced_decision_writes = log.stats()["forced_writes"]
    report.directory_entries = federation.stats()["directory_entries"]
    return report


def _federation_rebuild_check(members: int = 3, batches: int = 2,
                              seed: int = 17) -> bool:
    """Directory-rebuild equality: run a few cross-member batches plus
    one version left staged, lose the coordinator (decision-log memory
    + the whole placement index), recover from the members alone, and
    compare every index surface against the pre-crash snapshot."""
    from repro.repository.federation import FederatedRepository

    ids = IdGenerator()
    federation = FederatedRepository({
        f"site-{index}": DesignDataRepository(ids)
        for index in range(members)})
    dot = DesignObjectType("Part", attributes=[
        AttributeDef("name", AttributeKind.STRING),
        AttributeDef("rev", AttributeKind.INT),
        AttributeDef("weight", AttributeKind.FLOAT),
    ])
    federation.register_dot(dot)
    current: dict[str, str] = {}
    for index in range(members):
        da_id = f"da-{index}"
        federation.assign(da_id, f"site-{index}")
        federation.create_graph(da_id)
        dov = federation.checkin(
            da_id, "Part", _part_payload(index, 0, seed), ())
        current[da_id] = dov.dov_id
    for rev in range(1, batches + 1):
        staged = []
        for index in range(members):
            da_id = f"da-{index}"
            dov = federation.stage_checkin(
                da_id, "Part", _part_payload(index, rev, seed),
                (current[da_id],), created_at=float(rev))
            staged.append(dov.dov_id)
        for dov in federation.commit_group(staged):
            current[dov.created_by] = dov.dov_id
    # one version stays staged across the crash: the rebuild must
    # recover the staged-home index too, not just the directory
    federation.stage_checkin("da-0", "Part",
                             _part_payload(0, batches + 1, seed),
                             (current["da-0"],),
                             created_at=float(batches + 1))
    before = federation.placement_index.stats()
    directory_before = federation.directory_snapshot()
    homes_before = federation.placement_index.homes()
    federation.crash_coordinator()
    federation.recover_coordinator()
    return (federation.directory_snapshot() == directory_before
            and federation.placement_index.homes() == homes_before
            and federation.placement_index.stats() == before)


def _part_payload(index: int, rev: int, seed: int) -> dict[str, Any]:
    """Deterministic payload of one staged version (no RNG state, so
    retried batches rebuild byte-identical data)."""
    return {"name": f"part-{index}", "rev": rev,
            "weight": float((seed * 31 + index * 7 + rev) % 97)}


@dataclass
class Fig5Report:
    """Chronicle of the delegation scenario (experiment F5)."""

    top_da: str = ""
    sub_das: dict[str, str] = field(default_factory=dict)  # subcell -> da
    phases: list[str] = field(default_factory=list)
    impossible_from: str = ""
    modified_specs: list[str] = field(default_factory=list)
    inherited_dovs: dict[str, list[str]] = field(default_factory=dict)
    final_states: dict[str, str] = field(default_factory=dict)


def fig5_delegation_scenario(system: ConcordSystem | None = None
                             ) -> tuple[ConcordSystem, Fig5Report]:
    """The Fig.5 scenario, end to end.

    DA1 plans cell 0 (subcells A-D), delegates subcell planning to
    sub-DAs; the A-planner discovers its area is insufficient and
    raises Sub_DA_Impossible_Specification; DA1 reacts by "giving DA2
    more and DA3 less area"; both replan, reach final DOVs, and are
    terminated, devolving their results to DA1's scope.
    """
    if system is None:
        system = make_vlsi_system(("ws-1", "ws-2", "ws-3", "ws-4", "ws-5"))
    report = Fig5Report()
    dots = vlsi_dots()
    subcells = ("A", "B", "C", "D")

    # --- DA1 plans cell 0 -------------------------------------------------
    top_script = Script(Sequence(
        DopStep("structure_synthesis"),
        DopStep("shape_function_generator"),
        DopStep("pad_frame_editor",
                params={"max_width": 40.0, "max_height": 40.0}),
        DopStep("chip_planner"),
        DaOpStep("Evaluate"),
    ), name="plan-cell-0")
    da1 = system.init_design(
        dots["Chip"], chip_spec(40.0, 40.0), "designer-1", top_script,
        "ws-1",
        initial_data={"cell": "cell-0", "level": "chip",
                      "behavior": {"operations": list(subcells)}})
    report.top_da = da1.da_id
    system.start(da1.da_id)
    system.run(da1.da_id)
    report.phases.append("DA1 planned cell-0 (floorplan contents for "
                         "subcells A-D)")

    plan_dov = system.repository.graph(da1.da_id).leaves()[0]
    floorplan = Floorplan.from_dict(plan_dov.data["floorplan"])

    # --- delegation: one sub-DA per subcell --------------------------------
    operations_per_subcell = {
        "A": [f"a-op-{i}" for i in range(6)],   # A needs the most content
        "B": [f"b-op-{i}" for i in range(3)],
        "C": [f"c-op-{i}" for i in range(3)],
        "D": [f"d-op-{i}" for i in range(3)],
    }
    workstations = ("ws-2", "ws-3", "ws-4", "ws-5")
    for subcell, workstation in zip(subcells, workstations):
        placement = floorplan.placements[f"cell-0/{subcell}"]
        if subcell == "A":
            # the paper's conflict: A's specified area is insufficient
            spec = chip_spec(placement.width * 0.4,
                             placement.height * 0.4)
        else:
            spec = chip_spec(placement.width * 4.0,
                             placement.height * 4.0)
        sub = system.create_sub_da(
            da1.da_id, dots["Module"], spec, f"designer-{subcell}",
            subcell_script(f"cell-0/{subcell}",
                           operations_per_subcell[subcell]),
            workstation, initial_dov=plan_dov.dov_id)
        report.sub_das[subcell] = sub.da_id
        system.start(sub.da_id)
    report.phases.append("DA1 delegated planning of A, B, C, D "
                         "(DA2..DA5)")

    # --- sub-DAs work; A fails its spec -------------------------------------
    for subcell in subcells:
        sub_id = report.sub_das[subcell]
        system.run(sub_id)
        sub = system.cm.da(sub_id)
        if sub.has_final_dov():
            system.cm.sub_da_ready_to_commit(sub_id)
        else:
            system.cm.sub_da_impossible_specification(
                sub_id, reason="specified area is not sufficient")
            report.impossible_from = sub_id
    report.phases.append(
        f"{report.impossible_from} reported "
        f"Sub_DA_Impossible_Specification (area insufficient)")

    # --- DA1 reacts: more area for A, less for B ----------------------------
    a_id, b_id = report.sub_das["A"], report.sub_das["B"]
    placement_a = floorplan.placements["cell-0/A"]
    placement_b = floorplan.placements["cell-0/B"]
    system.cm.modify_sub_da_specification(
        da1.da_id, a_id, chip_spec(placement_a.width * 4.0,
                                   placement_a.height * 4.0))
    system.cm.modify_sub_da_specification(
        da1.da_id, b_id, chip_spec(placement_b.width * 2.0,
                                   placement_b.height * 2.0))
    report.modified_specs = [a_id, b_id]
    report.phases.append("DA1 modified the specs of DA2 (more area) and "
                         "DA3 (less area)")

    # --- replanning under the modified features ------------------------------
    for sub_id in (a_id, b_id):
        system.run(sub_id)
        sub = system.cm.da(sub_id)
        if sub.has_final_dov() \
                and sub.state is not DaState.READY_FOR_TERMINATION:
            system.cm.sub_da_ready_to_commit(sub_id)
    report.phases.append("DA2 and DA3 replanned with the modified area "
                         "features")

    # --- termination: final DOVs devolve to DA1 -------------------------------
    for subcell in subcells:
        sub_id = report.sub_das[subcell]
        sub = system.cm.da(sub_id)
        if sub.state is DaState.READY_FOR_TERMINATION:
            inherited = system.cm.terminate_sub_da(da1.da_id, sub_id)
            report.inherited_dovs[sub_id] = inherited
    report.phases.append("DA1 terminated the sub-DAs; final DOVs "
                         "devolved to its scope")

    for sub_id in report.sub_das.values():
        report.final_states[sub_id] = system.cm.da(sub_id).state.value
    report.final_states[da1.da_id] = system.cm.da(da1.da_id).state.value
    return system, report
