"""Drivers for the quantitative experiments T1-T9.

These substantiate the paper's qualitative claims with measurements on
the implemented system and baselines; see DESIGN.md §3 for the expected
shapes and EXPERIMENTS.md for the measured outcomes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.models import all_models, concord_model
from repro.bench.reporting import ExperimentResult
from repro.bench.scenarios import chip_spec, make_vlsi_system
from repro.core.features import RangeFeature
from repro.core.states import DaState
from repro.dc.script import DopStep, Script, Sequence
from repro.net.network import Network, NodeKind
from repro.net.two_phase_commit import (
    CommitProtocol,
    TwoPhaseCoordinator,
    Vote,
)
from repro.te.locks import LockManager, LockMode
from repro.util.errors import LockConflictError
from repro.util.ids import IdGenerator
from repro.util.rng import SeededRng
from repro.vlsi.tools import vlsi_dots
from repro.workload.generator import (
    integration_workload,
    team_workload,
)
from repro.workload.simulator import TeamSimulator, crash_lost_work


# ---------------------------------------------------------------------------
# T1 — cooperation vs. isolation: team makespan
# ---------------------------------------------------------------------------

def run_t1(team_sizes: tuple[int, ...] = (2, 4, 6, 8),
           steps_per_session: int = 4, mean_step: float = 60.0,
           seed: int = 7,
           include_fan_in: bool = True) -> ExperimentResult:
    """Team turnaround under CONCORD vs the baseline models.

    Claim (Sect.1.1): "The isolation property builds 'protective
    walls' among concurrent transactions and is therefore contrary to
    cooperation."  Expected shape: CONCORD < ConTracts/Saga <
    nested = flat, with the gap growing in team size.  Two topologies:
    the Fig.5-style *chain* (neighbouring designers exchange border
    results) and the chip-assembly *fan-in* (one integrator consumes a
    preliminary result of every designer).
    """
    result = ExperimentResult(
        "T1", "Cooperation vs isolation: team makespan and blocking")
    topologies = [("chain", team_workload)]
    if include_fan_in:
        topologies.append(("fan-in", integration_workload))
    for topology, build in topologies:
        for team_size in team_sizes:
            if build is team_workload:
                workload = build(team_size, steps_per_session,
                                 mean_step, seed)
            else:
                workload = build(team_size, mean_step=mean_step,
                                 seed=seed)
            for model in all_models():
                metrics = TeamSimulator(model, workload).run()
                result.add(topology=topology, team=team_size,
                           model=model.name,
                           makespan=round(metrics.makespan, 1),
                           blocked=round(metrics.total_blocked, 1),
                           rework=round(metrics.total_rework, 1),
                           total_work=round(workload.total_work, 1))
    result.data["models"] = [m.name for m in all_models()]
    result.notes.append(
        "expected shape: concord lowest makespan in both topologies; "
        "chain: flat/nested fully serialise (makespan == total work), "
        "gap grows with team size; fan-in: commit-only visibility "
        "delays the integrator by the slowest full session")
    return result


# ---------------------------------------------------------------------------
# T2 — lost work after a workstation crash
# ---------------------------------------------------------------------------

def run_t2(crash_times: tuple[float, ...] = (25.0, 80.0, 140.0, 200.0),
           step_durations: tuple[float, ...] = (55.0, 70.0, 62.0, 48.0),
           recovery_intervals: tuple[float, ...] = (10.0, 30.0)
           ) -> ExperimentResult:
    """Lost work vs crash time for each model's recovery policy.

    Claim (Sect.5.2): "Since DOPs are long-lived transactions, it is
    inadequate to treat system failures by rollback to the very
    beginning. ... Recovery points act as 'fire-walls' inside a DOP
    that limit the scope of work lost."  Expected: flat grows linearly
    with crash time; step-granular models are bounded by the step
    length; CONCORD is bounded by the recovery-point interval.
    """
    result = ExperimentResult(
        "T2", "Lost work after a workstation crash")
    steps = list(step_durations)
    for crash_time in crash_times:
        for model in all_models():
            if model.name == "concord":
                continue  # added per interval below
            metrics = crash_lost_work(model, steps, crash_time)
            result.add(crash_time=crash_time, model=model.name,
                       lost_work=metrics.lost_work)
        for interval in recovery_intervals:
            model = concord_model(recovery_point_interval=interval)
            metrics = crash_lost_work(model, steps, crash_time)
            result.add(crash_time=crash_time,
                       model=f"concord(rp={interval:.0f})",
                       lost_work=metrics.lost_work)
    result.notes.append(
        "expected shape: flat_acid linear in crash time; "
        "nested/saga/contracts bounded by the current step; concord "
        "bounded by its recovery-point interval")
    return result


# ---------------------------------------------------------------------------
# T3 — two-phase commit variants
# ---------------------------------------------------------------------------

@dataclass
class _ScriptedParticipant:
    """A 2PC participant with a scripted vote (for protocol costing)."""

    node_id: str
    vote: Vote
    prepared: int = 0
    committed: int = 0
    aborted: int = 0

    def prepare(self, txn_id: str) -> Vote:
        self.prepared += 1
        return self.vote

    def commit(self, txn_id: str) -> None:
        self.committed += 1

    def abort(self, txn_id: str) -> None:
        self.aborted += 1


def run_t3(participants: int = 3) -> ExperimentResult:
    """Messages / forced log writes / latency of the 2PC variants.

    Claim (Sect.6): LAN communications should "use the (X/OPEN)
    two-phase-commit protocol and its optimization alternatives
    [SBCM93]".  Expected: presumed abort saves messages and forced
    writes on aborts; read-only participants drop out of phase 2.
    """
    result = ExperimentResult(
        "T3", "Two-phase commit optimisations (messages, forced log "
              "writes, latency)")
    cases = {
        "all-yes commit": [Vote.YES] * participants,
        "one-no abort": [Vote.YES] * (participants - 1) + [Vote.NO],
        "read-only mix": [Vote.READ_ONLY] * (participants - 1)
                          + [Vote.YES],
    }
    txn = 0
    for protocol in (CommitProtocol.BASIC, CommitProtocol.PRESUMED_ABORT):
        for read_only_opt in (False, True):
            if read_only_opt and protocol is CommitProtocol.BASIC:
                continue  # RO optimisation is benchmarked on PA only
            for case, votes in cases.items():
                network = Network()
                network.add_node("coord", NodeKind.WORKSTATION)
                parts = []
                for i, vote in enumerate(votes):
                    network.add_node(f"part-{i}", NodeKind.SERVER)
                    parts.append(_ScriptedParticipant(f"part-{i}", vote))
                coordinator = TwoPhaseCoordinator(
                    network, "coord", protocol=protocol,
                    read_only_optimisation=read_only_opt)
                txn += 1
                outcome = coordinator.execute(f"txn-{txn}", parts)
                label = protocol.value + ("+ro" if read_only_opt else "")
                result.add(protocol=label, case=case,
                           decision=outcome.decision.value,
                           messages=outcome.messages,
                           forced_writes=outcome.forced_log_writes,
                           latency_ms=round(outcome.latency * 1000, 2))
    result.notes.append(
        "expected shape: presumed_abort <= basic on aborts (no forced "
        "abort record, no acks); read-only participants skip phase 2 "
        "entirely")
    return result


# ---------------------------------------------------------------------------
# T4 — lock manager behaviour
# ---------------------------------------------------------------------------

def run_t4(operations: int = 5_000,
           sharing_levels: tuple[int, ...] = (1, 2, 4, 8),
           depths: tuple[int, ...] = (2, 4, 8)) -> ExperimentResult:
    """Lock-manager throughput, derivation conflicts, inheritance cost."""
    result = ExperimentResult(
        "T4", "Lock manager: throughput, derivation conflicts, "
              "scope-lock inheritance")

    # throughput: short-lock acquire/release pairs
    locks = LockManager()
    started = time.perf_counter()
    for i in range(operations):
        resource = f"dov-{i % 100}"
        locks.acquire(resource, f"dop-{i}", LockMode.SHORT_READ)
        locks.release(resource, f"dop-{i}", LockMode.SHORT_READ)
    elapsed = time.perf_counter() - started
    result.add(measure="short-lock pairs/sec",
               value=round(operations / elapsed),
               detail=f"{operations} acquire+release pairs")

    # derivation conflicts vs sharing level
    for sharing in sharing_levels:
        locks = LockManager()
        conflicts = 0
        attempts = 200
        for i in range(attempts):
            dov = f"dov-{i % max(1, attempts // sharing)}"
            try:
                locks.acquire(dov, f"da-{i}", LockMode.DERIVATION)
            except LockConflictError:
                conflicts += 1
        result.add(measure=f"derivation conflicts (sharing={sharing})",
                   value=conflicts,
                   detail=f"{attempts} checkout attempts")

    # scope-lock inheritance cost vs hierarchy depth
    for depth in depths:
        locks = LockManager()
        visibility: dict[str, set[str]] = {}
        locks.usage_allows = (
            lambda req, holder, dov: req in visibility.get(dov, set()))
        final_per_da = 5
        # chain of DAs, each with its own final DOVs
        for level in range(depth):
            for f in range(final_per_da):
                dov = f"dov-{level}-{f}"
                visibility[dov] = {f"da-{level}"}
                locks.acquire(dov, f"da-{level}", LockMode.SCOPE)
        started = time.perf_counter()
        inherited_total = 0
        for level in range(depth - 1, 0, -1):
            finals = {f"dov-{level}-{f}" for f in range(final_per_da)}
            for dov in finals:
                visibility[dov].add(f"da-{level - 1}")
            inherited = locks.inherit_scope_locks(
                f"da-{level}", f"da-{level - 1}", finals)
            inherited_total += len(inherited)
        elapsed = time.perf_counter() - started
        result.add(measure=f"inheritance chain (depth={depth})",
                   value=inherited_total,
                   detail=f"{elapsed * 1e6:.0f} us total")
    result.notes.append(
        "derivation conflicts grow with sharing level (more DAs "
        "checking out the same DOV); inheritance is linear in finals "
        "per level")
    return result


# ---------------------------------------------------------------------------
# T5 — negotiation convergence
# ---------------------------------------------------------------------------

def negotiate_border(total: float, need_a: float, need_b: float,
                     concession: float = 0.1,
                     max_rounds: int = 20) -> dict[str, float | int | str]:
    """Run one A/B border negotiation on the real CM.

    Two sibling sub-DAs negotiate the border of a shared span of width
    *total* (the Fig.5 "move the borderline between A and B").  A does
    not know B's reservation: it opens greedily (claiming nearly the
    whole span) and concedes a fixed fraction per round; B agrees as
    soon as its own need fits into the remainder.  When A would have
    to concede below its own need, the conflict escalates to the
    common super-DA (infeasible splits always do).
    """
    system = make_vlsi_system(("ws-1", "ws-2", "ws-3"))
    dots = vlsi_dots()
    script = Script(Sequence(DopStep("structure_synthesis")), "noop")
    top = system.init_design(dots["Chip"], chip_spec(total, total),
                             "super", script, "ws-1",
                             initial_data={"cell": "cell-0",
                                           "level": "chip",
                                           "behavior": {"operations":
                                                        ["a", "b"]}})
    system.start(top.da_id)
    sub_a = system.create_sub_da(top.da_id, dots["Module"],
                                 chip_spec(total, total), "a", script,
                                 "ws-2")
    sub_b = system.create_sub_da(top.da_id, dots["Module"],
                                 chip_spec(total, total), "b", script,
                                 "ws-3")
    system.start(sub_a.da_id)
    system.start(sub_b.da_id)
    negotiation = system.cm.create_negotiation_relationship(
        top.da_id, sub_a.da_id, sub_b.da_id, subject="A/B border")

    claim_a = total * 0.95  # greedy opening: A claims nearly everything
    rounds = 0
    outcome = "escalated"
    for _ in range(max_rounds):
        rounds += 1
        proposal = system.cm.propose(
            sub_a.da_id, sub_b.da_id,
            changes={
                sub_a.da_id: [RangeFeature("width-limit", "width",
                                           hi=claim_a)],
                sub_b.da_id: [RangeFeature("width-limit", "width",
                                           hi=total - claim_a)],
            },
            note=f"border at {claim_a:.1f}")
        b_share = total - claim_a
        if b_share >= need_b and claim_a >= need_a:
            system.cm.agree(sub_b.da_id, proposal.proposal_id)
            outcome = "agreed"
            break
        system.cm.disagree(sub_b.da_id, proposal.proposal_id)
        next_claim = claim_a - concession * total
        if next_claim < need_a:
            # A cannot concede further: escalate to the super-DA
            system.cm.sub_das_specification_conflict(
                sub_a.da_id, negotiation.negotiation_id)
            break
        claim_a = next_claim
    return {
        "total": total, "need_a": need_a, "need_b": need_b,
        "severity": round((need_a + need_b) / total, 2),
        "rounds": rounds, "outcome": outcome,
        "escalations": negotiation.escalations,
        "state_a": system.cm.da(sub_a.da_id).state.value,
        "state_b": system.cm.da(sub_b.da_id).state.value,
    }


def run_t5(severities: tuple[float, ...] = (0.5, 0.7, 0.9, 0.99, 1.2)
           ) -> ExperimentResult:
    """Negotiation rounds / escalation vs conflict severity.

    Claim (Sect.4.1): negotiating sub-DAs refine specs via Propose /
    Agree / Disagree; unresolvable conflicts escalate via
    Sub_DAs_Specification_Conflict.  Expected: rounds grow as the
    feasible region shrinks; severity > 1 always escalates.
    """
    result = ExperimentResult(
        "T5", "Negotiation convergence vs conflict severity")
    total = 100.0
    for severity in severities:
        need = severity * total / 2.0
        row = negotiate_border(total, need, need, concession=0.05)
        result.add(**row)
    result.notes.append(
        "severity = (need_a + need_b) / total; > 1 means no feasible "
        "border exists and the conflict escalates to the super-DA")
    return result


# ---------------------------------------------------------------------------
# T6 — CM scalability
# ---------------------------------------------------------------------------

def run_t6(hierarchy_sizes: tuple[int, ...] = (5, 10, 20, 40)
           ) -> ExperimentResult:
    """CM operation cost and protocol-log growth vs hierarchy size.

    The CM is "a centralized component located at the server site" —
    this experiment quantifies what that centralisation costs as the
    DA hierarchy grows.
    """
    result = ExperimentResult(
        "T6", "Cooperation manager scalability (centralised CM)")
    dots = vlsi_dots()
    script = Script(Sequence(DopStep("structure_synthesis")), "noop")
    for size in hierarchy_sizes:
        system = make_vlsi_system(("ws-1",), trace=False)
        rng = SeededRng(size)
        started = time.perf_counter()
        top = system.init_design(
            dots["Chip"], chip_spec(100, 100), "root", script, "ws-1",
            initial_data={"cell": "c", "level": "chip",
                          "behavior": {"operations": ["x"]}})
        system.start(top.da_id)
        created = [top.da_id]
        for _ in range(size - 1):
            parent = created[rng.zipf_index(len(created), 0.8)]
            if system.cm.da(parent).state is not DaState.ACTIVE:
                parent = top.da_id
            sub = system.create_sub_da(parent, dots["Module"],
                                       chip_spec(100, 100), "d", script,
                                       "ws-1")
            system.start(sub.da_id)
            created.append(sub.da_id)
        elapsed = time.perf_counter() - started
        stats = system.cm.stats()
        operations = 2 * size  # create + start per DA
        result.add(hierarchy_size=size,
                   ops_per_sec=round(operations / elapsed),
                   protocol_log_records=stats["protocol_log_records"],
                   delegations=stats["delegations"],
                   persist_writes=system.server.stable.writes,
                   copies_saved=system.server.stable.copies_saved)
    result.notes.append(
        "protocol log grows linearly in operations; per-op cost grows "
        "with hierarchy size because the CM persists the full "
        "hierarchy state after every operation; copies_saved counts "
        "the deep copies stable storage skipped for immutable payloads")
    return result


# ---------------------------------------------------------------------------
# T7 — concurrent execution on the unified kernel
# ---------------------------------------------------------------------------

def run_t7(team_sizes: tuple[int, ...] = (2, 3, 4),
           crash: bool = True) -> ExperimentResult:
    """Concurrent vs sequential execution of the real CM/DM/TM stack.

    The workload experiments (T1) interleave *modelled* sessions; this
    experiment interleaves the implemented stack itself: one sub-DA
    per subcell, all live at once on the unified kernel, cooperation
    messages auto-dispatched on delivery.  Expected shape: the
    concurrent makespan approaches the longest single sub-DA (the
    sequential makespan divides by roughly the team size), identical
    final states on both paths, and — with a kernel-injected
    workstation crash mid-step — a makespan penalty bounded by the
    redone work, not a restart from scratch.
    """
    from repro.bench.scenarios import concurrent_delegation_scenario

    result = ExperimentResult(
        "T7", "Concurrent DA execution on the unified kernel")
    alphabet = ("A", "B", "C", "D", "E", "F")
    for team in team_sizes:
        subcells = alphabet[:team]
        __, seq = concurrent_delegation_scenario(subcells,
                                                 concurrent=False)
        __, conc = concurrent_delegation_scenario(subcells)
        states_match = seq.final_states[seq.top_da] \
            == conc.final_states[conc.top_da] \
            and all(state == "terminated"
                    for da, state in conc.final_states.items()
                    if da != conc.top_da)
        result.add(team=team, mode="sequential",
                   makespan=round(seq.makespan, 1), events=seq.events,
                   states_match=states_match)
        result.add(team=team, mode="concurrent",
                   makespan=round(conc.makespan, 1), events=conc.events,
                   states_match=states_match)
        if crash:
            node = f"ws-{subcells[-1]}"
            __, crashed = concurrent_delegation_scenario(
                subcells, crash=(node, 15.0, 5.0))
            result.add(team=team, mode=f"concurrent+crash({node})",
                       makespan=round(crashed.makespan, 1),
                       events=crashed.events,
                       states_match=all(
                           state == "terminated"
                           for da, state in crashed.final_states.items()
                           if da != crashed.top_da))
    result.notes.append(
        "expected shape: concurrent makespan ~= longest sub-DA, "
        "sequential ~= team * sub-DA; crash adds only the redone work "
        "since the last recovery point plus the downtime")
    return result


# ---------------------------------------------------------------------------
# T8 — workstation object buffers: data shipping with vs without caching
# ---------------------------------------------------------------------------

def run_t8(team_sizes: tuple[int, ...] = (2, 4),
           write_mixes: tuple[float, ...] = (0.2, 0.5),
           reread_locality: float = 0.6,
           seed: int = 11) -> ExperimentResult:
    """Bytes shipped, makespan and hit rate with caching on vs off.

    Claim (Sect.5.1): the workstation-server split — DOVs checked
    *out* of the server into the workstation — only pays off when the
    workstation keeps a local object buffer; otherwise simulated
    network cost scales with the number of reads instead of the
    working-set size.  Expected shape: for every team size and
    read/write mix, caching ships strictly fewer bytes and finishes
    strictly earlier (designers skip the re-fetch latency), with a
    non-zero buffer hit rate; invalidation traffic (the price of
    lease-based coherence) stays far below the payload savings.
    """
    from repro.bench.scenarios import object_buffer_scenario

    result = ExperimentResult(
        "T8", "Workstation object buffers: cached data shipping with "
              "lease-based coherence")
    for team in team_sizes:
        for write_mix in write_mixes:
            for caching in (False, True):
                report = object_buffer_scenario(
                    team=team, caching=caching, seed=seed,
                    reread_locality=reread_locality,
                    write_mix=write_mix)
                result.add(team=team, write_mix=write_mix,
                           caching=caching,
                           makespan=round(report.makespan, 1),
                           bytes_shipped=report.bytes_shipped,
                           hit_rate=round(report.hit_rate, 3),
                           invalidations=report.invalidations_sent,
                           checkins=report.checkins,
                           messages=report.messages,
                           fetch_time=round(report.fetch_time, 1))
    result.notes.append(
        "expected shape: same seed/team => caching ships strictly "
        "fewer bytes and yields a strictly lower makespan, hit rate "
        "> 0; higher write mixes erode the hit rate (supersessions "
        "invalidate buffered copies) but never invert the ordering")
    return result


# ---------------------------------------------------------------------------
# T9 — write-back object buffers: group checkin vs eager shipping
# ---------------------------------------------------------------------------

def run_t9(team_sizes: tuple[int, ...] = (2, 4),
           write_ratios: tuple[float, ...] = (0.5, 0.8),
           seed: int = 13) -> ExperimentResult:
    """Write-back vs write-through checkins on the real TM stack.

    Claim (Sect.5.1/5.2): checkout/checkin data shipping dominates the
    TE level's cost; PR 2 made checkouts buffer-first, this experiment
    closes the loop on the checkin direction.  For the same seeded
    team (identical read sets, durations and write plans), write-back
    staging — dirty buffer entries, coalescing, one batched group
    checkin under a single 2PC at End-of-DOP — must ship strictly
    fewer bytes and finish no later than eagerly shipping every
    checkin.  Each run ends with a seeded server restart whose
    stamp-based re-validation keeps warm buffer entries resident
    (``revalidated`` > 0) instead of cold-flushing them.
    """
    from repro.bench.scenarios import write_back_scenario

    result = ExperimentResult(
        "T9", "Write-back object buffers: group checkin, coalescing "
              "and stamp-based lease re-validation")
    for team in team_sizes:
        for write_ratio in write_ratios:
            for write_back in (False, True):
                report = write_back_scenario(
                    team=team, write_back=write_back, seed=seed,
                    write_ratio=write_ratio)
                result.add(team=team, write_ratio=write_ratio,
                           write_back=write_back,
                           makespan=round(report.makespan, 1),
                           bytes_shipped=report.bytes_shipped,
                           checkins=report.checkins,
                           flushes=report.flushes,
                           coalesced=report.coalesced,
                           batches=report.batches,
                           invalidations=report.invalidations_sent,
                           hit_rate=round(report.hit_rate, 3),
                           revalidated=report.revalidated,
                           post_restart_bytes=report.post_restart_bytes)
    result.notes.append(
        "expected shape: same seed/team => write-back ships strictly "
        "fewer bytes (coalesced intermediates never cross the LAN, "
        "fewer supersessions => fewer invalidations) at a makespan no "
        "worse than write-through; the server-restart episode keeps "
        "revalidated > 0 warm entries without re-shipping them")
    return result


# ---------------------------------------------------------------------------
# T10 — federated atomic commit: crashes around the global decision log
# ---------------------------------------------------------------------------

def run_t10(members: int = 3, batches: int = 4,
            seed: int = 17) -> ExperimentResult:
    """All-or-nothing cross-member commit under injected crashes.

    The paper's Sect.6 assumes distributed data management "does not
    influence the major model of operation"; PR 5 makes that true for
    *commit* by giving the federation a durable global decision log
    with presumed-abort recovery.  This experiment drives the same
    seeded batch sequence through four failure placements — no crash,
    a member crash *before* the decision record, a member crash
    *after* it, and a coordinator crash between the record and the
    participant notifications — and checks that every run converges
    to the **identical** id-independent durable state: before the
    decision nothing survives (presumed abort, clean retry), after it
    everything does (redo from the member's forced prepare record).
    """
    from repro.bench.scenarios import federated_commit_scenario

    result = ExperimentResult(
        "T10", "Federated atomic commit: global decision log with "
               "presumed-abort recovery")
    states: dict[str, tuple] = {}
    for crash in ("none", "before", "after", "coordinator"):
        report = federated_commit_scenario(
            crash=crash, members=members, batches=batches, seed=seed)
        states[crash] = report.state
        result.add(crash=crash, batches=report.batches,
                   decisions=report.decisions_logged,
                   forced_decision_writes=report.forced_decision_writes,
                   aborted=report.aborted_batches,
                   retried=report.retried_batches,
                   redone=report.redone_batches,
                   atomic_violations=report.atomic_violations,
                   durable_total=sum(
                       report.durable_per_member.values()),
                   state_matches_baseline=(
                       report.state == states["none"]))
    result.data["states_identical"] = \
        len(set(states.values())) == 1
    result.notes.append(
        "expected shape: identical durable state for every crash "
        "placement; crash-before aborts and retries (presumed abort), "
        "crash-after redoes from the logged decision, coordinator "
        "crash completes via resolve_incomplete; zero atomicity "
        "violations everywhere")
    return result


# ---------------------------------------------------------------------------
# T11 — kernel saturation: the TTL-lease storm
# ---------------------------------------------------------------------------

def run_t11(workstations: int = 60, leases_per_ws: int = 1000,
            renew_rounds: int = 3, renew_fraction: float = 0.5,
            ttl: float = 40.0) -> ExperimentResult:
    """Kernel saturation: a workstation fleet's TTL-lease storm.

    The paper's workstation/server split (§2) puts the server-side
    coherence state — read leases over every checked-out DOV — on the
    clock: each lease must be renewed or it expires.  This experiment
    drives the kernel with that load alone, scaled toward the
    million-lease regime the architecture targets: ``workstations``
    working sets of ``leases_per_ws`` leases granted in per-station
    waves, half the fleet renewing its whole set every ``ttl/2`` for
    ``renew_rounds`` rounds (the metadata-only batch renewal), the
    other half going silent after the grant.  The run ends at
    quiescence: every lease has expired.

    Expected shape: every granted lease eventually expires exactly
    once, renewals never resurrect, and the renewing half of the fleet
    outlives the silent half by the renewal horizon.  The wall clock
    and kernel event count are recorded for the perf harness: under
    bucketed expiry (PR 7) the kernel schedules one event per distinct
    expiry instant; under the per-``sim.Timer`` baseline it schedules
    one heap entry per lease plus one re-check event per renewal.
    """
    from repro.sim import Kernel, SimClock
    from repro.txn.leases import LeaseTable

    kernel = Kernel(SimClock(), trace_events=False)
    table = LeaseTable(kernel.clock, ttl=ttl,
                       kernel_source=lambda: kernel)
    expiry_times: dict[str, list[float]] = {"renewing": [],
                                            "silent": []}
    renewing = {f"ws-{index:04d}"
                for index in range(int(workstations * renew_fraction))}

    def classify(workstation: str) -> str:
        return "renewing" if workstation in renewing else "silent"

    table.on_expire = lambda workstation, __: \
        expiry_times[classify(workstation)].append(kernel.clock.now)

    def grant_wave(workstation: str) -> None:
        for index in range(leases_per_ws):
            table.grant(workstation, f"dov-{workstation}-{index}")

    for index in range(workstations):
        name = f"ws-{index:04d}"
        kernel.at(index * 0.01, lambda name=name: grant_wave(name),
                  label=f"grant-wave:{name}")
        if name in renewing:
            for round_no in range(1, renew_rounds + 1):
                kernel.at(index * 0.01 + round_no * ttl * 0.5,
                          lambda name=name:
                          table.renew_workstation(name),
                          label=f"renew-wave:{name}")

    start = time.perf_counter()
    kernel.run_until_quiescent(
        max_events=workstations * leases_per_ws * (renew_rounds + 2)
        + 10_000)
    wall = time.perf_counter() - start

    total = workstations * leases_per_ws
    result = ExperimentResult(
        "T11", "Kernel saturation: workstation-fleet TTL-lease storm")
    for mode in ("renewing", "silent"):
        stations = [f"ws-{index:04d}" for index in range(workstations)
                    if classify(f"ws-{index:04d}") == mode]
        times = expiry_times[mode]
        result.add(mode=mode, workstations=len(stations),
                   leases=len(stations) * leases_per_ws,
                   expirations=len(times),
                   mean_expiry_t=round(sum(times) / len(times), 1)
                   if times else 0.0)
    stats = table.stats()
    result.data.update(
        leases=total, live_after=stats["live"],
        grants=stats["grants"], renewals=stats["renewals"],
        expirations=stats["expirations"], strategy=stats["strategy"],
        kernel_events=kernel.executed, wall_seconds=round(wall, 3),
        events_per_sec=round(kernel.executed / wall) if wall else 0)
    result.notes.append(
        "expected shape: every lease expires exactly once; the "
        "renewing fleet half outlives the silent half by the renewal "
        "horizon; kernel events stay proportional to distinct expiry "
        "instants under bucketed expiry (vs one heap entry per lease "
        "plus re-checks under the per-timer baseline)")
    return result


ALL_EXPERIMENTS = {
    "T1": run_t1, "T2": run_t2, "T3": run_t3,
    "T4": run_t4, "T5": run_t5, "T6": run_t6, "T7": run_t7,
    "T8": run_t8, "T9": run_t9, "T10": run_t10, "T11": run_t11,
}
