"""Experiment harness: drivers for every figure (F1-F8) and experiment
(T1-T6), shared scenarios, and table rendering."""

from repro.bench.ablations import ALL_ABLATIONS, run_a1, run_a2, run_a3
from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    negotiate_border,
    run_t1,
    run_t2,
    run_t3,
    run_t4,
    run_t5,
    run_t6,
)
from repro.bench.figures import (
    ALL_FIGURES,
    run_f1,
    run_f2,
    run_f3,
    run_f4,
    run_f5,
    run_f6,
    run_f7,
    run_f8,
)
from repro.bench.reporting import ExperimentResult, format_table
from repro.bench.scorecard import SCORECARD, run_scorecard
from repro.bench.scenarios import (
    Fig5Report,
    RecursiveReport,
    recursive_planning_scenario,
    chip_spec,
    fig5_delegation_scenario,
    make_vlsi_system,
    run_full_chip_design,
    subcell_script,
    subcell_seed,
)

__all__ = [
    "ALL_ABLATIONS",
    "ALL_EXPERIMENTS",
    "ALL_FIGURES",
    "ExperimentResult",
    "Fig5Report",
    "RecursiveReport",
    "chip_spec",
    "fig5_delegation_scenario",
    "format_table",
    "make_vlsi_system",
    "negotiate_border",
    "recursive_planning_scenario",
    "run_f1",
    "run_f2",
    "run_f3",
    "run_f4",
    "run_f5",
    "run_f6",
    "run_f7",
    "run_a1",
    "run_a2",
    "run_a3",
    "run_f8",
    "run_full_chip_design",
    "run_t1",
    "run_t2",
    "run_t3",
    "run_t4",
    "run_t5",
    "run_t6",
    "run_scorecard",
    "SCORECARD",
    "subcell_script",
    "subcell_seed",
]
