"""AC level + model core: features, DAs, cooperation manager, system.

The paper's primary contribution: design activities with description
vectors, the Fig.7 lifecycle, delegation / usage / negotiation
relationships mediated by the cooperation manager, and the
:class:`ConcordSystem` facade wiring all three levels.
"""

from repro.core.activity import DescriptionVector, DesignActivity
from repro.core.cooperation_manager import CooperationManager
from repro.core.features import (
    DesignSpecification,
    Feature,
    PredicateFeature,
    QualityState,
    RangeFeature,
    TestToolFeature,
)
from repro.core.relationships import (
    Delegation,
    Message,
    Negotiation,
    Proposal,
    ProposalStatus,
    Usage,
)
from repro.core.states import (
    DaOperation,
    DaState,
    DaStateMachine,
    ISSUED_BY_COOPERATING_DA,
    legal_operations,
    transition_table,
)
from repro.core.system import ActivityBinding, ConcordSystem, DaRuntime

__all__ = [
    "ActivityBinding",
    "ConcordSystem",
    "CooperationManager",
    "DaOperation",
    "DaRuntime",
    "DaState",
    "DaStateMachine",
    "Delegation",
    "DescriptionVector",
    "DesignActivity",
    "DesignSpecification",
    "Feature",
    "ISSUED_BY_COOPERATING_DA",
    "Message",
    "Negotiation",
    "PredicateFeature",
    "Proposal",
    "ProposalStatus",
    "QualityState",
    "RangeFeature",
    "TestToolFeature",
    "Usage",
    "legal_operations",
    "transition_table",
]
