"""The DA lifecycle state machine (Fig.7).

"In order to enforce proper DA reactions, different states are
distinguished within the lifetime of a DA" (Sect.5.4):

* ``generated`` — initiated via a description vector, work not begun;
* ``active`` — performing design work;
* ``negotiating`` — internal processing suspended while negotiating;
* ``ready_for_termination`` — produced a final DOV (or reported an
  impossible specification) and awaits the super-DA's verdict;
* ``terminated`` — terminated by the super-DA, vanished from the
  hierarchy.

The transition table below encodes Fig.7's simplified state/transition
graph, including which of the 15 numbered operations are performed *by
a cooperating DA* (marked in the figure with an asterisk) — the CM uses
that flag to check who may issue what.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.util.errors import IllegalTransitionError


class DaState(str, Enum):
    """Lifecycle states of a design activity."""

    GENERATED = "generated"
    ACTIVE = "active"
    NEGOTIATING = "negotiating"
    READY_FOR_TERMINATION = "ready_for_termination"
    TERMINATED = "terminated"


class DaOperation(str, Enum):
    """The 15 operations of Fig.7, in the figure's numbering order."""

    INIT_DESIGN = "Init_Design"                            # 1
    CREATE_SUB_DA = "Create_Sub_DA"                        # 2
    START = "Start"                                        # 3
    MODIFY_SUB_DA_SPEC = "Modify_Sub_DA_Specification"     # 4 *
    SUB_DA_READY_TO_COMMIT = "Sub_DA_Ready_To_Commit"      # 5
    TERMINATE_SUB_DA = "Terminate_Sub_DA"                  # 6 *
    EVALUATE = "Evaluate"                                  # 7
    SUB_DA_IMPOSSIBLE_SPEC = "Sub_DA_Impossible_Specification"  # 8
    PROPAGATE = "Propagate"                                # 9
    REQUIRE = "Require"                                    # 10 *
    CREATE_NEGOTIATION_REL = "Create_Negotiation_Relationship"  # 11 *
    PROPOSE = "Propose"                                    # 12 *
    AGREE = "Agree"                                        # 13
    DISAGREE = "Disagree"                                  # 14
    SUB_DA_SPEC_CONFLICT = "Sub_DAs_Specification_Conflict"  # 15


#: operations performed *on* a DA by a cooperating DA (Fig.7 asterisks):
#: the super-DA modifies/terminates, peers require/propose, etc.
ISSUED_BY_COOPERATING_DA: frozenset[DaOperation] = frozenset({
    DaOperation.MODIFY_SUB_DA_SPEC,
    DaOperation.TERMINATE_SUB_DA,
    DaOperation.REQUIRE,
    DaOperation.CREATE_NEGOTIATION_REL,
    DaOperation.PROPOSE,
})

#: (current state, operation) -> next state.  Operations not listed for
#: a state are illegal in it.
_TRANSITIONS: dict[tuple[DaState, DaOperation], DaState] = {
    # creation: Init_Design / Create_Sub_DA put a *new* DA in GENERATED;
    # they are listed for completeness on the creating side (no state
    # change for an already-living DA performing Create_Sub_DA).
    (DaState.GENERATED, DaOperation.START): DaState.ACTIVE,
    (DaState.GENERATED, DaOperation.MODIFY_SUB_DA_SPEC): DaState.GENERATED,
    (DaState.GENERATED, DaOperation.TERMINATE_SUB_DA): DaState.TERMINATED,

    (DaState.ACTIVE, DaOperation.CREATE_SUB_DA): DaState.ACTIVE,
    (DaState.ACTIVE, DaOperation.EVALUATE): DaState.ACTIVE,
    (DaState.ACTIVE, DaOperation.PROPAGATE): DaState.ACTIVE,
    (DaState.ACTIVE, DaOperation.REQUIRE): DaState.ACTIVE,
    (DaState.ACTIVE, DaOperation.CREATE_NEGOTIATION_REL): DaState.ACTIVE,
    (DaState.ACTIVE, DaOperation.PROPOSE): DaState.NEGOTIATING,
    (DaState.ACTIVE, DaOperation.MODIFY_SUB_DA_SPEC): DaState.ACTIVE,
    (DaState.ACTIVE, DaOperation.SUB_DA_READY_TO_COMMIT):
        DaState.READY_FOR_TERMINATION,
    (DaState.ACTIVE, DaOperation.SUB_DA_IMPOSSIBLE_SPEC):
        DaState.READY_FOR_TERMINATION,
    (DaState.ACTIVE, DaOperation.TERMINATE_SUB_DA): DaState.TERMINATED,

    (DaState.NEGOTIATING, DaOperation.PROPOSE): DaState.NEGOTIATING,
    (DaState.NEGOTIATING, DaOperation.AGREE): DaState.ACTIVE,
    (DaState.NEGOTIATING, DaOperation.DISAGREE): DaState.NEGOTIATING,
    (DaState.NEGOTIATING, DaOperation.SUB_DA_SPEC_CONFLICT): DaState.ACTIVE,
    (DaState.NEGOTIATING, DaOperation.EVALUATE): DaState.NEGOTIATING,

    # "it should not do any more work until the super-DA has issued a
    # corresponding request": the super may modify the spec (back to
    # work) or terminate.
    (DaState.READY_FOR_TERMINATION, DaOperation.MODIFY_SUB_DA_SPEC):
        DaState.ACTIVE,
    (DaState.READY_FOR_TERMINATION, DaOperation.TERMINATE_SUB_DA):
        DaState.TERMINATED,
    (DaState.READY_FOR_TERMINATION, DaOperation.PROPAGATE):
        DaState.READY_FOR_TERMINATION,
}


@dataclass
class DaStateMachine:
    """Per-DA state holder enforcing the Fig.7 transitions."""

    da_id: str
    state: DaState = DaState.GENERATED
    #: (operation, from-state, to-state) history for experiment F7
    history: list[tuple[DaOperation, DaState, DaState]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.history is None:
            self.history = []

    def can(self, operation: DaOperation) -> bool:
        """True when *operation* is legal in the current state."""
        return (self.state, operation) in _TRANSITIONS

    def apply(self, operation: DaOperation) -> DaState:
        """Perform a transition; raises :class:`IllegalTransitionError`."""
        key = (self.state, operation)
        if key not in _TRANSITIONS:
            raise IllegalTransitionError(
                f"DA {self.da_id!r}: operation {operation.value!r} illegal "
                f"in state {self.state.value!r}",
                state=self.state.value, operation=operation.value)
        old = self.state
        self.state = _TRANSITIONS[key]
        self.history.append((operation, old, self.state))
        return self.state


def legal_operations(state: DaState) -> list[DaOperation]:
    """All operations permitted in *state* (experiment F7 coverage)."""
    return [op for (s, op) in _TRANSITIONS if s is state]


def transition_table() -> dict[tuple[DaState, DaOperation], DaState]:
    """A copy of the full Fig.7 transition table."""
    return dict(_TRANSITIONS)
