"""Features, design specifications and quality states (Sect.4.1).

"The design task of a DA is specified in the parameter SPEC as a set of
properties the DOV to be constructed should possess.  In our model,
these properties are named *features* [Kä91]. ... In the simplest case,
a feature in the design specification of a DA constrains the value of
an elementary data item to be in a certain range.  A more complicated
feature can express the need that the resulting DOVs have to pass a
particular test tool successfully."

"The quality state of a given DOV is defined by the subset of features
fulfilled and is determined by the *Evaluate* operation. ... we
distinguish *preliminary* DOVs fulfilling at most a true subset of the
specification, from *final* DOVs."

Refinement rules (delegation + negotiation both rely on them): "the
sub-DA is only allowed to refine its own specification by addition of
new features or by further restricting existing features."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.util.errors import SpecificationError


class Feature:
    """Base class: a named, checkable property of design object data."""

    def __init__(self, name: str) -> None:
        if not name:
            raise SpecificationError("feature name must be non-empty")
        self.name = name

    def satisfied(self, data: dict[str, Any]) -> bool:
        """True when the DOV payload *data* fulfils this feature."""
        raise NotImplementedError

    def restricts(self, other: "Feature") -> bool:
        """True when self is the same feature or a *restriction* of it.

        Used to validate refinements: a restriction accepts a subset of
        the data the original accepts.
        """
        return self.name == other.name and type(self) is type(other)


class RangeFeature(Feature):
    """The 'simplest case': an attribute constrained to a range."""

    def __init__(self, name: str, attr: str,
                 lo: float | None = None, hi: float | None = None) -> None:
        super().__init__(name)
        if lo is None and hi is None:
            raise SpecificationError(
                f"range feature {name!r} needs at least one bound")
        if lo is not None and hi is not None and lo > hi:
            raise SpecificationError(
                f"range feature {name!r}: lo={lo} > hi={hi}")
        self.attr = attr
        self.lo = lo
        self.hi = hi

    def satisfied(self, data: dict[str, Any]) -> bool:
        value = data.get(self.attr)
        if value is None or not isinstance(value, (int, float)):
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def restricts(self, other: Feature) -> bool:
        """A range restricts another iff same attribute and ⊆ interval."""
        if not isinstance(other, RangeFeature) or self.name != other.name:
            return False
        if self.attr != other.attr:
            return False
        lo_ok = (other.lo is None
                 or (self.lo is not None and self.lo >= other.lo))
        hi_ok = (other.hi is None
                 or (self.hi is not None and self.hi <= other.hi))
        return lo_ok and hi_ok

    def widened(self, lo: float | None = None,
                hi: float | None = None) -> "RangeFeature":
        """A copy with replaced bounds (negotiation moves borders)."""
        return RangeFeature(self.name, self.attr,
                            self.lo if lo is None else lo,
                            self.hi if hi is None else hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RangeFeature({self.name!r}, {self.attr!r}, "
                f"lo={self.lo}, hi={self.hi})")


class PredicateFeature(Feature):
    """An application-specific property checked by a callable."""

    def __init__(self, name: str,
                 predicate: Callable[[dict[str, Any]], bool]) -> None:
        super().__init__(name)
        self.predicate = predicate

    def satisfied(self, data: dict[str, Any]) -> bool:
        try:
            return bool(self.predicate(data))
        except Exception:
            return False


class TestToolFeature(Feature):
    """'the resulting DOVs have to pass a particular test tool'.

    The test tool is a callable producing a pass/fail verdict over the
    DOV data (in the VLSI domain e.g. a design-rule check).
    """

    #: not a pytest test class despite the name
    __test__ = False

    def __init__(self, name: str, tool_name: str,
                 test: Callable[[dict[str, Any]], bool]) -> None:
        super().__init__(name)
        self.tool_name = tool_name
        self.test = test

    def satisfied(self, data: dict[str, Any]) -> bool:
        try:
            return bool(self.test(data))
        except Exception:
            return False

    def restricts(self, other: Feature) -> bool:
        return (isinstance(other, TestToolFeature)
                and self.name == other.name
                and self.tool_name == other.tool_name)


@dataclass(frozen=True)
class QualityState:
    """Result of Evaluate: which features a DOV fulfils."""

    fulfilled: frozenset[str]
    total: frozenset[str]

    @property
    def is_final(self) -> bool:
        """All features fulfilled — the DA reached its goal."""
        return self.fulfilled == self.total

    @property
    def is_preliminary(self) -> bool:
        """At most a true subset fulfilled."""
        return not self.is_final

    @property
    def missing(self) -> frozenset[str]:
        """Features not yet fulfilled — the 'distance' to the goal."""
        return self.total - self.fulfilled

    @property
    def distance(self) -> int:
        """Number of unfulfilled features."""
        return len(self.missing)

    def covers(self, required: set[str] | frozenset[str]) -> bool:
        """True when all *required* feature names are fulfilled.

        Usage relationships ask for "a DOV with a certain set of
        features satisfied" — this is that check.
        """
        return set(required) <= set(self.fulfilled)


class DesignSpecification:
    """An immutable set of features — the SPEC of a DA."""

    def __init__(self, features: list[Feature] | None = None) -> None:
        self._features: dict[str, Feature] = {}
        for feature in features or []:
            if feature.name in self._features:
                raise SpecificationError(
                    f"duplicate feature {feature.name!r} in specification")
            self._features[feature.name] = feature

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._features)

    def __iter__(self) -> Iterator[Feature]:
        return iter(self._features.values())

    def __contains__(self, name: str) -> bool:
        return name in self._features

    def feature(self, name: str) -> Feature:
        """Look up a feature by name."""
        try:
            return self._features[name]
        except KeyError:
            raise SpecificationError(
                f"no feature named {name!r} in specification") from None

    def names(self) -> frozenset[str]:
        """All feature names."""
        return frozenset(self._features)

    # -- Evaluate ---------------------------------------------------------------

    def evaluate(self, data: dict[str, Any]) -> QualityState:
        """The Evaluate operation: compute the quality state of a DOV."""
        fulfilled = frozenset(name for name, f in self._features.items()
                              if f.satisfied(data))
        return QualityState(fulfilled, self.names())

    def is_final(self, data: dict[str, Any]) -> bool:
        """True when *data* fulfils the whole feature set."""
        return self.evaluate(data).is_final

    # -- refinement -----------------------------------------------------------------

    def refines(self, other: "DesignSpecification") -> bool:
        """True when self refines *other*.

        Refinement = every feature of *other* is present unchanged or
        further restricted; new features may be added freely.
        """
        for name, feature in other._features.items():
            mine = self._features.get(name)
            if mine is None or not mine.restricts(feature):
                return False
        return True

    def with_feature(self, feature: Feature) -> "DesignSpecification":
        """A new specification with *feature* added (refinement by
        addition)."""
        if feature.name in self._features:
            raise SpecificationError(
                f"feature {feature.name!r} already present; use "
                f"with_restricted to tighten it")
        return DesignSpecification(list(self) + [feature])

    def with_restricted(self, feature: Feature) -> "DesignSpecification":
        """A new specification with an existing feature restricted."""
        current = self.feature(feature.name)
        if not feature.restricts(current):
            raise SpecificationError(
                f"{feature.name!r}: proposed change is not a restriction "
                f"of the existing feature")
        features = [feature if f.name == feature.name else f for f in self]
        return DesignSpecification(features)

    def replaced(self, feature: Feature) -> "DesignSpecification":
        """A new specification with *feature* replacing its namesake.

        This is *not* a refinement check — super-DAs may reformulate
        sub-DA goals arbitrarily (Modify_Sub_DA_Specification), e.g.
        *widen* an area bound during the Fig.5 renegotiation.
        """
        if feature.name in self._features:
            features = [feature if f.name == feature.name else f
                        for f in self]
        else:
            features = list(self) + [feature]
        return DesignSpecification(features)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DesignSpecification({sorted(self._features)})"
