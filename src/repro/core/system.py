"""The CONCORD system facade: wires all three levels together.

:class:`ConcordSystem` assembles the architecture of Fig.8 — CM at the
server, one DM per DA on its workstation, client-TM per workstation,
server-TM + repository at the server — over the simulated LAN, and
offers the high-level operations examples and experiments use:
creating DAs (with their DMs), running their work flows, injecting
crashes, and recovering.

This is the main entry point of the library::

    system = ConcordSystem()
    system.add_workstation("ws-1")
    da = system.init_design(dot, spec, "alice", script, "ws-1",
                            initial_data={...})
    system.start(da.da_id)
    system.run(da.da_id)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.activity import DesignActivity
from repro.core.cooperation_manager import CooperationManager
from repro.core.features import DesignSpecification
from repro.dc.constraints import DomainConstraintSet
from repro.dc.design_manager import (
    DesignManager,
    DesignerPolicy,
    DmStatus,
    PendingDop,
    ToolRegistry,
)
from repro.dc.rules import RuleEngine
from repro.dc.script import DopStep, Script
from repro.net.network import Network, Node
from repro.net.rpc import TransactionalRpc
from repro.net.two_phase_commit import CommitProtocol
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import DesignObjectType
from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel
from repro.te.locks import LockManager
from repro.te.object_buffer import ObjectBuffer
from repro.te.recovery import RecoveryPointPolicy
from repro.te.transaction_manager import (
    ClientTM,
    ServerTM,
    register_server_endpoints,
)
from repro.util.errors import ConcordError, NodeDownError, RpcError
from repro.util.ids import IdGenerator
from repro.util.trace import EventTrace


class ActivityBinding:
    """Adapter giving a DM its DA-specific context (DaBinding impl)."""

    def __init__(self, da: DesignActivity, cm: CooperationManager) -> None:
        self._da = da
        self._cm = cm

    @property
    def da_id(self) -> str:
        """The bound DA's id."""
        return self._da.da_id

    @property
    def dot_name(self) -> str:
        """New DOVs are checked in under the DA's DOT."""
        return self._da.dot.name

    def pick_inputs(self, step: DopStep) -> list[str]:
        """Default input choice: continue from the newest design state.

        Prefers the most recent leaf of the DA's derivation graph,
        falls back to the initial DOV (DOV0) and otherwise to DOVs
        delivered along usage relationships; an empty list means the
        tool starts from scratch.
        """
        explicit = step.params.get("inputs")
        if explicit:
            return list(explicit)
        repo = self._cm.repository
        if repo.has_graph(self.da_id):
            leaves = repo.graph(self.da_id).leaves()
            if leaves:
                newest = max(leaves, key=lambda d: d.created_at)
                return [newest.dov_id]
        if self._da.vector.initial_dov is not None:
            return [self._da.vector.initial_dov]
        delivered = sorted(
            self._cm.locks.scope_of(self.da_id))
        if delivered:
            return [delivered[0]]
        return []

    def _resolve_dov(self, params: dict[str, Any]) -> str:
        dov = params.get("dov", "latest")
        if dov != "latest":
            return dov
        repo = self._cm.repository
        leaves = repo.graph(self.da_id).leaves() \
            if repo.has_graph(self.da_id) else []
        if not leaves:
            raise ConcordError(
                f"DA {self.da_id!r} has no DOV to operate on yet")
        return max(leaves, key=lambda d: d.created_at).dov_id

    def da_operation(self, operation: str, params: dict[str, Any]) -> Any:
        """Dispatch an embedded DA operation to the CM."""
        cm = self._cm
        if operation == "Evaluate":
            return cm.evaluate(self.da_id, self._resolve_dov(params))
        if operation == "Propagate":
            return cm.propagate(self.da_id, self._resolve_dov(params))
        if operation == "Require":
            return cm.require(self.da_id, params["supporting"],
                              set(params["features"]))
        if operation == "Sub_DA_Ready_To_Commit":
            return cm.sub_da_ready_to_commit(self.da_id)
        if operation == "Sub_DA_Impossible_Specification":
            return cm.sub_da_impossible_specification(
                self.da_id, params.get("reason", ""))
        raise ConcordError(f"unsupported embedded DA operation "
                           f"{operation!r}")


@dataclass
class DaRuntime:
    """Everything attached to one living DA."""

    da: DesignActivity
    dm: DesignManager
    binding: ActivityBinding
    client_tm: ClientTM


class ConcordSystem:
    """A complete CONCORD installation on one simulated LAN."""

    def __init__(self, trace: bool = True,
                 recovery_policy: RecoveryPointPolicy | None = None,
                 commit_protocol: CommitProtocol =
                 CommitProtocol.PRESUMED_ABORT,
                 lan_latency: float = 0.010,
                 repository: Any = None,
                 jitter: float = 0.0,
                 seed: int = 0,
                 object_buffers: bool = True,
                 buffer_capacity_bytes: int | None = None,
                 bandwidth: float = 1_000_000.0,
                 write_back: bool = False,
                 eviction_policy: str = "lru",
                 flush_interval: int | None = None,
                 lease_ttl: float | None = None,
                 pressure_fraction: float = 1.0,
                 shards: int = 1,
                 parallel: bool = False) -> None:
        self.clock = SimClock()
        self.ids = IdGenerator()
        self.trace = EventTrace(enabled=trace)
        #: event-loop shards: 1 = the plain kernel; N > 1 partitions
        #: the workstation event streams across a
        #: :class:`~repro.sim.shard.ShardedKernel`'s merge barrier
        #: (deterministic — seeded traces are identical either way)
        self.shards = shards
        #: parallel=True marks this world for multi-process execution
        #: (:mod:`repro.sim.parallel` replicated mode): the kernel
        #: records per-event shard ownership so each spawned worker
        #: can contribute exactly its shards' slice of the trace
        self.parallel = parallel
        if parallel and shards < 2:
            raise ValueError(
                "parallel=True needs shards >= 2 (one worker per "
                "shard; a single shard has nothing to parallelise)")
        #: the unified discrete-event kernel every layer schedules on
        if shards > 1:
            from repro.sim.shard import ShardedKernel
            self.kernel: Kernel = ShardedKernel(self.clock, shards=shards)
            if parallel:
                self.kernel.shard_log = []
        else:
            self.kernel = Kernel(self.clock)
        self.network = Network(self.clock, lan_latency=lan_latency,
                               jitter=jitter, seed=seed,
                               bandwidth=bandwidth)
        self.network.attach_kernel(self.kernel)
        self.server: Node = self.network.add_server()
        # the server anchors shard 0; workstations round-robin over
        # the remaining shards (see add_workstation)
        self.kernel.assign_shard(self.server.node_id, 0)
        self.rpc = TransactionalRpc(self.network)
        # any object with the DesignDataRepository interface works here,
        # e.g. a FederatedRepository — the paper's Sect.6 claim that
        # distributed data management "does not influence the major
        # model of operation"
        self.repository = repository if repository is not None \
            else DesignDataRepository(self.ids)
        self.locks = LockManager()
        # server crash/restart wiring for the repository — registered
        # BEFORE the server-TM's own hooks so that, on restart, the
        # repository has redone its WAL by the time the server-TM
        # re-validates the workstation buffers against its stamps
        self.server.on_crash.append(lambda: self.repository.crash())
        self.server.on_restart.append(lambda: self.repository.recover())
        self.server_tm = ServerTM(self.repository, self.locks,
                                  self.network, trace=self.trace,
                                  clock=self.clock,
                                  lease_ttl=lease_ttl)
        # facade default: keep warm buffers across a server restart
        # (stamp-based re-validation); restart_server(revalidate=False)
        # restores the seed's conservative cold flush
        self.server_tm.revalidate_on_restart = True
        register_server_endpoints(self.rpc, self.server_tm)
        self.cm = CooperationManager(self.repository, self.locks,
                                     self.network, ids=self.ids,
                                     trace=self.trace)
        self.cm.install_scope_check(self.server_tm)
        self.tools = ToolRegistry()
        self.recovery_policy = recovery_policy or RecoveryPointPolicy()
        self.commit_protocol = commit_protocol
        #: workstation object buffers on (the data-shipping cache) or
        #: off (every checkout re-ships its payload)
        self.object_buffers = object_buffers
        self.buffer_capacity_bytes = buffer_capacity_bytes
        #: replacement policy name for every workstation buffer
        #: ("fifo" | "lru" | "size-aware")
        self.eviction_policy = eviction_policy
        #: write-back checkins (deferred, group-flushed) vs the
        #: write-through default
        self.write_back = write_back
        self.flush_interval = flush_interval
        #: lease regime: None = explicit recalls only (the PR 2
        #: protocol); a number = TTL renewal leases on kernel timers
        self.lease_ttl = lease_ttl
        #: capacity-pressure flush policy: fraction of the dirty set
        #: (oldest first) a pressure-triggered flush ships
        self.pressure_fraction = pressure_fraction
        self._buffers: dict[str, ObjectBuffer] = {}
        self._client_tms: dict[str, ClientTM] = {}
        self._runtimes: dict[str, DaRuntime] = {}
        self.constraints = DomainConstraintSet()
        #: installed by :meth:`run_concurrent` — called with a node id
        #: after its restart so the driver can resume the DAs on it
        self._concurrent_resume: Any = None
        #: per-DA reports of the most recent workstation recovery (the
        #: kernel restart path has no caller to hand them to)
        self.last_recovery_reports: dict[str, Any] = {}

        # CM state reload on server restart (repository hooks were
        # registered above, before the server-TM's re-validation hook)
        self.server.on_restart.append(lambda: self.cm.recover())

    # -- topology ------------------------------------------------------------

    def add_workstation(self, name: str) -> ClientTM:
        """Register a designer workstation with its client-TM.

        With :attr:`object_buffers` on, the workstation gets its DOV
        object buffer; the client-TM serves checkout hits from it and
        the server-TM tracks its read leases for invalidation.
        """
        self.network.add_workstation(name)
        if self.shards > 1:
            # deterministic round-robin placement by registration
            # order, skewed off shard 0 so the server's stream keeps
            # headroom when there are shards to spare
            index = len(self._client_tms)
            self.kernel.assign_shard(name, (1 + index) % self.shards)
        buffer = None
        if self.object_buffers:
            buffer = ObjectBuffer(
                name, capacity_bytes=self.buffer_capacity_bytes,
                policy=self.eviction_policy)
            self._buffers[name] = buffer
        client_tm = ClientTM(name, self.server_tm, self.rpc, self.clock,
                             ids=self.ids, policy=self.recovery_policy,
                             trace=self.trace,
                             protocol=self.commit_protocol,
                             buffer=buffer,
                             write_back=self.write_back,
                             flush_interval=self.flush_interval,
                             pressure_fraction=self.pressure_fraction)
        self._client_tms[name] = client_tm
        return client_tm

    def flush_group(self, workstations: list[str] | None = None):
        """Cross-workstation group commit: the dirty sets of the named
        (default: all) workstations ship under ONE coordinator, ONE
        decision and ONE forced repository WAL write — see
        :func:`repro.txn.flush_group`."""
        from repro.txn import flush_group

        names = workstations if workstations is not None \
            else list(self._client_tms)
        return flush_group([self.client_tm(name) for name in names])

    def client_tm(self, workstation: str) -> ClientTM:
        """The client-TM of a workstation."""
        try:
            return self._client_tms[workstation]
        except KeyError:
            raise ConcordError(
                f"unknown workstation {workstation!r}") from None

    def object_buffer(self, workstation: str) -> ObjectBuffer | None:
        """The DOV object buffer of a workstation (None = caching off)."""
        if workstation not in self._client_tms:
            raise ConcordError(f"unknown workstation {workstation!r}")
        return self._buffers.get(workstation)

    # -- DA lifecycle -----------------------------------------------------------

    def _attach_runtime(self, da: DesignActivity) -> DaRuntime:
        client_tm = self.client_tm(da.workstation)
        binding = ActivityBinding(da, self.cm)
        dm = DesignManager(binding, client_tm, da.script, self.tools,
                           constraints=self.constraints,
                           rules=RuleEngine(), trace=self.trace)
        self.cm.register_dm(da.da_id, dm)
        runtime = DaRuntime(da, dm, binding, client_tm)
        self._runtimes[da.da_id] = runtime
        return runtime

    def init_design(self, dot: DesignObjectType,
                    spec: DesignSpecification, designer: str,
                    script: Script, workstation: str,
                    initial_data: dict[str, Any] | None = None
                    ) -> DesignActivity:
        """Create the top-level DA together with its design manager."""
        da = self.cm.init_design(dot, spec, designer, script, workstation,
                                 initial_data)
        self._attach_runtime(da)
        return da

    def create_sub_da(self, super_id: str, dot: DesignObjectType,
                      spec: DesignSpecification, designer: str,
                      script: Script, workstation: str,
                      initial_dov: str | None = None) -> DesignActivity:
        """Delegate a subtask: sub-DA plus its DM on *workstation*."""
        da = self.cm.create_sub_da(super_id, dot, spec, designer, script,
                                   workstation, initial_dov)
        self._attach_runtime(da)
        return da

    def runtime(self, da_id: str) -> DaRuntime:
        """The runtime bundle (DA, DM, client-TM) of a DA."""
        try:
            return self._runtimes[da_id]
        except KeyError:
            raise ConcordError(f"no runtime for DA {da_id!r}") from None

    def start(self, da_id: str) -> None:
        """Start a generated DA."""
        self.cm.start(da_id)

    def run(self, da_id: str, policy: DesignerPolicy | None = None,
            max_steps: int = 10_000) -> DmStatus:
        """Drive a DA's work flow until done / stopped / max_steps."""
        return self.runtime(da_id).dm.run(policy, max_steps)

    def step(self, da_id: str,
             policy: DesignerPolicy | None = None) -> bool:
        """Execute a single work-flow action of a DA."""
        return self.runtime(da_id).dm.step(policy)

    # -- asynchronous cooperation events ----------------------------------------------

    #: message kind -> ECA event name dispatched on the receiving DM
    EVENT_NAMES = {
        "require": "Require",
        "proposal": "Propose",
        "dov_delivered": "Delivered",
        "withdrawal": "Withdrawal",
        "ready_to_commit": "Ready_To_Commit",
        "impossible_specification": "Impossible_Specification",
        "specification_conflict": "Specification_Conflict",
        "specification_modified": "Specification_Modified",
        "disagree": "Disagree",
    }

    def _dispatch_message(self, recipient: str, message: Any) -> int:
        """Dispatch one CM message to the recipient DM's rule engine.

        Returns the number of rule firings (0 when the recipient has
        no runtime — the message is still considered delivered).
        """
        runtime = self._runtimes.get(recipient)
        if runtime is None:
            return 0
        event = self.EVENT_NAMES.get(message.kind, message.kind)
        env = {
            "system": self,
            "da_id": recipient,
            "sender": message.sender,
            "message": message,
            **message.payload,
        }
        return len(runtime.dm.rules.dispatch(event, env))

    def pump_events(self, da_id: str | None = None,
                    max_rounds: int = 25) -> int:
        """Deliver pending CM messages to the DMs' ECA rule engines.

        "Cooperation relationships among DAs lead to asynchronously
        occurring events within a DA ... generally asking the
        receiving DA to react or reply" (Sect.4.2).  Each pending
        message is consumed and dispatched as an (event, env) pair to
        the recipient's rule engine; the env carries the payload, the
        sender and handles to the system.

        This is the sequential compat shim over the kernel's
        auto-dispatch (see :meth:`run_concurrent`); it drains to a
        fixed point: messages produced *while* dispatching rule
        firings are delivered in follow-up rounds, bounded by
        *max_rounds*.  Returns the total number of rule firings.
        """
        firings = 0
        for _ in range(max_rounds):
            recipients = [da_id] if da_id is not None else \
                [d.da_id for d in self.cm.das()]
            consumed = 0
            for recipient in recipients:
                if recipient not in self._runtimes:
                    continue
                for message in self.cm.pop_messages(recipient):
                    consumed += 1
                    firings += self._dispatch_message(recipient, message)
            if consumed == 0:
                return firings
        return firings

    # -- concurrent execution on the shared kernel ------------------------------------

    def run_concurrent(self, da_ids: list[str] | None = None,
                       policy: DesignerPolicy | None = None,
                       max_steps: int = 10_000,
                       deadline: float | None = None,
                       max_events: int = 1_000_000
                       ) -> dict[str, DmStatus]:
        """Execute several DAs concurrently on the shared kernel.

        This is the concurrent counterpart of :meth:`run`: every DM
        work-flow action becomes a timed kernel event.  Instantaneous
        actions (script decisions, embedded DA operations) execute at
        the current instant; a DOP occupies the real span ``[start,
        start + tool duration]`` of simulated time, so the tool steps
        of different DAs genuinely interleave on the shared clock.
        CM cooperation messages are delivered asynchronously through
        the network (latency + jitter) and auto-dispatched to the
        recipient DM's rule engine on arrival — no manual
        :meth:`pump_events` choreography.  Crashes armed with
        :meth:`schedule_crash` interrupt steps mid-flight; after the
        restart the affected DMs run forward recovery and the driver
        resumes them (re-finishing an interrupted DOP from its
        recovery point).

        Runs until quiescence (every DA done/stopped, no message in
        flight) or until *deadline*; returns the DM statuses.
        """
        if da_ids is None:
            da_ids = [d.da_id for d in self.cm.das()
                      if d.state.value != "terminated"]
        da_ids = [d for d in da_ids if d in self._runtimes]
        kernel = self.kernel
        budgets = {da_id: max_steps for da_id in da_ids}
        #: per-DA count of queued drive/finish continuations (a crash
        #: can leave a stale finish event queued next to the recovery's
        #: replacement, so a boolean is not enough)
        live: dict[str, int] = {}
        #: (da_id, pending) pairs waiting for the server to come back;
        #: a parked DA keeps its `live` mark until the retry runs
        server_parked: list[tuple[str, PendingDop | None]] = []

        def mark(da_id: str) -> None:
            live[da_id] = live.get(da_id, 0) + 1

        def unmark(da_id: str) -> None:
            live[da_id] = live.get(da_id, 0) - 1

        def shard_for(da_id: str) -> int:
            return kernel.shard_of(self._runtimes[da_id].da.workstation)

        def schedule(da_id: str, delay: float = 0.0) -> None:
            mark(da_id)
            kernel.defer_to(shard_for(da_id), delay,
                            lambda: drive(da_id),
                            label=f"da-step:{da_id}")

        def schedule_finish(da_id: str, pending: PendingDop,
                            delay: float) -> None:
            mark(da_id)
            kernel.defer_to(shard_for(da_id), delay,
                            lambda: finish(da_id, pending),
                            label=f"dop-finish:{da_id}:{pending.step.tool}")

        def drive(da_id: str) -> None:
            unmark(da_id)
            dm = self._runtimes[da_id].dm
            if not dm.node.up or budgets[da_id] <= 0:
                return  # a restart (or nothing) resumes this DA
            budgets[da_id] -= 1
            try:
                outcome = dm.start_step(policy)
            except (NodeDownError, RpcError):
                # the server is down: drop the half-begun DOP (nothing
                # reached the server yet) and retry the whole step once
                # the server is back
                dm.abandon_start()
                mark(da_id)
                server_parked.append((da_id, None))
                return
            if isinstance(outcome, PendingDop):
                schedule_finish(da_id, outcome, outcome.remaining)
            elif outcome:
                schedule(da_id)

        def finish(da_id: str, pending: PendingDop) -> None:
            unmark(da_id)
            dm = self._runtimes[da_id].dm
            if not dm.node.up:
                return  # crashed mid-step; recovery reschedules
            try:
                progressed = dm.finish_step(pending, policy,
                                            advance_clock=False)
            except (NodeDownError, RpcError):
                # tool work is done, the checkin needs the server back
                mark(da_id)
                server_parked.append((da_id, pending))
                return
            if progressed:
                schedule(da_id)

        def resume_node(name: str) -> None:
            """Restart hook: resume DAs parked on the restarted node."""
            if name == self.server.node_id:
                parked, server_parked[:] = list(server_parked), []
                for da_id, pending in parked:
                    # the park kept its mark; schedule the retry
                    # directly so the count stays balanced
                    if pending is not None:
                        kernel.after(
                            0.0, lambda d=da_id, p=pending: finish(d, p),
                            label=f"dop-finish:{da_id}:"
                                  f"{pending.step.tool}")
                    else:
                        kernel.after(0.0,
                                     lambda d=da_id: drive(d),
                                     label=f"da-step:{da_id}")
                return
            for da_id in da_ids:
                runtime = self._runtimes[da_id]
                if runtime.da.workstation != name \
                        or runtime.da.state.value == "terminated":
                    continue
                pending = runtime.dm.resume_pending()
                if pending is not None:
                    schedule_finish(da_id, pending, pending.remaining)
                else:
                    schedule(da_id)

        def kick(da_id: str) -> None:
            """(Re-)animate a DA whose state a dispatched message may
            have changed (restart, resumed negotiation, ...)."""
            if live.get(da_id, 0) <= 0 and budgets.get(da_id, 0) > 0 \
                    and self._runtimes[da_id].dm.node.up:
                schedule(da_id)

        def auto_dispatch(recipient: str, message: Any) -> bool:
            if recipient not in self._runtimes:
                return False
            self._dispatch_message(recipient, message)
            # any DM may have become enabled (agree/modify/withdraw...)
            for da_id in da_ids:
                kick(da_id)
            return True

        previous_deliver = self.cm.on_deliver
        previous_resume = self._concurrent_resume
        self.cm.on_deliver = auto_dispatch
        self._concurrent_resume = resume_node
        try:
            for da_id in da_ids:
                schedule(da_id)
            kernel.run_until_quiescent(max_events=max_events,
                                       deadline=deadline)
        finally:
            self.cm.on_deliver = previous_deliver
            self._concurrent_resume = previous_resume
        return {da_id: self._runtimes[da_id].dm.status()
                for da_id in da_ids}

    def schedule_crash(self, node_id: str, at: float,
                       restart_after: float | None = 1.0) -> None:
        """Arm a kernel-injected crash of a workstation or the server.

        The crash fires at simulated instant *at* (interrupting any
        DOP in flight there); the restart — *restart_after* time units
        later, unless None — runs the component recovery chain
        (repository redo + CM reload for the server, DM forward
        recovery for a workstation) exactly like the manual
        :meth:`restart_workstation` / :meth:`restart_server` path.
        """
        if node_id == self.server.node_id:
            restart_action: Any = self.restart_server
        else:
            restart_action = lambda: self.restart_workstation(node_id)
        self.kernel.crash_at(self.network, node_id, at,
                             restart_after=restart_after,
                             restart_action=restart_action)

    # -- failure injection -----------------------------------------------------------

    def crash_workstation(self, name: str) -> None:
        """Crash a workstation: DOP contexts + DM volatile state vanish."""
        self.network.crash_node(name)

    def restart_workstation(self, name: str) -> dict[str, Any]:
        """Restart a workstation and run DM forward recovery on it.

        Returns the per-DA recovery reports.
        """
        self.network.restart_node(name)
        reports: dict[str, Any] = {}
        for da_id, runtime in self._runtimes.items():
            if runtime.da.workstation == name \
                    and runtime.da.state.value != "terminated":
                reports[da_id] = runtime.dm.recover()
        self.last_recovery_reports = reports
        if self._concurrent_resume is not None:
            self._concurrent_resume(name)
        return reports

    def crash_server(self) -> None:
        """Crash the server: repository + CM volatile state vanish."""
        self.network.crash_node(self.server.node_id)

    def restart_server(self, revalidate: bool = True) -> None:
        """Restart the server (repository redo + CM state reload run via
        the registered restart hooks).

        The lease table died with the server, so the surviving
        workstation buffer entries must be dealt with.  With
        ``revalidate=True`` (default) the server-TM re-validates each
        registered buffer against fresh repository stamps
        (``describe_many`` — metadata only): entries whose stamp still
        matches stay resident under a new read lease, so warm caches
        survive recovery without re-shipping a byte.  With
        ``revalidate=False`` the seed's conservative path runs
        instead: every buffer is cold-flushed and re-reads repopulate
        it through the normal checkout chain.  The choice is sticky —
        it also governs later kernel-injected restarts armed with
        :meth:`schedule_crash`.
        """
        self.server_tm.revalidate_on_restart = revalidate
        self.network.restart_node(self.server.node_id)
        if self._concurrent_resume is not None:
            self._concurrent_resume(self.server.node_id)

    # -- reporting ----------------------------------------------------------------------

    def level_summary(self) -> dict[str, int]:
        """Events per architectural level (the Fig.1 regeneration)."""
        return {level.value: count for level, count
                in self.trace.count_by_level().items()}
