"""Design activities (DAs) and their description vectors (Sect.4.1).

"A design activity (DA) is the operational unit realizing a design
task.  It can be best characterized by the following description vector
consisting of four parameters: <DOT(DOV0), SPEC, designer, DC>."

The DA object is deliberately passive: every cooperation operation goes
through the cooperation manager, which enforces the Fig.7 state machine
and the relationship semantics.  The DA carries its description vector,
its state machine, its quality bookkeeping (evaluated/final DOVs) and
its per-DA views used by the DM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.features import DesignSpecification, QualityState
from repro.core.states import DaState, DaStateMachine
from repro.dc.script import Script
from repro.repository.schema import DesignObjectType


@dataclass
class DescriptionVector:
    """The four-parameter characterisation of a DA.

    ``dot`` + optional ``initial_dov`` form the DOT(DOV0) parameter;
    ``spec`` is the design specification (goal); ``designer`` the
    responsible person; ``script`` the DC parameter (the design
    strategy to apply).
    """

    dot: DesignObjectType
    spec: DesignSpecification
    designer: str
    script: Script
    initial_dov: str | None = None


@dataclass
class DesignActivity:
    """One design (sub-)task in the DA hierarchy."""

    da_id: str
    vector: DescriptionVector
    workstation: str
    parent: str | None = None
    created_at: float = 0.0
    machine: DaStateMachine = None  # type: ignore[assignment]
    children: list[str] = field(default_factory=list)
    #: quality states by DOV id (filled by Evaluate)
    quality: dict[str, QualityState] = field(default_factory=dict)
    #: DOVs that fulfilled the complete specification
    final_dovs: list[str] = field(default_factory=list)
    #: DOVs this DA pre-released via Propagate
    propagated: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.machine is None:
            self.machine = DaStateMachine(self.da_id)

    # -- convenience ---------------------------------------------------------

    @property
    def state(self) -> DaState:
        """Current lifecycle state."""
        return self.machine.state

    @property
    def spec(self) -> DesignSpecification:
        """Current design specification (may be modified/refined)."""
        return self.vector.spec

    @spec.setter
    def spec(self, new_spec: DesignSpecification) -> None:
        self.vector.spec = new_spec

    @property
    def dot(self) -> DesignObjectType:
        """The DA's design object type."""
        return self.vector.dot

    @property
    def designer(self) -> str:
        """The responsible designer."""
        return self.vector.designer

    @property
    def script(self) -> Script:
        """The DC parameter: the DA's work-flow template."""
        return self.vector.script

    @property
    def is_top_level(self) -> bool:
        """True for the DA created by Init_Design."""
        return self.parent is None

    def record_quality(self, dov_id: str, quality: QualityState) -> None:
        """Store an Evaluate result; final DOVs are remembered."""
        self.quality[dov_id] = quality
        if quality.is_final and dov_id not in self.final_dovs:
            self.final_dovs.append(dov_id)

    def has_final_dov(self) -> bool:
        """True when the DA has reached its goal at least once."""
        return bool(self.final_dovs)

    def revoke_finality(self, dov_id: str) -> None:
        """Drop finality after a spec change invalidated old evaluations."""
        self.final_dovs = [d for d in self.final_dovs if d != dov_id]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DesignActivity({self.da_id!r}, state={self.state.value},"
                f" dot={self.dot.name!r}, designer={self.designer!r})")
