"""Cooperation relationships: delegation, usage, negotiation (Sect.4.1).

"All relationships between DAs are explicitly modeled, thus capturing
design flow (cooperation relationship *delegation*), exchange of design
data (cooperation relationship *usage*), and negotiation of design
goals (cooperation relationship *negotiation*)."

The classes here are the CM's bookkeeping records; the protocol logic
(who may do what, when) lives in the cooperation manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.core.features import Feature
from repro.util.errors import NegotiationError


@dataclass(frozen=True)
class Delegation:
    """Super-DA delegated a subtask to a sub-DA (Create_Sub_DA)."""

    super_da: str
    sub_da: str
    created_at: float = 0.0


@dataclass
class Usage:
    """Controlled exchange of preliminary results between two DAs.

    "A requiring DA (operation Require) may ask another DA (called the
    supporting DA) for a DOV with a certain set of features satisfied.
    This feature set defines the quality needed."
    """

    requiring_da: str
    supporting_da: str
    #: feature names the delivered DOV must fulfil
    required_features: frozenset[str]
    created_at: float = 0.0
    #: DOVs delivered along this relationship, in order
    delivered: list[str] = field(default_factory=list)
    #: DOVs later withdrawn
    withdrawn: list[str] = field(default_factory=list)

    def key(self) -> tuple[str, str]:
        """Identity of the relationship (one per DA pair/direction)."""
        return (self.requiring_da, self.supporting_da)


class ProposalStatus(str, Enum):
    """Lifecycle of one negotiation proposal."""

    OPEN = "open"
    AGREED = "agreed"
    REJECTED = "rejected"
    ESCALATED = "escalated"


@dataclass
class Proposal:
    """One Propose in a negotiation: suggested spec refinements.

    ``changes`` maps the target DA to the feature replacing (or
    tightening) its namesake in that DA's specification — e.g. moving
    the shared A/B borderline assigns complementary area bounds to the
    two negotiating DAs.
    """

    proposal_id: str
    proposer: str
    changes: dict[str, list[Feature]]
    note: str = ""
    status: ProposalStatus = ProposalStatus.OPEN
    responded_by: str = ""


@dataclass
class Negotiation:
    """A negotiation relationship between two sibling sub-DAs.

    "We allow negotiation relationships between only the sub-DAs of the
    same super-DA, because these sub-DAs contribute to a common design
    goal set by their common super-DA."
    """

    negotiation_id: str
    da_a: str
    da_b: str
    subject: str = ""
    created_by: str = ""          # a sub-DA (dynamic) or the super-DA
    proposals: list[Proposal] = field(default_factory=list)
    escalations: int = 0
    closed: bool = False

    def involves(self, da_id: str) -> bool:
        """True when *da_id* is one of the negotiating parties."""
        return da_id in (self.da_a, self.da_b)

    def other(self, da_id: str) -> str:
        """The counterpart of *da_id* in this negotiation."""
        if da_id == self.da_a:
            return self.da_b
        if da_id == self.da_b:
            return self.da_a
        raise NegotiationError(
            f"DA {da_id!r} is not part of negotiation "
            f"{self.negotiation_id!r}")

    def open_proposal(self) -> Proposal | None:
        """The currently open proposal, if any (one at a time)."""
        for proposal in reversed(self.proposals):
            if proposal.status is ProposalStatus.OPEN:
                return proposal
        return None

    def rounds(self) -> int:
        """Number of proposals exchanged so far."""
        return len(self.proposals)


@dataclass
class Message:
    """An asynchronous notification delivered to a DA's inbox.

    Used for the events that "generally ask the receiving DA to react
    or reply": impossible specifications, conflicts, withdrawals,
    require requests, ready-to-commit notices.
    """

    kind: str
    sender: str
    recipient: str
    payload: dict[str, Any] = field(default_factory=dict)
    at: float = 0.0
