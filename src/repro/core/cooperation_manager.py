"""The cooperation manager (CM) — Sect.4.1 semantics, Sect.5.4 realisation.

"The CM embodies the mediator between cooperating DAs.  It enforces
that cooperation takes place only along established cooperation
relationships, and it further checks each cooperative activity to
comply with the integrity constraints of the underlying cooperation
relationship."  It is "a centralized component located at the server
site, thus exploiting the global DBMS as information repository."

Implemented responsibilities:

* the full operation set of Fig.7 (Init_Design ... Sub_DAs_
  Specification_Conflict) with state-machine enforcement;
* delegation semantics: DOT part-of checks, subgoal specification,
  ready-to-commit / terminate handshake, devolution of final DOVs;
* usage semantics: Require/Propagate with quality gating, delivery
  bookkeeping, invalidation with replacement, withdrawal with
  notification of affected DMs;
* negotiation semantics: sibling-only relationships, proposals,
  agree/disagree, escalation to the common super-DA;
* dissemination control via scope locks with inheritance (Sect.5.4's
  modified nested-transaction locking scheme);
* failure handling: all hierarchy-describing information is kept
  persistent on the server's stable storage and restored after a
  server crash; every cooperative operation is appended to a forced
  protocol log.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Protocol

from repro.core.activity import DescriptionVector, DesignActivity
from repro.core.features import DesignSpecification, QualityState
from repro.core.relationships import (
    Delegation,
    Message,
    Negotiation,
    Proposal,
    ProposalStatus,
    Usage,
)
from repro.core.states import DaOperation, DaState
from repro.dc.script import Script
from repro.net.network import Network
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import DesignObjectType
from repro.repository.wal import LogRecordKind, WriteAheadLog
from repro.te.locks import LockManager, LockMode
from repro.util.errors import (
    CooperationError,
    DelegationError,
    NegotiationError,
    RelationshipError,
    ScopeViolationError,
)
from repro.util.ids import IdGenerator
from repro.util.trace import EventTrace, Level


class DmHook(Protocol):
    """What the CM needs from a DA's design manager (external events)."""

    def on_specification_modified(self,
                                  restart_dov: str | None = None) -> None:
        """Spec reformulated by the super-DA: restart the work flow."""
        ...

    def on_withdrawal(self, dov_id: str) -> bool:
        """A pre-released DOV was withdrawn; returns True if affected."""
        ...


class CooperationManager:
    """Centralised mediator of the DA hierarchy (runs at the server)."""

    def __init__(self, repository: DesignDataRepository,
                 locks: LockManager, network: Network,
                 server_node: str = "server",
                 ids: IdGenerator | None = None,
                 trace: EventTrace | None = None) -> None:
        self.repository = repository
        self.locks = locks
        self.network = network
        self.server_node = server_node
        self.ids = ids or IdGenerator()
        self.trace = trace if trace is not None else EventTrace(enabled=False)
        self.clock = network.clock

        self._das: dict[str, DesignActivity] = {}
        self._delegations: list[Delegation] = []
        self._usages: dict[tuple[str, str], Usage] = {}
        self._negotiations: dict[str, Negotiation] = {}
        #: dov_id -> DA ids authorised to share a scope lock on it
        self._visibility: dict[str, set[str]] = {}
        self._inboxes: dict[str, list[Message]] = {}
        self._dm_hooks: dict[str, DmHook] = {}
        #: optional delivery interceptor; returning True consumes the
        #: message instead of queueing it (the auto-dispatch path)
        self.on_deliver: Callable[[str, Message], bool] | None = None

        #: forced protocol log — basis of T6's log-growth measurement
        self.log = WriteAheadLog("cm-protocol")

        # install CONCORD semantics into the substrate components
        self.locks.usage_allows = self._usage_allows
        node = self.network.node(server_node)
        node.on_crash.append(self._on_server_crash)

    # ======================================================================
    # infrastructure
    # ======================================================================

    def _usage_allows(self, requestor: str, holder: str,
                      dov_id: str) -> bool:
        """Scope-lock compatibility: granted along authorised sharing."""
        return requestor in self._visibility.get(dov_id, set())

    def _record(self, operation: str, subject: str, **detail: Any) -> None:
        self.trace.record(self.clock.now, Level.AC, "CM", operation,
                          subject, **detail)

    def _log_op(self, operation: DaOperation, actor: str,
                **payload: Any) -> None:
        self.log.append(LogRecordKind.COOP_OPERATION, {
            "op": operation.value, "actor": actor, **payload}, force=True)

    def _send(self, kind: str, sender: str, recipient: str,
              **payload: Any) -> Message:
        """Send a cooperation message to *recipient*'s workstation.

        Delivery goes through the network's queued asynchronous path:
        under a running kernel the message arrives after the modelled
        transport delay (and is parked across a crash of the
        recipient's workstation); otherwise it is handed over
        synchronously.  On arrival the message lands in the inbox
        unless an :attr:`on_deliver` hook consumes it — the system
        installs one to auto-dispatch messages to the DM rule engines
        during concurrent runs.
        """
        message = Message(kind, sender, recipient, payload, self.clock.now)
        da = self._das.get(recipient)
        destination = da.workstation if da is not None else self.server_node

        def deliver() -> None:
            hook = self.on_deliver
            if hook is not None and hook(recipient, message):
                return
            self._inboxes.setdefault(recipient, []).append(message)

        self.network.post(self.server_node, destination, deliver,
                          label=f"msg:{kind}:{sender}->{recipient}")
        return message

    def register_dm(self, da_id: str, hook: DmHook) -> None:
        """Attach a design manager to receive external-event callbacks."""
        self._dm_hooks[da_id] = hook

    def install_scope_check(self, server_tm: Any) -> None:
        """Make the server-TM use the CM's full scope semantics."""
        server_tm.scope_check = self.in_scope

    # -- lookups -------------------------------------------------------------

    def da(self, da_id: str) -> DesignActivity:
        """Look up a registered DA."""
        try:
            return self._das[da_id]
        except KeyError:
            raise CooperationError(f"unknown DA {da_id!r}") from None

    def das(self, state: DaState | None = None) -> list[DesignActivity]:
        """All DAs, optionally filtered by state."""
        if state is None:
            return list(self._das.values())
        return [d for d in self._das.values() if d.state is state]

    def children_of(self, da_id: str,
                    include_terminated: bool = False) -> list[DesignActivity]:
        """Direct sub-DAs of *da_id*."""
        subs = [self._das[c] for c in self.da(da_id).children]
        if include_terminated:
            return subs
        return [s for s in subs if s.state is not DaState.TERMINATED]

    def hierarchy_depth(self, da_id: str) -> int:
        """Depth of *da_id* in the DA hierarchy (top level = 0)."""
        depth = 0
        current = self.da(da_id)
        while current.parent is not None:
            depth += 1
            current = self.da(current.parent)
        return depth

    def common_super(self, da_a: str, da_b: str) -> str | None:
        """The shared parent when *da_a* and *da_b* are siblings."""
        parent_a = self.da(da_a).parent
        parent_b = self.da(da_b).parent
        if parent_a is not None and parent_a == parent_b:
            return parent_a
        return None

    # -- scope --------------------------------------------------------------------

    def scope_of(self, da_id: str) -> set[str]:
        """A DA's scope: own derivation graph + scope-locked DOVs.

        "a DA's scope has been defined to include the DOVs of its
        derivation graph, the final DOVs of its terminated sub-DAs, and
        the DOVs that became visible along its usage relationships"
        (Sect.5.4 footnote) — the latter two are held as scope locks.
        """
        self.da(da_id)
        scope = set(self.locks.scope_of(da_id))
        if self.repository.has_graph(da_id):
            scope |= self.repository.graph(da_id).ids()
        return scope

    def in_scope(self, da_id: str, dov_id: str) -> bool:
        """Scope membership test (installed as the server-TM check)."""
        if da_id not in self._das:
            return False
        return dov_id in self.scope_of(da_id)

    def _grant_visibility(self, da_id: str, dov_id: str) -> None:
        """Authorise and take a scope lock for *da_id* on *dov_id*."""
        self._visibility.setdefault(dov_id, set()).add(da_id)
        self.locks.acquire(dov_id, da_id, LockMode.SCOPE)

    def _revoke_visibility(self, da_id: str, dov_id: str) -> None:
        self._visibility.get(dov_id, set()).discard(da_id)
        self.locks.release(dov_id, da_id, LockMode.SCOPE)

    # ======================================================================
    # hierarchy operations (delegation)
    # ======================================================================

    def init_design(self, dot: DesignObjectType,
                    spec: DesignSpecification, designer: str,
                    script: Script, workstation: str,
                    initial_data: dict[str, Any] | None = None
                    ) -> DesignActivity:
        """Init_Design: create the top-level DA (Fig.4a).

        ``initial_data``, when given, is checked in as DOV0 — "It is
        possible to initialize the scope of a newly created DA with a
        first DOV (DOV0) serving as a basis for the DA's work."
        """
        if dot.name not in {d.name for d in self.repository.dots()}:
            self.repository.register_dot(dot)
        da_id = self.ids.next("da")
        vector = DescriptionVector(dot, spec, designer, script)
        da = DesignActivity(da_id, vector, workstation,
                            created_at=self.clock.now)
        self._das[da_id] = da
        self.repository.create_graph(da_id)
        if initial_data is not None:
            dov0 = self.repository.checkin(da_id, dot.name, initial_data,
                                           created_at=self.clock.now)
            vector.initial_dov = dov0.dov_id
        self._log_op(DaOperation.INIT_DESIGN, da_id, dot=dot.name,
                     designer=designer)
        self._record("Init_Design", da_id, designer=designer)
        self._persist()
        return da

    def create_sub_da(self, super_id: str, dot: DesignObjectType,
                      spec: DesignSpecification, designer: str,
                      script: Script, workstation: str,
                      initial_dov: str | None = None) -> DesignActivity:
        """Create_Sub_DA: delegate a subtask (Sect.4.1, Fig.4b).

        Checks: the super-DA must be able to delegate (state machine),
        the sub-DA's DOT must be a *part* of the super-DA's DOT, and an
        initial DOV must come from the super-DA's scope.
        """
        super_da = self.da(super_id)
        super_da.machine.apply(DaOperation.CREATE_SUB_DA)
        if not dot.is_part_of(super_da.dot):
            raise DelegationError(
                f"DOT {dot.name!r} is not a part of the super-DA's DOT "
                f"{super_da.dot.name!r}")
        if initial_dov is not None and not self.in_scope(super_id,
                                                         initial_dov):
            raise ScopeViolationError(
                f"initial DOV {initial_dov!r} is not in the scope of "
                f"super-DA {super_id!r}")
        if dot.name not in {d.name for d in self.repository.dots()}:
            self.repository.register_dot(dot)
        da_id = self.ids.next("da")
        vector = DescriptionVector(dot, spec, designer, script,
                                   initial_dov=initial_dov)
        sub = DesignActivity(da_id, vector, workstation, parent=super_id,
                             created_at=self.clock.now)
        self._das[da_id] = sub
        super_da.children.append(da_id)
        self._delegations.append(
            Delegation(super_id, da_id, self.clock.now))
        self.repository.create_graph(da_id)
        if initial_dov is not None:
            self._grant_visibility(da_id, initial_dov)
        self._log_op(DaOperation.CREATE_SUB_DA, super_id, sub=da_id,
                     dot=dot.name, designer=designer)
        self._record("Create_Sub_DA", da_id, super_da=super_id)
        self._persist()
        return sub

    def start(self, da_id: str) -> None:
        """Start: the DA begins its design work (GENERATED -> ACTIVE)."""
        da = self.da(da_id)
        da.machine.apply(DaOperation.START)
        self._log_op(DaOperation.START, da_id)
        self._record("Start", da_id)
        self._persist()

    def evaluate(self, da_id: str, dov_id: str) -> QualityState:
        """Evaluate: determine the quality state of a DOV in scope."""
        da = self.da(da_id)
        da.machine.apply(DaOperation.EVALUATE)
        if not self.in_scope(da_id, dov_id):
            raise ScopeViolationError(
                f"DA {da_id!r} cannot evaluate DOV {dov_id!r}: not in "
                f"scope")
        dov = self.repository.read(dov_id)
        quality = da.spec.evaluate(dov.data)
        da.record_quality(dov_id, quality)
        self._log_op(DaOperation.EVALUATE, da_id, dov=dov_id,
                     fulfilled=sorted(quality.fulfilled),
                     final=quality.is_final)
        self._record("Evaluate", dov_id, da=da_id,
                     distance=quality.distance)
        self._persist()
        return quality

    def sub_da_ready_to_commit(self, sub_id: str) -> None:
        """Sub_DA_Ready_To_Commit: the sub-DA reached one+ final DOVs.

        "As soon as a sub-DA completes its work by reaching one or more
        final DOVs, it has to send a message to its super-DA. ... The
        sub-DA must not terminate without the agreement of the
        super-DA."  From this state on the super-DA may already read
        the final DOVs (Sect.5.4).
        """
        sub = self.da(sub_id)
        if sub.parent is None:
            raise CooperationError(
                f"top-level DA {sub_id!r} has no super-DA to notify")
        if not sub.has_final_dov():
            raise CooperationError(
                f"DA {sub_id!r} has no final DOV; Evaluate must confirm "
                f"the specification first")
        sub.machine.apply(DaOperation.SUB_DA_READY_TO_COMMIT)
        for dov_id in sub.final_dovs:
            # the sub holds scope locks on its finals (they are in its
            # graph); authorise the super to share them already now
            self._visibility.setdefault(dov_id, set()).add(sub_id)
            self.locks.try_acquire(dov_id, sub_id, LockMode.SCOPE)
            self._grant_visibility(sub.parent, dov_id)
        self._send("ready_to_commit", sub_id, sub.parent,
                   final_dovs=list(sub.final_dovs))
        self._log_op(DaOperation.SUB_DA_READY_TO_COMMIT, sub_id,
                     final_dovs=list(sub.final_dovs))
        self._record("Sub_DA_Ready_To_Commit", sub_id)
        self._persist()

    def sub_da_impossible_specification(self, sub_id: str,
                                        reason: str = "") -> None:
        """Sub_DA_Impossible_Specification: goal cannot be reached.

        "informs a super-DA that a sub-DA will not be able to fulfill
        the requirements of its specification and therefore asks for a
        reaction of its super-DA."
        """
        sub = self.da(sub_id)
        if sub.parent is None:
            raise CooperationError(
                f"top-level DA {sub_id!r} has no super-DA to notify")
        sub.machine.apply(DaOperation.SUB_DA_IMPOSSIBLE_SPEC)
        self._send("impossible_specification", sub_id, sub.parent,
                   reason=reason)
        self._log_op(DaOperation.SUB_DA_IMPOSSIBLE_SPEC, sub_id,
                     reason=reason)
        self._record("Sub_DA_Impossible_Specification", sub_id,
                     reason=reason)
        self._persist()

    def modify_sub_da_specification(self, super_id: str, sub_id: str,
                                    new_spec: DesignSpecification,
                                    restart_dov: str | None = None) -> None:
        """Modify_Sub_DA_Specification: the super-DA reformulates a goal.

        "reformulations of design goals are typical in design
        applications."  The sub-DA keeps its derivation graph and may
        restart from any previously derived DOV; evaluations are redone
        under the new specification and propagations whose features are
        no longer part of the new spec are withdrawn (Sect.5.4).
        """
        sub = self.da(sub_id)
        if sub.parent != super_id:
            raise DelegationError(
                f"{super_id!r} is not the super-DA of {sub_id!r}")
        sub.machine.apply(DaOperation.MODIFY_SUB_DA_SPEC)
        sub.spec = new_spec

        # re-evaluate everything previously evaluated under the old spec
        sub.final_dovs = []
        for dov_id in list(sub.quality):
            dov = self.repository.read(dov_id)
            sub.quality[dov_id] = new_spec.evaluate(dov.data)
            if sub.quality[dov_id].is_final:
                sub.final_dovs.append(dov_id)

        # withdrawal of propagations that lost their required features
        for dov_id in list(sub.propagated):
            quality = sub.quality.get(dov_id)
            if quality is None:
                dov = self.repository.read(dov_id)
                quality = new_spec.evaluate(dov.data)
                sub.quality[dov_id] = quality
            for usage in self._usages_supporting(sub_id):
                if dov_id in usage.delivered \
                        and not quality.covers(usage.required_features):
                    self._withdraw_delivery(usage, dov_id)

        self._send("specification_modified", super_id, sub_id,
                   restart_dov=restart_dov)
        hook = self._dm_hooks.get(sub_id)
        if hook is not None:
            hook.on_specification_modified(restart_dov)
        self._log_op(DaOperation.MODIFY_SUB_DA_SPEC, super_id, sub=sub_id)
        self._record("Modify_Sub_DA_Specification", sub_id,
                     super_da=super_id)
        self._persist()

    def terminate_sub_da(self, super_id: str, sub_id: str) -> list[str]:
        """Terminate_Sub_DA: commit/cancel a sub-DA.

        On commit "the final DOVs devolve to the scope of the
        super-DA" — realised as scope-lock inheritance (only locks on
        *final* DOVs are inherited, Sect.5.4).  Pre-released DOVs that
        will not be ancestors of an inherited final DOV are withdrawn.
        Returns the inherited DOV ids.
        """
        sub = self.da(sub_id)
        if sub.parent != super_id:
            raise DelegationError(
                f"{super_id!r} is not the super-DA of {sub_id!r}")
        sub.machine.apply(DaOperation.TERMINATE_SUB_DA)

        final = set(sub.final_dovs)
        # ensure the sub holds scope locks on its finals for inheritance
        for dov_id in final:
            self._visibility.setdefault(dov_id, set()).update(
                {sub_id, super_id})
            self.locks.try_acquire(dov_id, sub_id, LockMode.SCOPE)
        inherited = self.locks.inherit_scope_locks(sub_id, super_id, final)
        for dov_id in inherited:
            self._visibility.setdefault(dov_id, set()).add(super_id)

        # withdrawal: propagated DOVs that are not ancestors of a final
        graph = self.repository.graph(sub_id)
        for dov_id in list(sub.propagated):
            is_kept = any(
                dov_id == f or (f in graph and dov_id in graph
                                and graph.is_ancestor(dov_id, f))
                for f in final)
            if not is_kept:
                for usage in self._usages_supporting(sub_id):
                    if dov_id in usage.delivered:
                        self._withdraw_delivery(usage, dov_id)

        # close any negotiations the sub was part of
        for negotiation in self._negotiations.values():
            if negotiation.involves(sub_id):
                negotiation.closed = True

        self._log_op(DaOperation.TERMINATE_SUB_DA, super_id, sub=sub_id,
                     inherited=sorted(inherited))
        self._record("Terminate_Sub_DA", sub_id, super_da=super_id,
                     inherited=len(inherited))
        self._persist()
        return sorted(inherited)

    def finish_top_level(self, da_id: str) -> None:
        """Close the whole design: "After finishing the top-level DA all
        locks are released."  All sub-DAs must be terminated."""
        da = self.da(da_id)
        if da.parent is not None:
            raise CooperationError(f"DA {da_id!r} is not top-level")
        alive = [c.da_id for c in self.children_of(da_id)]
        if alive:
            raise CooperationError(
                f"cannot finish {da_id!r}: sub-DAs still alive: {alive}")
        da.machine.state = DaState.TERMINATED
        self.locks.release_all(da_id)
        self._record("Finish_Top_Level", da_id)
        self._persist()

    # ======================================================================
    # usage relationships (Require / Propagate / invalidation / withdrawal)
    # ======================================================================

    def _usages_supporting(self, supporting_id: str) -> list[Usage]:
        return [u for u in self._usages.values()
                if u.supporting_da == supporting_id]

    def usage(self, requiring_id: str, supporting_id: str) -> Usage:
        """Look up an established usage relationship."""
        try:
            return self._usages[(requiring_id, supporting_id)]
        except KeyError:
            raise RelationshipError(
                f"no usage relationship {requiring_id!r} -> "
                f"{supporting_id!r}") from None

    def usages(self) -> list[Usage]:
        """All established usage relationships."""
        return list(self._usages.values())

    def require(self, requiring_id: str, supporting_id: str,
                features: set[str]) -> str | None:
        """Require: ask a supporting DA for a DOV with given features.

        Establishes (or reuses) the usage relationship.  When an
        already-propagated DOV qualifies, it is delivered immediately
        and its id returned; otherwise the supporting DA is notified
        and None is returned.
        """
        requiring = self.da(requiring_id)
        supporting = self.da(supporting_id)
        if requiring_id == supporting_id:
            raise RelationshipError("a DA cannot require from itself")
        if requiring.state is not DaState.ACTIVE:
            raise CooperationError(
                f"requiring DA {requiring_id!r} must be active, is "
                f"{requiring.state.value!r}")
        # precondition: the requiring DA knows the supporting DA's spec;
        # the requested quality must be expressed in its features
        unknown = set(features) - set(supporting.spec.names())
        if unknown:
            raise RelationshipError(
                f"required features {sorted(unknown)} are not part of "
                f"the specification of {supporting_id!r}")
        supporting.machine.apply(DaOperation.REQUIRE)

        key = (requiring_id, supporting_id)
        usage = self._usages.get(key)
        if usage is None:
            usage = Usage(requiring_id, supporting_id,
                          frozenset(features), self.clock.now)
            self._usages[key] = usage
        else:
            usage.required_features = frozenset(features)
        self._log_op(DaOperation.REQUIRE, requiring_id,
                     supporting=supporting_id, features=sorted(features))
        self._record("Require", supporting_id, requiring=requiring_id)

        delivered = self._try_deliver(usage)
        if delivered is None:
            self._send("require", requiring_id, supporting_id,
                       features=sorted(features))
        self._persist()
        return delivered

    def _try_deliver(self, usage: Usage) -> str | None:
        """Deliver the best already-propagated qualifying DOV, if any."""
        supporting = self.da(usage.supporting_da)
        for dov_id in supporting.propagated:
            if dov_id in usage.delivered or dov_id in usage.withdrawn:
                continue
            quality = supporting.quality.get(dov_id)
            if quality is not None \
                    and quality.covers(usage.required_features):
                self._deliver(usage, dov_id)
                return dov_id
        return None

    def _deliver(self, usage: Usage, dov_id: str) -> None:
        self._grant_visibility(usage.requiring_da, dov_id)
        usage.delivered.append(dov_id)
        self._send("dov_delivered", usage.supporting_da,
                   usage.requiring_da, dov=dov_id)
        self._record("Deliver", dov_id, to=usage.requiring_da)

    def propagate(self, da_id: str, dov_id: str) -> list[str]:
        """Propagate: pre-release a DOV along usage relationships.

        "A DOV becomes only visible along usage relationships, if it
        was propagated by its DA. ... The Propagate operation gives a
        DA control over which of its DOVs are pre-released."  Returns
        the requiring DAs the DOV was delivered to.
        """
        da = self.da(da_id)
        da.machine.apply(DaOperation.PROPAGATE)
        if not self.repository.has_graph(da_id) \
                or dov_id not in self.repository.graph(da_id):
            raise ScopeViolationError(
                f"DA {da_id!r} may only propagate DOVs of its own "
                f"derivation graph, not {dov_id!r}")
        # propagated DOVs carry a quality state determined by Evaluate
        if dov_id not in da.quality:
            dov = self.repository.read(dov_id)
            da.record_quality(dov_id, da.spec.evaluate(dov.data))
        if dov_id not in da.propagated:
            da.propagated.append(dov_id)

        receivers = []
        for usage in self._usages_supporting(da_id):
            if dov_id in usage.delivered or dov_id in usage.withdrawn:
                continue
            if da.quality[dov_id].covers(usage.required_features):
                self._deliver(usage, dov_id)
                receivers.append(usage.requiring_da)
        self._log_op(DaOperation.PROPAGATE, da_id, dov=dov_id,
                     receivers=receivers)
        self._record("Propagate", dov_id, da=da_id,
                     receivers=len(receivers))
        self._persist()
        return receivers

    def invalidate_propagation(self, supporting_id: str,
                               dov_id: str) -> dict[str, str | None]:
        """Invalidation with replacement (Sect.5.4).

        "another DOV from the scope of that DA which fulfills all the
        required (and possibly more) features of the previously
        propagated DOV will be propagated by the CM to the requiring DA
        for replacement" — when no replacement exists, the delivery is
        withdrawn instead.  Returns {requiring_da: replacement or None}.
        """
        supporting = self.da(supporting_id)
        result: dict[str, str | None] = {}
        for usage in self._usages_supporting(supporting_id):
            if dov_id not in usage.delivered:
                continue
            replacement = self._find_replacement(supporting, usage, dov_id)
            if replacement is not None:
                usage.delivered.remove(dov_id)
                self._revoke_visibility(usage.requiring_da, dov_id)
                self._deliver(usage, replacement)
                result[usage.requiring_da] = replacement
            else:
                self._withdraw_delivery(usage, dov_id)
                result[usage.requiring_da] = None
        self._record("Invalidate", dov_id, da=supporting_id,
                     replacements=sum(1 for v in result.values() if v))
        self._persist()
        return result

    def _find_replacement(self, supporting: DesignActivity, usage: Usage,
                          invalid_dov: str) -> str | None:
        candidates = [d for d in supporting.propagated
                      if d != invalid_dov and d not in usage.withdrawn
                      and d not in usage.delivered]
        # also consider any evaluated DOV of the supporting scope
        candidates += [d for d in supporting.quality
                       if d not in candidates and d != invalid_dov
                       and d not in usage.withdrawn
                       and d not in usage.delivered]
        for dov_id in candidates:
            quality = supporting.quality.get(dov_id)
            if quality is not None \
                    and quality.covers(usage.required_features):
                if dov_id not in supporting.propagated:
                    supporting.propagated.append(dov_id)
                return dov_id
        return None

    def withdraw(self, supporting_id: str, dov_id: str,
                 cascade: bool = True) -> list[str]:
        """Withdraw a pre-released DOV from every requiring DA.

        "This causes the CM to send a notification to all the
        (requiring) DAs that have seen that DOV."  With *cascade*
        (default), the withdrawal propagates transitively: versions a
        requiring DA derived *from* the withdrawn DOV and pre-released
        onward are invalidated as well — "the CONCORD system has to
        react properly in order to guarantee a minimum of consistency"
        (Sect.5.4).  Returns the DAs that reported being affected.
        """
        affected = []
        for usage in self._usages_supporting(supporting_id):
            if dov_id in usage.delivered:
                requiring = usage.requiring_da
                if self._withdraw_delivery(usage, dov_id):
                    affected.append(requiring)
                if cascade:
                    affected.extend(
                        self._cascade_withdrawal(requiring, dov_id))
        self._persist()
        return affected

    def _cascade_withdrawal(self, da_id: str,
                            withdrawn: str) -> list[str]:
        """Invalidate the DA's own propagations derived from *withdrawn*."""
        affected: list[str] = []
        da = self.da(da_id)
        for derived in list(da.propagated):
            if self._derived_from(da_id, derived, withdrawn):
                result = self.invalidate_propagation(da_id, derived)
                affected.extend(requiring
                                for requiring, replacement
                                in result.items()
                                if replacement is None)
        return affected

    def _derived_from(self, da_id: str, dov_id: str,
                      ancestor: str) -> bool:
        """Reachability over parents, including cross-graph links."""
        if not self.repository.has_graph(da_id) \
                or dov_id not in self.repository.graph(da_id):
            return False
        seen: set[str] = set()
        stack = [dov_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if current == ancestor:
                return True
            if current in self.repository:
                stack.extend(self.repository.read(current).parents)
        return False

    def _withdraw_delivery(self, usage: Usage, dov_id: str) -> bool:
        usage.delivered.remove(dov_id)
        usage.withdrawn.append(dov_id)
        self._revoke_visibility(usage.requiring_da, dov_id)
        self._send("withdrawal", usage.supporting_da, usage.requiring_da,
                   dov=dov_id)
        self._record("Withdraw", dov_id, frm=usage.supporting_da,
                     to=usage.requiring_da)
        hook = self._dm_hooks.get(usage.requiring_da)
        if hook is not None:
            return bool(hook.on_withdrawal(dov_id))
        return False

    # ======================================================================
    # negotiation
    # ======================================================================

    def negotiation(self, negotiation_id: str) -> Negotiation:
        """Look up a negotiation relationship."""
        try:
            return self._negotiations[negotiation_id]
        except KeyError:
            raise NegotiationError(
                f"unknown negotiation {negotiation_id!r}") from None

    def negotiations_of(self, da_id: str) -> list[Negotiation]:
        """Open negotiations involving *da_id*."""
        return [n for n in self._negotiations.values()
                if n.involves(da_id) and not n.closed]

    def _require_siblings(self, da_a: str, da_b: str) -> str:
        super_id = self.common_super(da_a, da_b)
        if super_id is None:
            raise NegotiationError(
                f"negotiation allowed only between sub-DAs of the same "
                f"super-DA; {da_a!r} and {da_b!r} are not siblings")
        return super_id

    def create_negotiation_relationship(self, creator_id: str, da_a: str,
                                        da_b: str,
                                        subject: str = "") -> Negotiation:
        """Create_Negotiation_Relationship: set explicitly by the super.

        "Negotiation relationships can be ... explicitly set by their
        super-DA."
        """
        super_id = self._require_siblings(da_a, da_b)
        if creator_id != super_id:
            raise NegotiationError(
                f"only the common super-DA {super_id!r} may set a "
                f"negotiation relationship explicitly")
        for da_id in (da_a, da_b):
            self.da(da_id).machine.apply(
                DaOperation.CREATE_NEGOTIATION_REL)
        negotiation = Negotiation(self.ids.next("neg"), da_a, da_b,
                                  subject, created_by=creator_id)
        self._negotiations[negotiation.negotiation_id] = negotiation
        self._log_op(DaOperation.CREATE_NEGOTIATION_REL, creator_id,
                     da_a=da_a, da_b=da_b, subject=subject)
        self._record("Create_Negotiation_Relationship",
                     negotiation.negotiation_id, da_a=da_a, da_b=da_b)
        self._persist()
        return negotiation

    def _find_or_create_negotiation(self, proposer: str,
                                    other: str) -> Negotiation:
        for negotiation in self._negotiations.values():
            if not negotiation.closed and negotiation.involves(proposer) \
                    and negotiation.involves(other):
                return negotiation
        # dynamic establishment via Propose
        self._require_siblings(proposer, other)
        negotiation = Negotiation(self.ids.next("neg"), proposer, other,
                                  created_by=proposer)
        self._negotiations[negotiation.negotiation_id] = negotiation
        return negotiation

    def propose(self, proposer_id: str, other_id: str,
                changes: dict[str, list[Any]],
                note: str = "") -> Proposal:
        """Propose: suggest specification refinements to a sibling.

        Both parties move to the *negotiating* state; "as soon as a DA
        changes to the state negotiating, its internal processing is
        suspended."  ``changes`` maps DA ids to replacement features.
        """
        negotiation = self._find_or_create_negotiation(proposer_id,
                                                       other_id)
        if negotiation.open_proposal() is not None:
            raise NegotiationError(
                f"negotiation {negotiation.negotiation_id!r} already has "
                f"an open proposal")
        for da_id in (proposer_id, other_id):
            # ACTIVE -> NEGOTIATING, or NEGOTIATING stays (counter-proposal)
            self.da(da_id).machine.apply(DaOperation.PROPOSE)
        proposal = Proposal(self.ids.next("prop"), proposer_id,
                            changes, note)
        negotiation.proposals.append(proposal)
        self._send("proposal", proposer_id, other_id,
                   proposal=proposal.proposal_id, note=note)
        self._log_op(DaOperation.PROPOSE, proposer_id, other=other_id,
                     proposal=proposal.proposal_id)
        self._record("Propose", proposal.proposal_id, frm=proposer_id,
                     to=other_id)
        self._persist()
        return proposal

    def agree(self, da_id: str, proposal_id: str) -> None:
        """Agree: accept the open proposal; both DAs resume work.

        The agreed feature changes are applied to each target DA's
        specification, previous evaluations are redone, and
        propagations that lost their features are withdrawn.
        """
        negotiation, proposal = self._open_proposal(da_id, proposal_id)
        if proposal.proposer == da_id:
            raise NegotiationError(
                f"proposer {da_id!r} cannot agree to its own proposal")
        proposal.status = ProposalStatus.AGREED
        proposal.responded_by = da_id
        for target_id, features in proposal.changes.items():
            target = self.da(target_id)
            new_spec = target.spec
            for feature in features:
                new_spec = new_spec.replaced(feature)
            self._apply_spec_change(target, new_spec)
        for party in (negotiation.da_a, negotiation.da_b):
            self.da(party).machine.apply(DaOperation.AGREE)
        self._log_op(DaOperation.AGREE, da_id, proposal=proposal_id)
        self._record("Agree", proposal_id, da=da_id)
        self._persist()

    def disagree(self, da_id: str, proposal_id: str) -> None:
        """Disagree: reject the open proposal (negotiation continues)."""
        __, proposal = self._open_proposal(da_id, proposal_id)
        if proposal.proposer == da_id:
            raise NegotiationError(
                f"proposer {da_id!r} cannot disagree with its own "
                f"proposal")
        proposal.status = ProposalStatus.REJECTED
        proposal.responded_by = da_id
        self.da(da_id).machine.apply(DaOperation.DISAGREE)
        self._send("disagree", da_id, proposal.proposer,
                   proposal=proposal_id)
        self._log_op(DaOperation.DISAGREE, da_id, proposal=proposal_id)
        self._record("Disagree", proposal_id, da=da_id)
        self._persist()

    def sub_das_specification_conflict(self, da_id: str,
                                       negotiation_id: str) -> str:
        """Sub_DAs_Specification_Conflict: escalate to the super-DA.

        "If two negotiating sub-DAs are not able to reach an agreement,
        the super-DA has to be informed, which then has to resolve this
        conflict."  Both parties return to *active*; returns the
        super-DA id.
        """
        negotiation = self.negotiation(negotiation_id)
        if not negotiation.involves(da_id):
            raise NegotiationError(
                f"DA {da_id!r} is not part of negotiation "
                f"{negotiation_id!r}")
        super_id = self._require_siblings(negotiation.da_a,
                                          negotiation.da_b)
        open_proposal = negotiation.open_proposal()
        if open_proposal is not None:
            open_proposal.status = ProposalStatus.ESCALATED
        negotiation.escalations += 1
        for party in (negotiation.da_a, negotiation.da_b):
            party_da = self.da(party)
            if party_da.state is DaState.NEGOTIATING:
                party_da.machine.apply(DaOperation.SUB_DA_SPEC_CONFLICT)
        self._send("specification_conflict", da_id, super_id,
                   negotiation=negotiation_id)
        self._log_op(DaOperation.SUB_DA_SPEC_CONFLICT, da_id,
                     negotiation=negotiation_id, super_da=super_id)
        self._record("Sub_DAs_Specification_Conflict", negotiation_id,
                     super_da=super_id)
        self._persist()
        return super_id

    def _open_proposal(self, da_id: str,
                       proposal_id: str) -> tuple[Negotiation, Proposal]:
        for negotiation in self.negotiations_of(da_id):
            for proposal in negotiation.proposals:
                if proposal.proposal_id == proposal_id:
                    if proposal.status is not ProposalStatus.OPEN:
                        raise NegotiationError(
                            f"proposal {proposal_id!r} is "
                            f"{proposal.status.value}, not open")
                    return negotiation, proposal
        raise NegotiationError(
            f"no open proposal {proposal_id!r} involving {da_id!r}")

    def _apply_spec_change(self, da: DesignActivity,
                           new_spec: DesignSpecification) -> None:
        """Spec change without restart (negotiated modification)."""
        da.spec = new_spec
        da.final_dovs = []
        for dov_id in list(da.quality):
            dov = self.repository.read(dov_id)
            da.quality[dov_id] = new_spec.evaluate(dov.data)
            if da.quality[dov_id].is_final:
                da.final_dovs.append(dov_id)
        for dov_id in list(da.propagated):
            quality = da.quality.get(dov_id)
            if quality is None:
                continue
            for usage in self._usages_supporting(da.da_id):
                if dov_id in usage.delivered \
                        and not quality.covers(usage.required_features):
                    self._withdraw_delivery(usage, dov_id)

    # ======================================================================
    # inboxes
    # ======================================================================

    def inbox(self, da_id: str) -> list[Message]:
        """Pending messages of a DA (not consumed)."""
        return list(self._inboxes.get(da_id, []))

    def pop_messages(self, da_id: str,
                     kind: str | None = None) -> list[Message]:
        """Consume (and return) a DA's pending messages."""
        pending = self._inboxes.get(da_id, [])
        if kind is None:
            self._inboxes[da_id] = []
            return pending
        taken = [m for m in pending if m.kind == kind]
        self._inboxes[da_id] = [m for m in pending if m.kind != kind]
        return taken

    # ======================================================================
    # failure handling (server crash)
    # ======================================================================

    _STATE_KEY = "cm-state"

    def _persist(self) -> None:
        """Write the hierarchy-describing information to stable storage.

        "To react to a server crash, the CM only needs to hold
        persistent the DA-hierarchy-describing information ... it can
        employ the data management facilities of the server DBMS"
        (Sect.5.4).
        """
        node = self.network.node(self.server_node)
        node.stable.put(self._STATE_KEY, {
            "das": self._das,
            "delegations": self._delegations,
            "usages": self._usages,
            "negotiations": self._negotiations,
            "visibility": self._visibility,
            "inboxes": self._inboxes,
        })

    def _on_server_crash(self) -> None:
        """Volatile registries vanish with the server process."""
        self._das = {}
        self._delegations = []
        self._usages = {}
        self._negotiations = {}
        self._visibility = {}
        self._inboxes = {}

    def recover(self) -> dict[str, int]:
        """Server restart: reload persistent state, rebuild scope locks."""
        node = self.network.node(self.server_node)
        state = node.stable.get(self._STATE_KEY)
        if state is None:
            return {"das": 0, "scope_locks": 0}
        self._das = state["das"]
        self._delegations = state["delegations"]
        self._usages = state["usages"]
        self._negotiations = state["negotiations"]
        self._visibility = state["visibility"]
        self._inboxes = state["inboxes"]
        # rebuild scope locks (the lock table is server-volatile)
        self.locks.usage_allows = self._usage_allows
        rebuilt = 0
        for dov_id, holders in self._visibility.items():
            for da_id in holders:
                if self.locks.try_acquire(dov_id, da_id,
                                          LockMode.SCOPE) is not None:
                    rebuilt += 1
        self._record("CM_recovered", self.server_node,
                     das=len(self._das), scope_locks=rebuilt)
        return {"das": len(self._das), "scope_locks": rebuilt}

    # ======================================================================
    # reporting
    # ======================================================================

    def hierarchy_snapshot(self) -> dict[str, Any]:
        """Nested dict of the current DA hierarchy (for F4/F5 output)."""

        def subtree(da: DesignActivity) -> dict[str, Any]:
            return {
                "da": da.da_id,
                "dot": da.dot.name,
                "state": da.state.value,
                "designer": da.designer,
                "final_dovs": list(da.final_dovs),
                "children": [subtree(self._das[c]) for c in da.children],
            }

        roots = [d for d in self._das.values() if d.parent is None]
        return {"roots": [subtree(r) for r in roots]}

    def stats(self) -> dict[str, int]:
        """Counters for experiment T6."""
        return {
            "das": len(self._das),
            "delegations": len(self._delegations),
            "usages": len(self._usages),
            "negotiations": len(self._negotiations),
            "protocol_log_records": len(self.log),
            "messages_pending": sum(len(v) for v in self._inboxes.values()),
        }
