"""Transactional RPC.

The paper assumes "reliable communication protocols (transactional RPC
...) which insulate the cooperation protocols from network failures and
workstation crashes" (Sect.5.4).  :class:`TransactionalRpc` provides
that abstraction over the simulated LAN:

* **at-most-once execution** — every call carries a unique call id; the
  callee keeps a durable reply cache, so a retried call returns the
  cached reply instead of re-executing;
* **durable handler dispatch** — handlers are registered per node under
  stable names, so a restarted node serves the same interface;
* **failure surface** — when either end is down the caller sees an
  :class:`RpcError` and may retry after the node restarts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.net.network import Network
from repro.util.errors import NodeDownError, RpcError


@dataclass(frozen=True)
class RpcResult:
    """Outcome of one RPC: the handler's return value + transport cost."""

    value: Any
    latency: float
    cached: bool = False


class TransactionalRpc:
    """At-most-once request/response calls between LAN nodes."""

    def __init__(self, network: Network) -> None:
        self.network = network
        #: node_id -> handler name -> callable
        self._handlers: dict[str, dict[str, Callable[..., Any]]] = {}
        self._next_call_id = 0
        self.calls_made = 0
        self.replies_cached = 0

    # -- registration -------------------------------------------------------

    def register(self, node_id: str, name: str,
                 handler: Callable[..., Any]) -> None:
        """Expose *handler* as RPC endpoint *name* on *node_id*."""
        self.network.node(node_id)  # validates the node exists
        self._handlers.setdefault(node_id, {})[name] = handler

    def unregister_node(self, node_id: str) -> None:
        """Drop all endpoints of a node (used by tests)."""
        self._handlers.pop(node_id, None)

    # -- calling --------------------------------------------------------------

    def call(self, src: str, dst: str, name: str, *args: Any,
             call_id: str | None = None, **kwargs: Any) -> RpcResult:
        """Invoke endpoint *name* on *dst* from *src*.

        A repeated *call_id* returns the durably cached reply without
        re-executing the handler (at-most-once).  Application-level
        exceptions raised by the handler propagate to the caller —
        they are *results*, not transport failures.
        """
        if call_id is None:
            self._next_call_id += 1
            call_id = f"rpc-{self._next_call_id}"
        dst_node = self.network.node(dst)

        # request message
        try:
            latency = self.network.send(src, dst)
        except NodeDownError as exc:
            raise RpcError(f"call {name!r} to {dst!r} failed: {exc}") from exc

        cache_key = f"rpc-reply:{call_id}"
        cached = dst_node.stable.get(cache_key)
        if cached is not None:
            self.replies_cached += 1
            latency += self.network.send(dst, src)
            return RpcResult(cached["value"], latency, cached=True)

        handlers = self._handlers.get(dst, {})
        if name not in handlers:
            raise RpcError(f"node {dst!r} has no endpoint {name!r}")
        self.calls_made += 1
        value = handlers[name](*args, **kwargs)
        dst_node.stable.put(cache_key, {"value": value})

        # response message
        try:
            latency += self.network.send(dst, src)
        except NodeDownError as exc:
            # the handler ran; the caller crashed before the reply — a
            # retry after restart will hit the reply cache.
            raise RpcError(
                f"reply of {name!r} lost: caller {src!r} down") from exc
        return RpcResult(value, latency)
