"""Simulated LAN substrate: nodes, transactional RPC, two-phase commit."""

from repro.net.network import Network, Node, NodeKind, StableStorage
from repro.net.rpc import RpcResult, TransactionalRpc
from repro.net.two_phase_commit import (
    CommitOutcome,
    CommitProtocol,
    Decision,
    TwoPhaseCoordinator,
    TwoPhaseParticipant,
    Vote,
)

__all__ = [
    "CommitOutcome",
    "CommitProtocol",
    "Decision",
    "Network",
    "Node",
    "NodeKind",
    "RpcResult",
    "StableStorage",
    "TransactionalRpc",
    "TwoPhaseCoordinator",
    "TwoPhaseParticipant",
    "Vote",
]
