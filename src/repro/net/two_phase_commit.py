"""Two-phase commit with the optimisations the paper points at.

Sect.5.2 requires that "client-TM and server-TM have to accomplish a
two-phase-commit protocol for all their critical interactions", and the
conclusion proposes using "the (X/OPEN) two-phase-commit protocol and
its optimization alternatives [SBCM93]" for LAN communications.  This
module implements:

* the **basic** (presumed-nothing) protocol,
* **presumed abort** — no forced abort record, no acknowledgements on
  abort,
* the **read-only optimisation** — participants that did not write vote
  ``READ_ONLY`` and drop out of phase 2 entirely.

Experiment T3 measures the message and forced-log-write counts of each
variant; the class therefore returns a detailed :class:`CommitOutcome`
per transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Protocol, Sequence

from repro.net.network import Network
from repro.util.errors import NodeDownError, TwoPhaseCommitError


class Vote(str, Enum):
    """A participant's phase-1 answer."""

    YES = "yes"
    NO = "no"
    READ_ONLY = "read_only"


class Decision(str, Enum):
    """The coordinator's phase-2 decision."""

    COMMIT = "commit"
    ABORT = "abort"


class CommitProtocol(str, Enum):
    """Which 2PC variant the coordinator runs."""

    BASIC = "basic"
    PRESUMED_ABORT = "presumed_abort"


class TwoPhaseParticipant(Protocol):
    """Interface a resource manager exposes to the coordinator."""

    @property
    def node_id(self) -> str:
        """LAN node the participant lives on."""
        ...

    def prepare(self, txn_id: str) -> Vote:
        """Phase 1: persist enough to commit later; return a vote."""
        ...

    def commit(self, txn_id: str) -> None:
        """Phase 2: make the transaction's effects durable."""
        ...

    def abort(self, txn_id: str) -> None:
        """Phase 2: undo the transaction's effects."""
        ...


@dataclass
class CommitOutcome:
    """Everything T3 needs to know about one protocol run."""

    txn_id: str
    decision: Decision
    protocol: CommitProtocol
    messages: int = 0
    forced_log_writes: int = 0
    latency: float = 0.0
    #: participants that used the read-only optimisation
    read_only_participants: list[str] = field(default_factory=list)
    #: participants that voted NO (empty on commit)
    no_voters: list[str] = field(default_factory=list)

    @property
    def committed(self) -> bool:
        """True when the decision was COMMIT."""
        return self.decision is Decision.COMMIT


class TwoPhaseCoordinator:
    """Drives 2PC over the simulated LAN and accounts its costs."""

    def __init__(self, network: Network, coordinator_node: str,
                 protocol: CommitProtocol = CommitProtocol.PRESUMED_ABORT,
                 read_only_optimisation: bool = True) -> None:
        self.network = network
        self.node_id = coordinator_node
        self.protocol = protocol
        self.read_only_optimisation = read_only_optimisation
        #: durable decision log: txn_id -> Decision (coordinator side)
        self._decisions_key = "2pc-decisions"

    # -- durable decision log -------------------------------------------------

    def _log_decision(self, txn_id: str, decision: Decision,
                      outcome: CommitOutcome, forced: bool) -> None:
        node = self.network.node(self.node_id)
        log = node.stable.get(self._decisions_key, {})
        log[txn_id] = decision.value
        node.stable.put(self._decisions_key, log)
        if forced:
            outcome.forced_log_writes += 1

    def logged_decision(self, txn_id: str) -> Decision | None:
        """The durably logged decision for *txn_id*, if any."""
        node = self.network.node(self.node_id)
        log = node.stable.get(self._decisions_key, {})
        value = log.get(txn_id)
        return Decision(value) if value else None

    def resolve_in_doubt(self, txn_id: str) -> Decision:
        """Answer a recovering participant's status query.

        Under presumed abort, a missing decision record *means* abort;
        under the basic protocol an unknown transaction is an error the
        operator must resolve (we abort, conservatively, but flag it).
        """
        decision = self.logged_decision(txn_id)
        if decision is not None:
            return decision
        if self.protocol is CommitProtocol.PRESUMED_ABORT:
            return Decision.ABORT
        raise TwoPhaseCommitError(
            f"basic 2PC: no decision record for in-doubt txn {txn_id!r}")

    # -- the protocol -----------------------------------------------------------

    def execute(self, txn_id: str,
                participants: Sequence[TwoPhaseParticipant]) -> CommitOutcome:
        """Run 2PC for *txn_id* across *participants*.

        Returns a :class:`CommitOutcome`; a NO vote or an unreachable
        participant yields an ABORT outcome (never an exception), so
        callers treat abort as a normal result, as the paper's
        commit/abort discussion does.
        """
        outcome = CommitOutcome(txn_id, Decision.ABORT, self.protocol)

        # ---- phase 1: prepare ------------------------------------------------
        votes: list[tuple[TwoPhaseParticipant, Vote]] = []
        all_yes = True
        for part in participants:
            try:
                outcome.latency += self.network.send(self.node_id,
                                                     part.node_id)
                vote = part.prepare(txn_id)
                outcome.latency += self.network.send(part.node_id,
                                                     self.node_id)
                outcome.messages += 2
            except NodeDownError:
                vote = Vote.NO
                outcome.messages += 1  # the unanswered request
            if vote is Vote.YES:
                # a YES vote requires a forced prepare record
                outcome.forced_log_writes += 1
            elif vote is Vote.READ_ONLY and self.read_only_optimisation:
                outcome.read_only_participants.append(part.node_id)
            elif vote is Vote.READ_ONLY:
                # optimisation disabled: treat as a plain YES participant
                outcome.forced_log_writes += 1
                vote = Vote.YES
            else:
                all_yes = False
                outcome.no_voters.append(part.node_id)
            votes.append((part, vote))

        decision = Decision.COMMIT if all_yes else Decision.ABORT
        outcome.decision = decision

        # ---- coordinator decision record --------------------------------------
        if decision is Decision.COMMIT:
            self._log_decision(txn_id, decision, outcome, forced=True)
        elif self.protocol is CommitProtocol.BASIC:
            self._log_decision(txn_id, decision, outcome, forced=True)
        # presumed abort: an abort is not logged at all

        # ---- phase 2: decide --------------------------------------------------
        ack_needed = (decision is Decision.COMMIT
                      or self.protocol is CommitProtocol.BASIC)
        for part, vote in votes:
            if vote is Vote.READ_ONLY and self.read_only_optimisation:
                continue  # dropped out after phase 1
            if vote is Vote.NO:
                continue  # already aborted locally when voting no
            try:
                outcome.latency += self.network.send(self.node_id,
                                                     part.node_id)
                outcome.messages += 1
                if decision is Decision.COMMIT:
                    part.commit(txn_id)
                    outcome.forced_log_writes += 1  # participant decision rec
                else:
                    part.abort(txn_id)
                    if self.protocol is CommitProtocol.BASIC:
                        outcome.forced_log_writes += 1
                if ack_needed:
                    outcome.latency += self.network.send(part.node_id,
                                                         self.node_id)
                    outcome.messages += 1
            except NodeDownError:
                # participant will resolve the in-doubt txn at restart via
                # resolve_in_doubt(); nothing more to do now.
                continue
        return outcome
