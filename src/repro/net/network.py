"""Simulated workstation/server LAN.

"Design is generally performed on a network of machines, where the
prevailing architecture is a workstation/server environment (connected
via a local area network)" (Sect.5.1).  This module models that
environment deterministically:

* :class:`Node` — a workstation or the server, with *stable storage*
  (survives crashes) and *volatile state* (lost on crash), plus
  registered crash/restart hooks so components (TMs, DMs, repository)
  participate in failures;
* :class:`Network` — synchronous message transport with per-hop cost
  accounting (LAN vs same-machine), used by the RPC and 2PC layers and
  by experiment T3's message/latency counts.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.clock import SimClock
from repro.util.errors import NetworkError, NodeDownError
from repro.util.rng import SeededRng

if TYPE_CHECKING:  # avoid the net <-> sim package-init cycle
    from repro.sim.kernel import Kernel


class NodeKind(str, Enum):
    """Role of a machine in the workstation/server architecture."""

    WORKSTATION = "workstation"
    SERVER = "server"


_IMMUTABLE_SCALARS = (str, int, float, bool, bytes, type(None))

#: recursion cap for :func:`_is_immutable`.  Nesting deeper than this
#: is conservatively treated as *mutable* (the payload takes the deep
#: copy) — a correctness-preserving fallback, never an error.
IMMUTABLE_CHECK_MAX_DEPTH = 4


def _is_immutable(value: Any, _depth: int = 0) -> bool:
    """True when *value* cannot be mutated through any reference.

    Covers the scalar types plus tuples/frozensets of immutables, up
    to :data:`IMMUTABLE_CHECK_MAX_DEPTH` levels of nesting.  At the
    cap the answer deliberately flips to False: deeper structures just
    take the copy, so the guard can never leak a live reference.

    Frozen design payloads short-circuit via their structural marker
    (``__frozen_payload__``, set by the repository's freeze walk) —
    O(1), no recursive inspection, and no ``net -> repository`` import:
    the marker is the whole protocol.
    """
    if type(value) in _IMMUTABLE_SCALARS:
        # exact types only: subclasses (str-enums, ...) take the copy
        return True
    if getattr(type(value), "__frozen_payload__", False):
        return True
    if _depth < IMMUTABLE_CHECK_MAX_DEPTH \
            and type(value) in (tuple, frozenset):
        return all(_is_immutable(item, _depth + 1) for item in value)
    return False


class StableStorage:
    """Crash-surviving key/value storage local to one node.

    Values are deep-copied on write and read so that components cannot
    accidentally keep live references to "persistent" state — exactly
    the bug class crash recovery must be robust against.  Immutable
    payloads (strings, numbers, tuples of immutables) cannot leak a
    live reference, so they skip the copy on both paths;
    :attr:`copies_saved` counts the skips (surfaced by the benchmarks).
    """

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self.writes = 0
        #: deep copies skipped because the payload was immutable
        self.copies_saved = 0

    def put(self, key: str, value: Any) -> None:
        """Durably store *value* under *key*."""
        if _is_immutable(value):
            self._data[key] = value
            self.copies_saved += 1
        else:
            self._data[key] = copy.deepcopy(value)
        self.writes += 1

    def get(self, key: str, default: Any = None) -> Any:
        """Read back a durable value (a private copy)."""
        if key not in self._data:
            return default
        value = self._data[key]
        if _is_immutable(value):
            self.copies_saved += 1
            return value
        return copy.deepcopy(value)

    def delete(self, key: str) -> bool:
        """Remove a key; True when it existed."""
        return self._data.pop(key, None) is not None

    def keys(self, prefix: str = "") -> list[str]:
        """All keys, or those with the given prefix, sorted."""
        return sorted(k for k in self._data if k.startswith(prefix))

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)


@dataclass
class Node:
    """One machine: id, role, stable storage, volatile state, hooks."""

    node_id: str
    kind: NodeKind
    stable: StableStorage = field(default_factory=StableStorage)
    volatile: dict[str, Any] = field(default_factory=dict)
    up: bool = True
    #: callbacks invoked on crash (components drop volatile state here)
    on_crash: list[Callable[[], None]] = field(default_factory=list)
    #: callbacks invoked on restart (components run recovery here)
    on_restart: list[Callable[[], None]] = field(default_factory=list)
    crash_count: int = 0

    def crash(self) -> None:
        """Crash this node: volatile state vanishes, hooks fire."""
        self.up = False
        self.crash_count += 1
        self.volatile.clear()
        for hook in self.on_crash:
            hook()

    def restart(self) -> None:
        """Bring the node back up and run registered recovery hooks."""
        self.up = True
        for hook in self.on_restart:
            hook()

    def require_up(self) -> None:
        """Raise :class:`NodeDownError` unless the node is up."""
        if not self.up:
            raise NodeDownError(self.node_id)


class Network:
    """Message transport between registered nodes.

    Two delivery modes share one cost model:

    * **synchronous handoff** (:meth:`send`) — the classic
      request/response accounting used by the RPC and 2PC layers;
    * **queued asynchronous delivery** (:meth:`post`) — when a
      :class:`~repro.sim.kernel.Kernel` is attached *and running*, a
      posted message is scheduled as a kernel event at ``now +
      per-hop cost + seeded jitter``; deliveries to a crashed node are
      parked and flushed when it restarts.  Outside a kernel run,
      :meth:`post` degrades to immediate handoff, so sequential
      callers keep their synchronous semantics.
    """

    def __init__(self, clock: SimClock | None = None,
                 lan_latency: float = 0.010,
                 local_latency: float = 0.001,
                 jitter: float = 0.0,
                 seed: int = 0,
                 bandwidth: float = 1_000_000.0) -> None:
        self.clock = clock or SimClock()
        self.lan_latency = lan_latency
        self.local_latency = local_latency
        #: upper bound of the uniform per-message delivery jitter
        self.jitter = jitter
        #: modelled LAN throughput in payload bytes per simulated time
        #: unit — a message of *size* bytes adds ``size / bandwidth``
        #: to its transport delay (the data-shipping cost model)
        self.bandwidth = bandwidth
        self._rng = SeededRng(seed)
        #: the shared execution kernel, when one is attached
        self.kernel: "Kernel | None" = None
        self._nodes: dict[str, Node] = {}
        #: deliveries addressed to a crashed node, flushed on restart
        self._parked: dict[str, list[tuple[str, Callable[[], None]]]] = {}
        #: total messages sent (requests and responses each count once)
        self.messages_sent = 0
        #: asynchronous messages actually delivered
        self.messages_delivered = 0
        #: accumulated transport latency (simulated time units)
        self.total_latency = 0.0
        #: total payload bytes shipped over the LAN
        self.bytes_shipped = 0
        #: payload bytes sent, per source node
        self.bytes_sent_by: dict[str, int] = {}
        #: payload bytes received, per destination node
        self.bytes_received_by: dict[str, int] = {}
        #: batched messages sent (one LAN message, many payloads)
        self.batches_sent = 0
        #: payloads that travelled inside batched messages
        self.batched_payloads = 0

    # -- topology -------------------------------------------------------------

    def add_node(self, node_id: str, kind: NodeKind) -> Node:
        """Register a machine on the LAN."""
        if node_id in self._nodes:
            raise NetworkError(f"node {node_id!r} already registered")
        node = Node(node_id, kind)
        self._nodes[node_id] = node
        return node

    def add_server(self, node_id: str = "server") -> Node:
        """Convenience: register the (single logical) server."""
        return self.add_node(node_id, NodeKind.SERVER)

    def add_workstation(self, node_id: str) -> Node:
        """Convenience: register a designer workstation."""
        return self.add_node(node_id, NodeKind.WORKSTATION)

    def node(self, node_id: str) -> Node:
        """Look up a registered node."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    def nodes(self, kind: NodeKind | None = None) -> list[Node]:
        """All nodes, optionally filtered by role."""
        if kind is None:
            return list(self._nodes.values())
        return [n for n in self._nodes.values() if n.kind is kind]

    # -- kernel attachment -------------------------------------------------------

    def attach_kernel(self, kernel: "Kernel") -> "Network":
        """Schedule asynchronous deliveries on *kernel* from now on."""
        self.kernel = kernel
        return self

    @property
    def async_active(self) -> bool:
        """True while posted messages go through the kernel queue."""
        return self.kernel is not None and self.kernel.running

    # -- transport --------------------------------------------------------------

    def hop_latency(self, src: str, dst: str) -> float:
        """Transport cost of one message (same machine is cheaper).

        The paper notes that local communications (e.g. DM-TM on the
        same workstation) can use "main memory communication" — hence
        the distinct local latency.
        """
        return self.local_latency if src == dst else self.lan_latency

    def transfer_latency(self, src: str, dst: str, size: int = 0) -> float:
        """Hop cost plus the size-dependent shipping time of a message.

        A zero-size message is pure control traffic (the classic hop
        latency); a sized message additionally occupies the LAN for
        ``size / bandwidth`` simulated time units — how workstation
        object buffers turn working-set size into network cost.
        """
        latency = self.hop_latency(src, dst)
        if size > 0:
            latency += size / self.bandwidth
        return latency

    def _account_bytes(self, src: str, dst: str, size: int) -> None:
        if size <= 0:
            return
        self.bytes_shipped += size
        self.bytes_sent_by[src] = self.bytes_sent_by.get(src, 0) + size
        self.bytes_received_by[dst] = \
            self.bytes_received_by.get(dst, 0) + size

    def send(self, src: str, dst: str, size: int = 0) -> float:
        """Account one message src->dst; raises when either end is down.

        Returns the transport latency (hop cost plus the size-scaled
        shipping time for *size* payload bytes) so callers can advance
        their own cost model; the network also accumulates it in
        :attr:`total_latency` and books the bytes per node.
        """
        self.node(src).require_up()
        self.node(dst).require_up()
        self.messages_sent += 1
        latency = self.transfer_latency(src, dst, size)
        self.total_latency += latency
        self._account_bytes(src, dst, size)
        return latency

    def delivery_delay(self, src: str, dst: str, size: int = 0) -> float:
        """Transfer cost plus the seeded uniform jitter of one message."""
        delay = self.transfer_latency(src, dst, size)
        if self.jitter > 0.0:
            delay += self._rng.uniform(0.0, self.jitter)
        return delay

    def latency_lower_bound(self) -> float:
        """Safe lower bound on every *cross-node* delivery delay.

        A message between two different machines pays at least the
        LAN hop (jitter and the byte-proportional shipping time only
        add to it) — the quantity the parallel shard protocol derives
        its conservative lookahead window from: a shard that has run
        to local time ``t`` cannot receive a foreign delivery before
        ``t + latency_lower_bound()``.  The bound is inclusive when
        :attr:`jitter` is zero and strict (exclusive) otherwise.
        """
        return self.lan_latency

    def cross_shard_export(self) -> dict[str, Any]:
        """Cross-shard traffic metadata for a parallel deployment.

        Bundles what a multi-process coordinator needs to schedule the
        attached kernel's shards on real workers: the latency lower
        bound (the lookahead window), whether it is strict, and the
        merge-queue traffic counters of the attached kernel — the
        volume that would cross process boundaries.
        """
        kernel = self.kernel
        return {
            "latency_lower_bound": self.latency_lower_bound(),
            "strict": self.jitter > 0.0,
            "jitter_upper_bound": self.jitter,
            "shards": getattr(kernel, "shards", 1),
            "cross_shard_messages": getattr(kernel,
                                            "cross_shard_messages", 0),
            "local_messages": getattr(kernel, "local_messages", 0),
        }

    def post(self, src: str, dst: str, deliver: Callable[[], None],
             label: str = "", size: int = 0) -> float:
        """Queued asynchronous delivery of one message src -> dst.

        While the attached kernel is running, *deliver* is scheduled as
        a kernel event after the latency-modelled delay; when *dst* is
        down at delivery time the message is parked and flushed on the
        node's restart ("reliable communication protocols ... insulate
        the cooperation protocols from ... workstation crashes",
        Sect.5.4).  Outside a kernel run the message is handed over
        synchronously — the sequential compatibility path.  Returns
        the transport delay accounted for this message.
        """
        label = label or f"deliver:{src}->{dst}"
        self.messages_sent += 1
        self._account_bytes(src, dst, size)
        if not self.async_active:
            # per-hop cost is accounted either way so sequential and
            # concurrent runs report comparable transport metrics
            # (jitter only applies to genuinely queued deliveries)
            latency = self.transfer_latency(src, dst, size)
            self.total_latency += latency
            deliver()
            self.messages_delivered += 1
            return latency
        delay = self.delivery_delay(src, dst, size)
        self.total_latency += delay
        assert self.kernel is not None
        # route on the *destination* node's shard (the cross-shard
        # merge queue of a ShardedKernel; a plain defer on the base
        # kernel) — fire-and-forget, so the event is slab-recycled
        kernel = self.kernel
        kernel.defer_to(kernel.shard_of(dst), delay,
                        lambda: self._deliver(dst, deliver, label),
                        label=label)
        return delay

    def post_batch(self, src: str, dst: str, deliver: Callable[[], None],
                   sizes: list[int], label: str = "") -> float:
        """Ship several payloads as **one** sized message src -> dst.

        The batching primitive of the write-back protocol: a group
        checkin ships the payload bytes of every deferred checkin in
        a single LAN message, so the per-message hop latency is paid
        once for the whole batch instead of once per payload (the
        byte-proportional part of the delay is unchanged — bandwidth
        is bandwidth).  Accounting: one message, ``sum(sizes)`` bytes,
        and the batch counters (:attr:`batches_sent`,
        :attr:`batched_payloads`) record the bundling.  Delivery
        semantics are exactly :meth:`post` — a kernel event when the
        kernel is running, synchronous handoff otherwise.
        """
        self.batches_sent += 1
        self.batched_payloads += len(sizes)
        return self.post(src, dst, deliver,
                         label=label or f"batch:{src}->{dst}",
                         size=sum(sizes))

    def _deliver(self, dst: str, deliver: Callable[[], None],
                 label: str) -> None:
        node = self.node(dst)
        if not node.up:
            self._parked.setdefault(dst, []).append((label, deliver))
            return
        self.messages_delivered += 1
        deliver()

    # -- failures -----------------------------------------------------------------

    def crash_node(self, node_id: str) -> None:
        """Crash one machine."""
        self.node(node_id).crash()

    def restart_node(self, node_id: str) -> None:
        """Restart one machine (runs its recovery hooks), then flush
        the asynchronous deliveries parked while it was down."""
        self.node(node_id).restart()
        for label, deliver in self._parked.pop(node_id, []):
            if self.async_active:
                assert self.kernel is not None
                kernel = self.kernel
                kernel.defer_to(kernel.shard_of(node_id), 0.0,
                                lambda d=deliver, n=node_id,
                                la=label: self._deliver(n, d, la),
                                label=f"flush:{label}")
            else:
                self.messages_delivered += 1
                deliver()

    # -- traffic statistics --------------------------------------------------------

    def traffic_stats(self) -> dict[str, Any]:
        """Snapshot of every traffic counter (messages, latency, bytes)."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "total_latency": self.total_latency,
            "bytes_shipped": self.bytes_shipped,
            "bytes_sent_by": dict(self.bytes_sent_by),
            "bytes_received_by": dict(self.bytes_received_by),
            "batches_sent": self.batches_sent,
            "batched_payloads": self.batched_payloads,
        }

    def reset_counters(self) -> dict[str, Any]:
        """Zero *all* traffic counters (between measurements).

        Covers the message/latency counters and the per-node
        bytes-shipped tallies alike; returns the pre-reset snapshot so
        callers can fold the interval just measured into a report.
        """
        snapshot = self.traffic_stats()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.total_latency = 0.0
        self.bytes_shipped = 0
        self.bytes_sent_by = {}
        self.bytes_received_by = {}
        self.batches_sent = 0
        self.batched_payloads = 0
        return snapshot
