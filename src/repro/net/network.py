"""Simulated workstation/server LAN.

"Design is generally performed on a network of machines, where the
prevailing architecture is a workstation/server environment (connected
via a local area network)" (Sect.5.1).  This module models that
environment deterministically:

* :class:`Node` — a workstation or the server, with *stable storage*
  (survives crashes) and *volatile state* (lost on crash), plus
  registered crash/restart hooks so components (TMs, DMs, repository)
  participate in failures;
* :class:`Network` — synchronous message transport with per-hop cost
  accounting (LAN vs same-machine), used by the RPC and 2PC layers and
  by experiment T3's message/latency counts.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from repro.sim.clock import SimClock
from repro.util.errors import NetworkError, NodeDownError


class NodeKind(str, Enum):
    """Role of a machine in the workstation/server architecture."""

    WORKSTATION = "workstation"
    SERVER = "server"


class StableStorage:
    """Crash-surviving key/value storage local to one node.

    Values are deep-copied on write and read so that components cannot
    accidentally keep live references to "persistent" state — exactly
    the bug class crash recovery must be robust against.
    """

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self.writes = 0

    def put(self, key: str, value: Any) -> None:
        """Durably store *value* under *key*."""
        self._data[key] = copy.deepcopy(value)
        self.writes += 1

    def get(self, key: str, default: Any = None) -> Any:
        """Read back a durable value (a private copy)."""
        if key not in self._data:
            return default
        return copy.deepcopy(self._data[key])

    def delete(self, key: str) -> bool:
        """Remove a key; True when it existed."""
        return self._data.pop(key, None) is not None

    def keys(self, prefix: str = "") -> list[str]:
        """All keys, or those with the given prefix, sorted."""
        return sorted(k for k in self._data if k.startswith(prefix))

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)


@dataclass
class Node:
    """One machine: id, role, stable storage, volatile state, hooks."""

    node_id: str
    kind: NodeKind
    stable: StableStorage = field(default_factory=StableStorage)
    volatile: dict[str, Any] = field(default_factory=dict)
    up: bool = True
    #: callbacks invoked on crash (components drop volatile state here)
    on_crash: list[Callable[[], None]] = field(default_factory=list)
    #: callbacks invoked on restart (components run recovery here)
    on_restart: list[Callable[[], None]] = field(default_factory=list)
    crash_count: int = 0

    def crash(self) -> None:
        """Crash this node: volatile state vanishes, hooks fire."""
        self.up = False
        self.crash_count += 1
        self.volatile.clear()
        for hook in self.on_crash:
            hook()

    def restart(self) -> None:
        """Bring the node back up and run registered recovery hooks."""
        self.up = True
        for hook in self.on_restart:
            hook()

    def require_up(self) -> None:
        """Raise :class:`NodeDownError` unless the node is up."""
        if not self.up:
            raise NodeDownError(self.node_id)


class Network:
    """Synchronous message transport between registered nodes."""

    def __init__(self, clock: SimClock | None = None,
                 lan_latency: float = 0.010,
                 local_latency: float = 0.001) -> None:
        self.clock = clock or SimClock()
        self.lan_latency = lan_latency
        self.local_latency = local_latency
        self._nodes: dict[str, Node] = {}
        #: total messages sent (requests and responses each count once)
        self.messages_sent = 0
        #: accumulated transport latency (simulated time units)
        self.total_latency = 0.0

    # -- topology -------------------------------------------------------------

    def add_node(self, node_id: str, kind: NodeKind) -> Node:
        """Register a machine on the LAN."""
        if node_id in self._nodes:
            raise NetworkError(f"node {node_id!r} already registered")
        node = Node(node_id, kind)
        self._nodes[node_id] = node
        return node

    def add_server(self, node_id: str = "server") -> Node:
        """Convenience: register the (single logical) server."""
        return self.add_node(node_id, NodeKind.SERVER)

    def add_workstation(self, node_id: str) -> Node:
        """Convenience: register a designer workstation."""
        return self.add_node(node_id, NodeKind.WORKSTATION)

    def node(self, node_id: str) -> Node:
        """Look up a registered node."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    def nodes(self, kind: NodeKind | None = None) -> list[Node]:
        """All nodes, optionally filtered by role."""
        if kind is None:
            return list(self._nodes.values())
        return [n for n in self._nodes.values() if n.kind is kind]

    # -- transport --------------------------------------------------------------

    def hop_latency(self, src: str, dst: str) -> float:
        """Transport cost of one message (same machine is cheaper).

        The paper notes that local communications (e.g. DM-TM on the
        same workstation) can use "main memory communication" — hence
        the distinct local latency.
        """
        return self.local_latency if src == dst else self.lan_latency

    def send(self, src: str, dst: str) -> float:
        """Account one message src->dst; raises when either end is down.

        Returns the hop latency so callers can advance their own cost
        model; the network also accumulates it in :attr:`total_latency`.
        """
        self.node(src).require_up()
        self.node(dst).require_up()
        self.messages_sent += 1
        latency = self.hop_latency(src, dst)
        self.total_latency += latency
        return latency

    # -- failures -----------------------------------------------------------------

    def crash_node(self, node_id: str) -> None:
        """Crash one machine."""
        self.node(node_id).crash()

    def restart_node(self, node_id: str) -> None:
        """Restart one machine (runs its recovery hooks)."""
        self.node(node_id).restart()

    def reset_counters(self) -> None:
        """Zero the message/latency counters (between measurements)."""
        self.messages_sent = 0
        self.total_latency = 0.0
