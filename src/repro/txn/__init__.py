"""The unified transaction-coordinator layer (``repro.txn``).

Every commit shape of the reproduction — a single write-through
checkin, a per-workstation write-back group flush, a cross-workstation
group commit, and a cross-member federation batch — runs the same
prepare/decide/complete protocol.  This package owns that protocol:

* :mod:`repro.txn.gateway` — the client-side
  :class:`~repro.txn.gateway.CommitGateway` that drives every commit
  shape over the simulated LAN (txn ids, request stashing, sized
  payload shipment, the 2PC itself) plus
  :func:`~repro.txn.gateway.flush_group`, the cross-workstation group
  commit (several client-TMs' dirty sets under one coordinator and
  one decision);
* :mod:`repro.txn.decision_log` — the durable
  :class:`~repro.txn.decision_log.GlobalDecisionLog` that makes
  cross-member federation batches atomic under presumed-abort
  recovery (the paper Sect.6's distributed-commit direction);
* :mod:`repro.txn.leases` — the
  :class:`~repro.txn.leases.LeaseTable` of the data-shipping
  protocol, grown with TTL renewal leases driven by kernel timer
  events (expiry behaves like a recall; renewal is a metadata-only
  message).

The TE-level transaction managers and the federated repository are
thin participants of this layer: they validate, stage and apply —
the decision belongs here.
"""

from repro.txn.decision_log import GlobalDecisionLog
from repro.txn.gateway import (
    CommitGateway,
    GroupCommitResult,
    GroupFlushReport,
    GroupRequest,
    SingleCommitResult,
    flush_group,
)
from repro.txn.leases import Lease, LeaseTable

__all__ = [
    "CommitGateway",
    "GlobalDecisionLog",
    "GroupCommitResult",
    "GroupFlushReport",
    "GroupRequest",
    "Lease",
    "LeaseTable",
    "SingleCommitResult",
    "flush_group",
]
