"""The global decision log of the federated atomic commit.

The paper's Sect.6 assumes "heterogeneous and distributed data
management does not influence the major model of operation" — but a
federation whose ``commit_group`` is atomic only *per member* breaks
exactly that promise when a member crashes mid-batch.  The missing
piece is the classic one: a durable, coordinator-side **decision log**.

:class:`GlobalDecisionLog` records the COMMIT decision of a
cross-member batch — together with its *manifest* (which member owns
which staged versions) — in **one forced log write** before any member
is told to commit.  The protocol is presumed abort:

* a logged decision *is* the commit point — members that crash after
  it redo their portion from their own forced prepare records when
  they recover;
* a missing decision *means* abort — a member that finds a prepared
  but undecided batch at restart discards it, no abort record needed.

Completion records (all members applied the decision) are appended
un-forced: losing one merely makes recovery re-examine a batch whose
redo is idempotent.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.net.two_phase_commit import Decision
from repro.repository.wal import LogRecordKind, WriteAheadLog


class GlobalDecisionLog:
    """Durable commit decisions for cross-member batches (presumed abort).

    The log is coordinator-side stable storage: its forced records
    survive any member crash (and whole-site recovery rebuilds the
    in-memory maps from them via :meth:`recover`).
    """

    def __init__(self, wal: WriteAheadLog | None = None) -> None:
        self.wal = wal if wal is not None \
            else WriteAheadLog("global-decision-log")
        #: gtxn id -> logged decision (COMMIT only: presumed abort)
        self._decisions: dict[str, Decision] = {}
        #: gtxn id -> {member: [dov ids]} batch manifest
        self._manifests: dict[str, dict[str, list[str]]] = {}
        #: gtxn ids every member has completed
        self._completed: set[str] = set()
        #: fired *after* the decision record is durable and *before*
        #: any participant is notified — the exact window the T10
        #: crash-injection (and the coordinator-crash test) target
        self.on_decision: Callable[[str, dict[str, list[str]]],
                                   None] | None = None

    # -- writing ------------------------------------------------------------

    def record(self, gtxn_id: str,
               manifest: dict[str, list[str]]) -> None:
        """Durably log the COMMIT decision for *gtxn_id* (one force).

        This is the commit point of a cross-member batch: after this
        returns, the batch **will** become durable at every manifest
        member — immediately, or at member recovery via redo.
        """
        if gtxn_id in self._decisions:
            return  # idempotent: the decision is already durable
        self.wal.append(LogRecordKind.GLOBAL_DECISION, {
            "gtxn": gtxn_id,
            "decision": Decision.COMMIT.value,
            "manifest": {member: list(ids)
                         for member, ids in manifest.items()},
        }, force=True)
        self._decisions[gtxn_id] = Decision.COMMIT
        self._manifests[gtxn_id] = {member: list(ids)
                                    for member, ids in manifest.items()}
        if self.on_decision is not None:
            self.on_decision(gtxn_id, self.manifest(gtxn_id))

    def mark_complete(self, gtxn_id: str) -> None:
        """Every member applied the decision (un-forced end record)."""
        if gtxn_id in self._completed:
            return
        self.wal.append(LogRecordKind.GLOBAL_DECISION,
                        {"gtxn": gtxn_id, "complete": True}, force=False)
        self._completed.add(gtxn_id)

    # -- reading ------------------------------------------------------------

    def decision_for(self, gtxn_id: str) -> Decision | None:
        """The logged decision, or None when nothing was recorded."""
        return self._decisions.get(gtxn_id)

    def resolve(self, gtxn_id: str) -> Decision:
        """Answer a recovering member's in-doubt query (presumed abort):
        a missing decision record *means* the batch aborted."""
        return self._decisions.get(gtxn_id, Decision.ABORT)

    def manifest(self, gtxn_id: str) -> dict[str, list[str]]:
        """The batch manifest of a logged decision (member -> dov ids)."""
        return {member: list(ids) for member, ids
                in self._manifests.get(gtxn_id, {}).items()}

    def decisions(self) -> list[str]:
        """Every logged COMMIT decision, in log order."""
        return list(self._decisions)

    def incomplete(self) -> list[str]:
        """Logged COMMIT decisions not yet marked complete, in log
        order — the recovery work list after a coordinator crash."""
        return [gtxn_id for gtxn_id in self._decisions
                if gtxn_id not in self._completed]

    # -- recovery -----------------------------------------------------------

    def crash(self) -> int:
        """Coordinator crash: the in-memory maps and the un-forced log
        tail vanish; forced decision records survive.  Returns the
        number of tail records lost."""
        lost = self.wal.crash()
        self._decisions.clear()
        self._manifests.clear()
        self._completed.clear()
        return lost

    def recover(self) -> int:
        """Rebuild the in-memory maps from the stable log records.

        Returns the number of decisions recovered.  The unforced tail
        (completion records of batches finished just before a crash)
        is gone — harmless, redo is idempotent.
        """
        self._decisions.clear()
        self._manifests.clear()
        self._completed.clear()
        for record in self.wal.stable_records(
                LogRecordKind.GLOBAL_DECISION):
            gtxn_id = record.payload["gtxn"]
            if record.payload.get("complete"):
                self._completed.add(gtxn_id)
            else:
                self._decisions[gtxn_id] = Decision(
                    record.payload["decision"])
                self._manifests[gtxn_id] = {
                    member: list(ids) for member, ids
                    in record.payload["manifest"].items()}
        return len(self._decisions)

    # -- stats --------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Counters for the bench/experiment surface."""
        return {
            "decisions": len(self._decisions),
            "completed": len(self._completed),
            "incomplete": len(self.incomplete()),
            "forced_writes": self.wal.forced_writes,
        }
