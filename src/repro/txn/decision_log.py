"""The global decision log of the federated atomic commit.

The paper's Sect.6 assumes "heterogeneous and distributed data
management does not influence the major model of operation" — but a
federation whose ``commit_group`` is atomic only *per member* breaks
exactly that promise when a member crashes mid-batch.  The missing
piece is the classic one: a durable, coordinator-side **decision log**.

:class:`GlobalDecisionLog` records the COMMIT decision of a
cross-member batch — together with its *manifest* (which member owns
which staged versions) — in **one forced log write** before any member
is told to commit.  The protocol is presumed abort:

* a logged decision *is* the commit point — members that crash after
  it redo their portion from their own forced prepare records when
  they recover;
* a missing decision *means* abort — a member that finds a prepared
  but undecided batch at restart discards it, no abort record needed.

Completion records (all members applied the decision) are appended
un-forced: losing one merely makes recovery re-examine a batch whose
redo is idempotent.

Checkpoint/truncation (the bounded-log story): a coordinator that
serves millions of batches cannot keep every decision forever.
:meth:`GlobalDecisionLog.checkpoint` advances a **stable frontier**:
every decision whose batch is fully completed is forgotten — from
memory *and* from the log, by writing one forced CHECKPOINT record
carrying the still-live (incomplete) decisions and truncating every
record behind it.  The frontier rule that makes forgetting safe: a
batch is only marked complete once every manifest member has durably
applied it, and a durably-applied portion can never come back
in-doubt (the member's own log answers it locally), so no recovering
member will ever ask about a forgotten decision.  Presumed abort then
gives the right answer *by construction* for everything behind the
frontier.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.net.two_phase_commit import Decision
from repro.repository.wal import LogRecordKind, WriteAheadLog


class GlobalDecisionLog:
    """Durable commit decisions for cross-member batches (presumed abort).

    The log is coordinator-side stable storage: its forced records
    survive any member crash (and whole-site recovery rebuilds the
    in-memory maps from them via :meth:`recover`).

    ``checkpoint_interval=N`` turns on automatic truncation: every N
    completed batches the log checkpoints itself, so its size is
    bounded by the incomplete set plus one interval window no matter
    how many batches ever committed.
    """

    def __init__(self, wal: WriteAheadLog | None = None,
                 checkpoint_interval: int | None = None) -> None:
        self.wal = wal if wal is not None \
            else WriteAheadLog("global-decision-log")
        self.checkpoint_interval = checkpoint_interval
        #: gtxn id -> logged decision (COMMIT only: presumed abort)
        self._decisions: dict[str, Decision] = {}
        #: gtxn id -> {member: [dov ids]} batch manifest
        self._manifests: dict[str, dict[str, list[str]]] = {}
        #: gtxn ids every member has completed
        self._completed: set[str] = set()
        #: decided-but-not-completed gtxn ids in log order — maintained
        #: O(1) per transition instead of re-scanned per query
        self._incomplete: dict[str, None] = {}
        #: checkpoints taken (each truncates the log behind it)
        self.truncations = 0
        #: completed decisions forgotten past checkpoint frontiers
        self.forgotten_decisions = 0
        #: fired *after* the decision record is durable and *before*
        #: any participant is notified — the exact window the T10
        #: crash-injection (and the coordinator-crash test) target
        self.on_decision: Callable[[str, dict[str, list[str]]],
                                   None] | None = None

    # -- writing ------------------------------------------------------------

    def record(self, gtxn_id: str,
               manifest: dict[str, list[str]]) -> None:
        """Durably log the COMMIT decision for *gtxn_id* (one force).

        This is the commit point of a cross-member batch: after this
        returns, the batch **will** become durable at every manifest
        member — immediately, or at member recovery via redo.
        """
        if gtxn_id in self._decisions:
            return  # idempotent: the decision is already durable
        self.wal.append(LogRecordKind.GLOBAL_DECISION, {
            "gtxn": gtxn_id,
            "decision": Decision.COMMIT.value,
            "manifest": {member: list(ids)
                         for member, ids in manifest.items()},
        }, force=True)
        self._decisions[gtxn_id] = Decision.COMMIT
        self._manifests[gtxn_id] = {member: list(ids)
                                    for member, ids in manifest.items()}
        self._incomplete[gtxn_id] = None
        if self.on_decision is not None:
            self.on_decision(gtxn_id, self.manifest(gtxn_id))

    def mark_complete(self, gtxn_id: str) -> None:
        """Every member applied the decision (un-forced end record)."""
        if gtxn_id in self._completed:
            return
        self.wal.append(LogRecordKind.GLOBAL_DECISION,
                        {"gtxn": gtxn_id, "complete": True}, force=False)
        self._completed.add(gtxn_id)
        self._incomplete.pop(gtxn_id, None)
        if self.checkpoint_interval is not None \
                and len(self._completed) >= self.checkpoint_interval:
            self.checkpoint()

    def checkpoint(self) -> dict[str, int]:
        """Advance the frontier: forget every fully-completed batch.

        One forced CHECKPOINT record carries the still-live
        (incomplete) decisions — everything recovery could ever be
        asked about — then the log truncates every record behind it
        and the completed decisions leave memory.  Safe by the
        frontier rule (module docstring): completed batches are
        durable at every manifest member, so presumed abort never
        gives a wrong answer for a forgotten gtxn.

        Returns ``{"live": .., "forgotten": .., "truncated": ..}``.
        """
        live = [{"gtxn": gtxn_id,
                 "manifest": {member: list(ids) for member, ids
                              in self._manifests[gtxn_id].items()}}
                for gtxn_id in self._incomplete]
        record = self.wal.append(LogRecordKind.CHECKPOINT, {
            "log": "global-decision",
            "live": live,
        }, force=True)
        truncated = self.wal.truncate(up_to_lsn=record.lsn - 1)
        forgotten = 0
        for gtxn_id in list(self._decisions):
            if gtxn_id not in self._incomplete:
                del self._decisions[gtxn_id]
                del self._manifests[gtxn_id]
                self._completed.discard(gtxn_id)
                forgotten += 1
        self.truncations += 1
        self.forgotten_decisions += forgotten
        return {"live": len(live), "forgotten": forgotten,
                "truncated": truncated}

    # -- reading ------------------------------------------------------------

    def decision_for(self, gtxn_id: str) -> Decision | None:
        """The logged decision, or None when nothing was recorded."""
        return self._decisions.get(gtxn_id)

    def resolve(self, gtxn_id: str) -> Decision:
        """Answer a recovering member's in-doubt query (presumed abort):
        a missing decision record *means* the batch aborted."""
        return self._decisions.get(gtxn_id, Decision.ABORT)

    def manifest(self, gtxn_id: str) -> dict[str, list[str]]:
        """The batch manifest of a logged decision (member -> dov ids)."""
        return {member: list(ids) for member, ids
                in self._manifests.get(gtxn_id, {}).items()}

    def decisions(self) -> list[str]:
        """Every retained COMMIT decision, in log order (a stable
        copy; decisions behind the checkpoint frontier are gone)."""
        return list(self._decisions)

    def incomplete(self) -> list[str]:
        """Logged COMMIT decisions not yet marked complete, in log
        order — the recovery work list after a coordinator crash.
        A stable copy of the maintained incomplete-set: O(incomplete),
        not O(all decisions ever logged)."""
        return list(self._incomplete)

    # -- recovery -----------------------------------------------------------

    def crash(self) -> int:
        """Coordinator crash: the in-memory maps and the un-forced log
        tail vanish; forced decision records survive.  Returns the
        number of tail records lost."""
        lost = self.wal.crash()
        self._decisions.clear()
        self._manifests.clear()
        self._completed.clear()
        self._incomplete.clear()
        return lost

    def recover(self) -> int:
        """Rebuild the in-memory maps from the stable log records.

        The scan starts from scratch at every CHECKPOINT record (its
        ``live`` set *is* the log's state at that frontier — a crash
        between appending the checkpoint and truncating behind it
        merely replays records the checkpoint already subsumes), then
        applies the decision/completion records past it.  Returns the
        number of decisions recovered.  The unforced tail (completion
        records of batches finished just before a crash) is gone —
        harmless, redo is idempotent.
        """
        self._decisions.clear()
        self._manifests.clear()
        self._completed.clear()
        self._incomplete.clear()
        for record in self.wal.stable_records():
            if record.kind is LogRecordKind.CHECKPOINT \
                    and record.payload.get("log") == "global-decision":
                self._decisions.clear()
                self._manifests.clear()
                self._completed.clear()
                self._incomplete.clear()
                for entry in record.payload["live"]:
                    gtxn_id = entry["gtxn"]
                    self._decisions[gtxn_id] = Decision.COMMIT
                    self._manifests[gtxn_id] = {
                        member: list(ids) for member, ids
                        in entry["manifest"].items()}
                    self._incomplete[gtxn_id] = None
                continue
            if record.kind is not LogRecordKind.GLOBAL_DECISION:
                continue
            gtxn_id = record.payload["gtxn"]
            if record.payload.get("complete"):
                self._completed.add(gtxn_id)
                self._incomplete.pop(gtxn_id, None)
            else:
                self._decisions[gtxn_id] = Decision(
                    record.payload["decision"])
                self._manifests[gtxn_id] = {
                    member: list(ids) for member, ids
                    in record.payload["manifest"].items()}
                self._incomplete[gtxn_id] = None
        return len(self._decisions)

    # -- stats --------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Counters for the bench/experiment surface."""
        return {
            "decisions": len(self._decisions),
            "completed": len(self._completed),
            "incomplete": len(self._incomplete),
            "forced_writes": self.wal.forced_writes,
            "wal_records": len(self.wal),
            "truncations": self.truncations,
            "forgotten_decisions": self.forgotten_decisions,
        }
