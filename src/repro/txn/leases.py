"""Read leases with TTL renewal — the coherence half of data shipping.

PR 2 introduced explicit lease *recalls*: the server remembers every
``(workstation, dov_id)`` it shipped a version to and revokes the
lease with an invalidation message when a checkin supersedes it.  That
table is pure server state, and each recall is server work proportional
to the sharing degree.

TTL **renewal leases** shift the contract: a lease is granted for a
*time to live*; the workstation keeps it alive with metadata-only
renewal messages while it keeps using the copy, and an unrenewed lease
simply **expires** — the expiry behaves exactly like a recall (the
buffered copy is dropped), driven by an ordinary kernel timer event
rather than by an explicit server decision.  Cold entries therefore
decay out of the coherence protocol by themselves, bounding the lease
table by the *active* working set instead of everything ever shipped.

:class:`LeaseTable` implements both regimes behind one surface:
``ttl=None`` (the default) reproduces the recall-only behaviour —
leases never expire, nothing is scheduled — while a numeric ``ttl``
arms one expiry-check timer per grant on the attached kernel.
Renewals never resurrect: extending a lease that already expired (or
was recalled) is a no-op, which is what makes a renewal racing an
in-flight expiry safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.sim.clock import SimClock
from repro.sim.kernel import Timer


@dataclass
class Lease:
    """One granted read lease."""

    workstation: str
    dov_id: str
    granted_at: float
    #: simulated expiry instant; None = no TTL (explicit recall only)
    expires_at: float | None


class LeaseTable:
    """The server's lease table: grants, renewals, recalls, expiry.

    All mutators are synchronous bookkeeping; the only kernel activity
    is the expiry-check timer a TTL grant arms (label
    ``lease-expiry:<dov>@<ws>``), and :attr:`on_expire` is where the
    server-TM hangs the recall-equivalent invalidation message.  A
    renewal while a check is armed does not schedule a second event —
    the armed check re-arms itself at the extended expiry, so the
    number of timer events stays bounded by the number of renewals.
    """

    def __init__(self, clock: SimClock | None = None,
                 ttl: float | None = None,
                 kernel_source: Callable[[], Any] | None = None) -> None:
        self.clock = clock or SimClock()
        #: lease time-to-live (None = leases never expire)
        self.ttl = ttl
        #: zero-arg callable yielding the kernel to arm expiry checks
        #: on (resolved lazily — networks attach their kernel late)
        self._kernel_source = kernel_source
        #: dov_id -> workstation -> lease
        self._holders: dict[str, dict[str, Lease]] = {}
        #: fired with (workstation, dov_id) when a lease expires —
        #: expiry behaves like a recall
        self.on_expire: Callable[[str, str], None] | None = None
        self.grants = 0
        self.renewals = 0
        self.expirations = 0
        #: one re-armable expiry timer per (workstation, dov_id)
        self._timers: dict[tuple[str, str], Timer] = {}

    # -- grants -------------------------------------------------------------

    def _kernel(self) -> Any:
        return self._kernel_source() if self._kernel_source else None

    def grant(self, workstation: str, dov_id: str) -> Lease:
        """Grant (or refresh) the lease of *workstation* on *dov_id*.

        Re-granting an existing lease extends it like a renewal would.
        """
        now = self.clock.now
        expires = now + self.ttl if self.ttl is not None else None
        holders = self._holders.setdefault(dov_id, {})
        lease = holders.get(workstation)
        if lease is not None:
            lease.expires_at = expires
        else:
            lease = Lease(workstation, dov_id, now, expires)
            holders[workstation] = lease
            self.grants += 1
        self._arm(lease)
        return lease

    def _arm(self, lease: Lease) -> None:
        if lease.expires_at is None:
            return
        key = (lease.workstation, lease.dov_id)
        timer = self._timers.get(key)
        if timer is None:
            kernel = self._kernel()
            if kernel is None:
                return  # no kernel: expiry via expire_due() sweeps
            timer = Timer(kernel, lambda: self._on_timer(key),
                          label=f"lease-expiry:{lease.dov_id}"
                                f"@{lease.workstation}")
            self._timers[key] = timer
        timer.arm(lease.expires_at)

    def _on_timer(self, key: tuple[str, str]) -> None:
        workstation, dov_id = key
        lease = self._holders.get(dov_id, {}).get(workstation)
        if lease is None or lease.expires_at is None:
            return  # recalled/released meanwhile, or TTL switched off
        if lease.expires_at > self.clock.now + 1e-12:
            self._arm(lease)  # renewed at the timer instant itself
            return
        self._expire(lease)

    def _expire(self, lease: Lease) -> None:
        self.release(lease.workstation, lease.dov_id)
        self.expirations += 1
        if self.on_expire is not None:
            self.on_expire(lease.workstation, lease.dov_id)

    def expire_due(self) -> list[tuple[str, str]]:
        """Kernel-less sweep: expire every overdue lease *now*.

        Returns the expired ``(workstation, dov_id)`` pairs in grant
        order.  Deployments without a kernel (sequential rigs, unit
        tests) call this instead of relying on timer events.
        """
        now = self.clock.now
        due = [lease for holders in self._holders.values()
               for lease in holders.values()
               if lease.expires_at is not None
               and lease.expires_at <= now + 1e-12]
        for lease in due:
            self._expire(lease)
        return [(lease.workstation, lease.dov_id) for lease in due]

    # -- renewal ------------------------------------------------------------

    def renew(self, workstation: str, dov_id: str) -> bool:
        """Extend one lease by a fresh TTL; False when it no longer
        exists (a renewal never resurrects an expired lease)."""
        lease = self._holders.get(dov_id, {}).get(workstation)
        if lease is None:
            return False
        if self.ttl is not None:
            lease.expires_at = self.clock.now + self.ttl
        self.renewals += 1
        return True

    def renew_workstation(self, workstation: str) -> int:
        """Renew every lease of *workstation* (the metadata-only batch
        renewal message); returns the number of leases extended."""
        renewed = 0
        for holders in self._holders.values():
            if workstation in holders:
                renewed += bool(self.renew(workstation,
                                           holders[workstation].dov_id))
        return renewed

    # -- queries ------------------------------------------------------------

    def holders(self, dov_id: str) -> set[str]:
        """Workstations currently leasing *dov_id*."""
        return set(self._holders.get(dov_id, ()))

    def lease(self, workstation: str, dov_id: str) -> Lease | None:
        """The live lease of *(workstation, dov_id)*, if any."""
        return self._holders.get(dov_id, {}).get(workstation)

    def __len__(self) -> int:
        return sum(len(holders) for holders in self._holders.values())

    # -- recall / release ---------------------------------------------------

    def release(self, workstation: str, dov_id: str) -> bool:
        """Drop one lease (recall, eviction, expiry); True when held."""
        holders = self._holders.get(dov_id)
        if not holders or workstation not in holders:
            return False
        del holders[workstation]
        if not holders:
            del self._holders[dov_id]
        timer = self._timers.pop((workstation, dov_id), None)
        if timer is not None:
            timer.cancel()
        return True

    def release_all(self, dov_id: str) -> list[str]:
        """Drop every lease on *dov_id* (supersession recall); returns
        the previous holders in grant order."""
        holders = list(self._holders.get(dov_id, ()))
        for workstation in holders:
            self.release(workstation, dov_id)
        return holders

    def drop_workstation(self, workstation: str) -> int:
        """Forget every lease of one workstation (its crash)."""
        dropped = 0
        for dov_id in list(self._holders):
            dropped += bool(self.release(workstation, dov_id))
        return dropped

    def clear(self) -> None:
        """Server crash: the (volatile) lease table vanishes."""
        self._holders.clear()
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()

    # -- dict-of-sets compatibility ----------------------------------------

    def __setitem__(self, dov_id: str,
                    workstations: Iterable[str]) -> None:
        """Grant leases wholesale (the PR 2 table was a plain
        ``dict[str, set[str]]``; rigs that seeded it directly keep
        working)."""
        for workstation in workstations:
            self.grant(workstation, dov_id)

    # -- stats --------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Snapshot of the lease counters."""
        return {
            "live": len(self),
            "ttl": self.ttl,
            "grants": self.grants,
            "renewals": self.renewals,
            "expirations": self.expirations,
        }
