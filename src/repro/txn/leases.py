"""Read leases with TTL renewal — the coherence half of data shipping.

PR 2 introduced explicit lease *recalls*: the server remembers every
``(workstation, dov_id)`` it shipped a version to and revokes the
lease with an invalidation message when a checkin supersedes it.  That
table is pure server state, and each recall is server work proportional
to the sharing degree.

TTL **renewal leases** shift the contract: a lease is granted for a
*time to live*; the workstation keeps it alive with metadata-only
renewal messages while it keeps using the copy, and an unrenewed lease
simply **expires** — the expiry behaves exactly like a recall (the
buffered copy is dropped), driven by an ordinary kernel timer event
rather than by an explicit server decision.  Cold entries therefore
decay out of the coherence protocol by themselves, bounding the lease
table by the *active* working set instead of everything ever shipped.

:class:`LeaseTable` implements both regimes behind one surface:
``ttl=None`` (the default) reproduces the recall-only behaviour —
leases never expire, nothing is scheduled — while a numeric ``ttl``
arms **bucketed** expiry checks on the attached kernel: every lease
expiring at the same instant shares ONE kernel event (label
``lease-expiry:...``), so a server holding 10^6 leases granted across
k distinct instants keeps k pending events, not 10^6.  Renewals and
releases are *lazy*: they only move the lease's bookkeeping — the old
bucket discovers the move when it fires and re-files (or skips) the
lease, so no kernel event is ever cancelled or rescheduled.  Renewals
never resurrect: extending a lease that already expired (or was
recalled) is a no-op, which is what makes a renewal racing an
in-flight expiry safe.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from math import ceil
from typing import Any, Callable, Iterable, Iterator

from repro.sim.clock import SimClock
from repro.sim.kernel import Timer

#: slack when comparing expiry instants against the clock
_EPS = 1e-12

#: reusable no-op scope for tables without a pinned owner
_NULL_SCOPE = nullcontext()

#: module switch: True = bucketed expiry (one kernel event per distinct
#: expiry instant), False = the pre-wheel regime of one re-armable
#: :class:`~repro.sim.kernel.Timer` per lease.  The legacy regime is
#: kept as the measured baseline of the ``kernel_timer_churn`` perf
#: contrast — captured per :class:`LeaseTable` at construction.
_FAST_PATH = True


@contextmanager
def lease_fast_path(enabled: bool = True) -> Iterator[None]:
    """Context manager selecting the lease-expiry strategy for tables
    constructed inside the block (benchmark baselines)."""
    global _FAST_PATH
    previous = _FAST_PATH
    _FAST_PATH = enabled
    try:
        yield
    finally:
        _FAST_PATH = previous


@dataclass
class Lease:
    """One granted read lease."""

    workstation: str
    dov_id: str
    granted_at: float
    #: simulated expiry instant; None = no TTL (explicit recall only)
    expires_at: float | None
    #: expiry-bucket instant this lease is currently filed under
    #: (internal; None = not filed)
    bucket: float | None = None


class LeaseTable:
    """The server's lease table: grants, renewals, recalls, expiry.

    All mutators are synchronous bookkeeping; the only kernel activity
    is one expiry-check event per *distinct expiry instant* (label
    ``lease-expiry:<dov>@<ws>`` after the lease that armed it).  When
    the event fires, every lease still filed under that instant is
    settled: expired ones are released (firing :attr:`on_expire`,
    where the server-TM hangs the recall-equivalent invalidation),
    renewed ones are re-filed under their extended instant, and
    released ones are simply skipped — lazy cancellation, no bucket
    surgery.  ``expiry_granularity`` optionally coarsens the bucket
    instants (expiry then fires up to one granule late), trading
    expiry precision for even fewer kernel events.
    """

    def __init__(self, clock: SimClock | None = None,
                 ttl: float | None = None,
                 kernel_source: Callable[[], Any] | None = None,
                 expiry_granularity: float | None = None,
                 owner: str | None = None) -> None:
        self.clock = clock or SimClock()
        #: lease time-to-live (None = leases never expire)
        self.ttl = ttl
        #: zero-arg callable yielding the kernel to arm expiry checks
        #: on (resolved lazily — networks attach their kernel late)
        self._kernel_source = kernel_source
        #: node that owns this table (the server): expiry events file
        #: on its shard so a sharded/parallel deployment keeps lease
        #: settling on the server's worker (None = current shard)
        self.owner = owner
        #: bucket quantum (None/0 = exact per-instant buckets)
        self.expiry_granularity = expiry_granularity
        #: dov_id -> workstation -> lease
        self._holders: dict[str, dict[str, Lease]] = {}
        #: fired with (workstation, dov_id) when a lease expires —
        #: expiry behaves like a recall
        self.on_expire: Callable[[str, str], None] | None = None
        self.grants = 0
        self.renewals = 0
        self.expirations = 0
        #: expiry instant -> leases filed under it (lazily maintained)
        self._buckets: dict[float, list[Lease]] = {}
        #: generation stamp: a server crash (clear) bumps it, so
        #: already-scheduled bucket events of the dead table are inert
        self._epoch = 0
        #: expiry strategy captured at construction (see
        #: :func:`lease_fast_path`); False = one Timer per lease
        self._bucketed = _FAST_PATH
        #: legacy regime only: one re-armable expiry timer per
        #: (workstation, dov_id)
        self._timers: dict[tuple[str, str], Timer] = {}

    # -- grants -------------------------------------------------------------

    def _kernel(self) -> Any:
        return self._kernel_source() if self._kernel_source else None

    def grant(self, workstation: str, dov_id: str) -> Lease:
        """Grant (or refresh) the lease of *workstation* on *dov_id*.

        Re-granting an existing lease extends it like a renewal would.
        """
        now = self.clock.now
        expires = now + self.ttl if self.ttl is not None else None
        holders = self._holders.setdefault(dov_id, {})
        lease = holders.get(workstation)
        if lease is not None:
            lease.expires_at = expires
        else:
            lease = Lease(workstation, dov_id, now, expires)
            holders[workstation] = lease
            self.grants += 1
        self._file(lease)
        return lease

    def _quantize(self, instant: float) -> float:
        granule = self.expiry_granularity
        if granule:
            return ceil(instant / granule) * granule
        return instant

    def _file(self, lease: Lease) -> None:
        """File *lease* under its expiry instant's bucket.

        One kernel event is scheduled per *new* bucket; same-instant
        leases share it.  Re-filing under the bucket the lease already
        occupies is a no-op (a refresh without a TTL change).
        """
        if lease.expires_at is None:
            return
        if not self._bucketed:
            self._arm(lease)
            return
        instant = self._quantize(lease.expires_at)
        if lease.bucket == instant:
            return
        lease.bucket = instant
        bucket = self._buckets.get(instant)
        if bucket is not None:
            bucket.append(lease)
            return
        kernel = self._kernel()
        if kernel is None:
            lease.bucket = None
            return  # no kernel: expiry via expire_due() sweeps
        self._buckets[instant] = [lease]
        epoch = self._epoch
        # bucket events are the owner's work: file them on its shard
        # (merge order is shard-agnostic, so this cannot perturb the
        # trace — it only keeps lease settling on the owning worker)
        with kernel.filing_on(kernel.shard_of(self.owner)) \
                if self.owner is not None else _NULL_SCOPE:
            kernel.defer(max(instant - self.clock.now, 0.0),
                         lambda: self._on_bucket(instant, epoch),
                         label=f"lease-expiry:{lease.dov_id}"
                               f"@{lease.workstation}")

    def _on_bucket(self, instant: float, epoch: int) -> None:
        """Settle every lease filed under *instant* (the bucket event).

        Expired leases are released; renewed ones re-filed under their
        extended instant; moved/released ones skipped.
        """
        if epoch != self._epoch:
            return  # the table this bucket belonged to was cleared
        now = self.clock.now
        for lease in self._buckets.pop(instant, ()):
            if lease.bucket != instant:
                continue  # moved to a later bucket meanwhile
            current = self._holders.get(lease.dov_id, {}) \
                .get(lease.workstation)
            if current is not lease or lease.expires_at is None:
                continue  # released/recalled, or TTL switched off
            lease.bucket = None
            if lease.expires_at > now + _EPS:
                self._file(lease)  # renewed: check again later
            else:
                self._expire(lease)

    def _arm(self, lease: Lease) -> None:
        """Legacy (pre-wheel) expiry: one re-armable Timer per lease.

        Kept as the measured baseline of the ``kernel_timer_churn``
        benchmark — every live lease is one heap entry, every renewal
        eventually costs a no-op check event.
        """
        key = (lease.workstation, lease.dov_id)
        timer = self._timers.get(key)
        if timer is None:
            kernel = self._kernel()
            if kernel is None:
                return  # no kernel: expiry via expire_due() sweeps
            timer = Timer(kernel, lambda: self._on_timer(key),
                          label=f"lease-expiry:{lease.dov_id}"
                                f"@{lease.workstation}")
            self._timers[key] = timer
        kernel = self._kernel()
        with kernel.filing_on(kernel.shard_of(self.owner)) \
                if self.owner is not None and kernel is not None \
                else _NULL_SCOPE:
            timer.arm(lease.expires_at)

    def _on_timer(self, key: tuple[str, str]) -> None:
        workstation, dov_id = key
        lease = self._holders.get(dov_id, {}).get(workstation)
        if lease is None or lease.expires_at is None:
            return  # recalled/released meanwhile, or TTL switched off
        if lease.expires_at > self.clock.now + _EPS:
            self._arm(lease)  # renewed at the timer instant itself
            return
        self._expire(lease)

    def _expire(self, lease: Lease) -> None:
        self.release(lease.workstation, lease.dov_id)
        self.expirations += 1
        if self.on_expire is not None:
            self.on_expire(lease.workstation, lease.dov_id)

    def expire_due(self) -> list[tuple[str, str]]:
        """Kernel-less sweep: expire every overdue lease *now*.

        Returns the expired ``(workstation, dov_id)`` pairs in grant
        order.  Deployments without a kernel (sequential rigs, unit
        tests) call this instead of relying on timer events.
        """
        now = self.clock.now
        due = [lease for holders in self._holders.values()
               for lease in holders.values()
               if lease.expires_at is not None
               and lease.expires_at <= now + _EPS]
        for lease in due:
            self._expire(lease)
        return [(lease.workstation, lease.dov_id) for lease in due]

    # -- renewal ------------------------------------------------------------

    def renew(self, workstation: str, dov_id: str) -> bool:
        """Extend one lease by a fresh TTL; False when it no longer
        exists (a renewal never resurrects an expired lease).

        Lazy re-bucketing: only the expiry instant moves — the armed
        bucket event discovers the extension when it fires.
        """
        lease = self._holders.get(dov_id, {}).get(workstation)
        if lease is None:
            return False
        if self.ttl is not None:
            lease.expires_at = self.clock.now + self.ttl
        self.renewals += 1
        return True

    def renew_workstation(self, workstation: str) -> int:
        """Renew every lease of *workstation* (the metadata-only batch
        renewal message); returns the number of leases extended."""
        renewed = 0
        for holders in self._holders.values():
            if workstation in holders:
                renewed += bool(self.renew(workstation,
                                           holders[workstation].dov_id))
        return renewed

    # -- queries ------------------------------------------------------------

    def holders(self, dov_id: str) -> set[str]:
        """Workstations currently leasing *dov_id*."""
        return set(self._holders.get(dov_id, ()))

    def lease(self, workstation: str, dov_id: str) -> Lease | None:
        """The live lease of *(workstation, dov_id)*, if any."""
        return self._holders.get(dov_id, {}).get(workstation)

    def __len__(self) -> int:
        return sum(len(holders) for holders in self._holders.values())

    # -- recall / release ---------------------------------------------------

    def release(self, workstation: str, dov_id: str) -> bool:
        """Drop one lease (recall, eviction, expiry); True when held.

        Lazy: the lease's bucket entry stays behind and is skipped
        when the bucket event fires — O(1), no event cancellation.
        """
        holders = self._holders.get(dov_id)
        if not holders or workstation not in holders:
            return False
        del holders[workstation]
        if not holders:
            del self._holders[dov_id]
        return True

    def release_all(self, dov_id: str) -> list[str]:
        """Drop every lease on *dov_id* (supersession recall); returns
        the previous holders in grant order."""
        holders = list(self._holders.get(dov_id, ()))
        for workstation in holders:
            self.release(workstation, dov_id)
        return holders

    def drop_workstation(self, workstation: str) -> int:
        """Forget every lease of one workstation (its crash)."""
        dropped = 0
        for dov_id in list(self._holders):
            dropped += bool(self.release(workstation, dov_id))
        return dropped

    def clear(self) -> None:
        """Server crash: the (volatile) lease table vanishes.

        The epoch bump makes every already-scheduled bucket event of
        the dead table inert — it fires, sees a stale epoch, returns.
        """
        self._holders.clear()
        self._buckets.clear()
        self._epoch += 1
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()

    # -- dict-of-sets compatibility ----------------------------------------

    def __setitem__(self, dov_id: str,
                    workstations: Iterable[str]) -> None:
        """Grant leases wholesale (the PR 2 table was a plain
        ``dict[str, set[str]]``; rigs that seeded it directly keep
        working)."""
        for workstation in workstations:
            self.grant(workstation, dov_id)

    # -- stats --------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Snapshot of the lease counters."""
        return {
            "live": len(self),
            "ttl": self.ttl,
            "grants": self.grants,
            "renewals": self.renewals,
            "expirations": self.expirations,
            "expiry_buckets": len(self._buckets),
            "strategy": "bucketed" if self._bucketed else "timer",
        }
