"""The commit gateway: one drive for every commit shape.

Before this layer existed, every commit path re-implemented its own
slice of the protocol: write-through checkin stashed a request, posted
an upload and ran a 2PC; the write-back flush stashed a *group*
request, posted a batch and ran another 2PC; the federation batched
per member with no decision at all.  :class:`CommitGateway` extracts
the shared drive — txn-id allocation, request stashing over the
control RPC, sized payload shipment, and the prepare/decide/complete
run of the :class:`~repro.net.two_phase_commit.TwoPhaseCoordinator` —
so the transaction managers are thin participants: they validate,
stage and apply; the *decision* happens here.

Commit shapes:

* :meth:`CommitGateway.single_checkin` — one write-through checkin
  (one control RPC, one sized upload, one 2PC);
* :meth:`CommitGateway.group_checkin` — a batched group checkin.  With
  one :class:`GroupRequest` this is the per-workstation write-back
  flush; with several it is the **cross-workstation group commit**:
  every workstation posts its own sized batch message, but the
  combined record list is staged as *one* server batch under *one*
  coordinator, *one* decision and *one* forced WAL write.
* :func:`flush_group` — the convenience driver of the cross shape:
  collect the dirty sets of several client-TMs and commit them under
  one decision, then hand each client its slice of the id mapping.

The fourth shape lives one layer down: a **cross-member federation
batch** (:meth:`~repro.repository.federation.FederatedRepository.commit_group`)
runs the same prepare/decide/complete skeleton with the
:class:`~repro.txn.decision_log.GlobalDecisionLog` as its decision
point — homes resolved O(batch) through the placement index, the
decision forced in one coordinator-side write, and the log kept
bounded by the checkpoint frontier
(:meth:`~repro.txn.decision_log.GlobalDecisionLog.checkpoint`), so
the shape survives member *and* coordinator loss without ever
replaying history past the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.net.rpc import TransactionalRpc
from repro.net.two_phase_commit import (
    CommitOutcome,
    CommitProtocol,
    TwoPhaseCoordinator,
)
from repro.repository.versions import payload_sizeof
from repro.util.ids import IdGenerator


@dataclass
class GroupRequest:
    """One workstation's slice of a group commit."""

    workstation: str
    #: deferred checkin records in that workstation's checkin order
    records: list[dict[str, Any]]
    #: modelled payload bytes per record (the batch-message sizes)
    sizes: list[int]


@dataclass
class SingleCommitResult:
    """Outcome of one write-through checkin drive."""

    outcome: CommitOutcome
    dov: Any = None
    reason: str = ""

    @property
    def committed(self) -> bool:
        """True when the decision was COMMIT."""
        return self.outcome.committed


@dataclass
class GroupCommitResult:
    """Outcome of one group-commit drive (single- or cross-shape)."""

    outcome: CommitOutcome
    #: provisional id -> durable id, across every request
    mapping: dict[str, str] = field(default_factory=dict)
    #: the durable versions in batch order
    dovs: list[Any] = field(default_factory=list)
    reason: str = ""

    @property
    def committed(self) -> bool:
        """True when the decision was COMMIT."""
        return self.outcome.committed


@dataclass
class GroupFlushReport:
    """What :func:`flush_group` did, across every participating client."""

    success: bool
    #: checkins shipped under the one decision (all workstations)
    count: int = 0
    #: payload bytes the cross-workstation batch messages carried
    bytes_shipped: int = 0
    #: workstations that contributed dirty records, in client order
    workstations: list[str] = field(default_factory=list)
    #: provisional id -> durable id across every contributor
    mapping: dict[str, str] = field(default_factory=dict)
    reason: str = ""
    outcome: CommitOutcome | None = None


class CommitGateway:
    """Drives the commit protocol from one coordinator node.

    Each client-TM owns a gateway anchored at its workstation; the
    cross-workstation shape reuses the first contributor's gateway as
    the single coordinator of the shared decision.
    """

    def __init__(self, rpc: TransactionalRpc, server_tm: Any,
                 node_id: str,
                 protocol: CommitProtocol = CommitProtocol.PRESUMED_ABORT,
                 ids: IdGenerator | None = None) -> None:
        self.rpc = rpc
        self.server_tm = server_tm
        self.node_id = node_id
        self.ids = ids or IdGenerator()
        self.coordinator = TwoPhaseCoordinator(
            rpc.network, node_id, protocol=protocol)

    def next_txn_id(self) -> str:
        """Allocate the next transaction id of this coordinator."""
        return self.ids.next(f"txn-{self.node_id}")

    # -- single checkin (write-through) -------------------------------------

    def single_checkin(self, da_id: str, dot_name: str,
                       payload: dict[str, Any], lineage: list[str],
                       lease: bool = False,
                       renew: bool = False) -> SingleCommitResult:
        """One write-through checkin: control RPC, sized upload, 2PC.

        With ``renew=True`` the control RPC carries the coordinator
        workstation's lease-renewal metadata (piggybacked — no
        dedicated renewal message).
        """
        txn_id = self.next_txn_id()
        server = self.server_tm
        self.rpc.call(self.node_id, server.node_id, "request_checkin",
                      txn_id, da_id, dot_name, payload, lineage,
                      workstation=self.node_id, lease=lease,
                      renew=renew)
        # the derived data ships workstation -> server (the checkin
        # direction of the data-shipping path; the RPC is control)
        self.rpc.network.post(
            self.node_id, server.node_id, lambda: None,
            label=f"dov-upload:{txn_id}", size=payload_sizeof(payload))
        outcome = self.coordinator.execute(txn_id, [server])
        if not outcome.committed:
            return SingleCommitResult(
                outcome,
                reason=server.checkin_error(txn_id) or "2PC abort")
        dov_id = server.staged_dov(txn_id)
        return SingleCommitResult(outcome,
                                  dov=server.repository.read(dov_id))

    # -- group checkin (per-workstation and cross-workstation) --------------

    def group_checkin(self, requests: Sequence[GroupRequest],
                      lease: bool = True,
                      renew: bool = False) -> GroupCommitResult:
        """Commit one or several workstations' batches as ONE decision.

        One control RPC carries the combined record list; each
        contributing workstation posts its own sized batch message
        (bytes stay attributed to their origin); the server stages the
        whole combined batch all-or-nothing and ONE 2PC decides it —
        so the repository forces its WAL exactly once for the entire
        cross-workstation group.  Records of a cross-shape batch are
        stamped with their origin workstation so the server grants the
        resulting read leases per contributor.
        """
        requests = [r for r in requests if r.records]
        if not requests:
            raise ValueError("group_checkin needs at least one "
                             "non-empty request")
        txn_id = self.next_txn_id()
        server = self.server_tm
        if len(requests) == 1:
            records = requests[0].records
        else:
            records = [dict(record, workstation=request.workstation)
                       for request in requests
                       for record in request.records]
        self.rpc.call(self.node_id, server.node_id,
                      "request_group_checkin", txn_id, records,
                      workstation=self.node_id, lease=lease,
                      renew=renew)
        for request in requests:
            # one sized batch message per contributing workstation
            self.rpc.network.post_batch(
                request.workstation, server.node_id, lambda: None,
                label=f"group-checkin:{txn_id}"
                      + (f":{request.workstation}"
                         if len(requests) > 1 else ""),
                sizes=request.sizes)
        outcome = self.coordinator.execute(txn_id, [server])
        if not outcome.committed:
            return GroupCommitResult(
                outcome,
                reason=server.checkin_error(txn_id) or "2PC abort")
        return GroupCommitResult(outcome,
                                 mapping=server.group_mapping(txn_id),
                                 dovs=server.group_result(txn_id))


def flush_group(clients: Sequence[Any]) -> GroupFlushReport:
    """Cross-workstation group commit of several client-TMs' dirty sets.

    The write-back follow-on the ROADMAP names: instead of each
    workstation flushing under its own coordinator (one 2PC and one
    forced WAL write apiece), the dirty sets of *clients* ship under
    **one** coordinator — the first contributor's gateway — and
    **one** decision.  Every contributing workstation still posts its
    own sized batch message (byte accounting per node is unchanged),
    but the server stages one combined batch and the repository forces
    its WAL once for all of them.  On commit each client rebinds its
    own provisional entries from its slice of the mapping; on abort
    every client keeps its dirty set intact for a later retry — the
    cross-workstation batch is all-or-nothing.

    Clients without a buffer, without write-back, or without dirty
    entries simply do not contribute; with no contributors at all the
    report is a trivial success.
    """
    active = [client for client in clients
              if getattr(client, "write_back", False)
              and client.buffer is not None
              and client.buffer.dirty_count
              and not client.flushing]
    if not active:
        return GroupFlushReport(True)
    requests: list[GroupRequest] = []
    try:
        for client in active:
            client.flushing = True
            records, sizes = client.collect_flush_records()
            requests.append(GroupRequest(client.workstation, records,
                                         sizes))
        gateway: CommitGateway = active[0].gateway
        result = gateway.group_checkin(requests, lease=True)
        count = sum(len(request.records) for request in requests)
        shipped = sum(sum(request.sizes) for request in requests)
        if not result.committed:
            for client, request in zip(active, requests):
                client.fail_flush(request.records, result.reason)
            return GroupFlushReport(
                False, count=count, bytes_shipped=shipped,
                workstations=[r.workstation for r in requests],
                reason=result.reason, outcome=result.outcome)
        for client, request in zip(active, requests):
            client.apply_flush_commit(request.records, request.sizes,
                                      result.mapping, result.dovs)
        return GroupFlushReport(
            True, count=count, bytes_shipped=shipped,
            workstations=[r.workstation for r in requests],
            mapping=dict(result.mapping), outcome=result.outcome)
    finally:
        for client in active:
            client.flushing = False
