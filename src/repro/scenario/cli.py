"""``python -m repro scenario ...`` / ``python -m repro trace ...``.

The command surface of the scenario DSL and the trace oracle:

* ``scenario run <file.toml> [--shards N] [--parallel]`` — compile and
  execute a scenario file, printing its report (``--parallel`` runs the
  shards on spawned worker processes);
* ``scenario validate <file.toml>`` — schema-check only;
* ``scenario list`` / ``scenario dump <name>`` — the shipped canonical
  library (``dump`` prints the exact TOML the repo ships);
* ``trace record <file.toml> [-o out.jsonl] [--compat] [--shards N]
  [--parallel]`` — run a scenario and persist its full kernel event
  stream (``.jsonl.gz`` outputs are gzipped deterministically);
* ``trace replay <trace.jsonl> [--compat] [--shards N] [--parallel]``
  — re-run the embedded scenario against the selected build and diff
  the streams (exit 1 on divergence: the CI regression gate); on
  success the verdict names the exact build-flag/shard combination
  that was replayed;
* ``trace diff <a.jsonl> <b.jsonl>`` — structural diff of two trace
  files with a first-divergence report.
"""

from __future__ import annotations

import sys
from dataclasses import fields, is_dataclass
from typing import Any

from repro.scenario.compiler import canonical_scenarios, compile_scenario
from repro.scenario.schema import (
    ScenarioError,
    dump_scenario,
    load_scenario,
)
from repro.util.errors import KernelError
from repro.sim.trace import (
    BuildFlags,
    TraceError,
    build_description,
    diff_traces,
    load_trace,
    record_scenario,
    replay_trace,
    save_trace,
)


def _print_report(name: str, report: Any) -> None:
    print(f"scenario {name}:")
    if is_dataclass(report):
        for spec in fields(report):
            value = getattr(report, spec.name)
            if spec.name == "signature" and isinstance(value, tuple) \
                    and value:
                value = f"({value[0]} events, final t={value[1]})"
            print(f"  {spec.name} = {value}")
    else:
        print(f"  {report}")


def _pop_flag(args: list[str], flag: str) -> bool:
    if flag in args:
        args.remove(flag)
        return True
    return False


def _pop_option(args: list[str], option: str) -> str | None:
    if option not in args:
        return None
    index = args.index(option)
    try:
        value = args[index + 1]
    except IndexError:
        raise ScenarioError(f"{option} needs a value") from None
    del args[index:index + 2]
    return value


def _parse_shards(args: list[str]) -> int | None:
    raw = _pop_option(args, "--shards")
    if raw is None:
        return None
    try:
        shards = int(raw)
    except ValueError:
        raise ScenarioError(
            f"--shards: expected an integer, got {raw!r}") from None
    if shards < 1:
        raise ScenarioError(f"--shards: must be >= 1, got {shards}")
    return shards


def scenario_main(argv: list[str]) -> int:
    """Entry point of the ``scenario`` subcommand."""
    usage = ("usage: python -m repro scenario "
             "{run <file.toml> [--shards N] [--parallel] | "
             "validate <file.toml> | list | dump <name>}")
    try:
        if not argv:
            print(usage)
            return 2
        command, rest = argv[0], list(argv[1:])
        if command == "run":
            parallel = _pop_flag(rest, "--parallel")
            shards = _parse_shards(rest)
            if len(rest) != 1:
                print(usage)
                return 2
            config = load_scenario(rest[0])
            if parallel or config.parallel:
                from repro.sim.parallel import run_scenario_replicated

                result = run_scenario_replicated(config, shards=shards)
                _print_report(config.name, result.stats["report"])
                print(f"parallel: {result.stats['workers']} worker "
                      f"processes over {result.stats['shards']} "
                      f"shards, {result.executed} events merged")
            else:
                report = compile_scenario(config).run(shards=shards)
                _print_report(config.name, report)
            return 0
        if command == "validate":
            if len(rest) != 1:
                print(usage)
                return 2
            config = load_scenario(rest[0])
            print(f"OK: {config.name} (kind={config.kind}, "
                  f"seed={config.seed})")
            return 0
        if command == "list":
            for name, config in canonical_scenarios().items():
                description = config.get("scenario", "description")
                print(f"{name}: {config.kind}  {description}")
            return 0
        if command == "dump":
            if len(rest) != 1:
                print(usage)
                return 2
            library = canonical_scenarios()
            if rest[0] not in library:
                raise ScenarioError(
                    f"unknown canonical scenario {rest[0]!r} "
                    f"(available: {', '.join(library)})")
            print(dump_scenario(library[rest[0]]), end="")
            return 0
        print(usage)
        return 2
    except (ScenarioError, KernelError) as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 2


def trace_main(argv: list[str]) -> int:
    """Entry point of the ``trace`` subcommand."""
    usage = ("usage: python -m repro trace "
             "{record <file.toml> [-o out.jsonl[.gz]] [--compat] "
             "[--shards N] [--parallel] | replay <trace.jsonl> "
             "[--compat] [--shards N] [--parallel] | "
             "diff <a.jsonl> <b.jsonl>}")
    try:
        if not argv:
            print(usage)
            return 2
        command, rest = argv[0], list(argv[1:])
        if command == "record":
            compat = _pop_flag(rest, "--compat")
            parallel = _pop_flag(rest, "--parallel") or None
            shards = _parse_shards(rest)
            out = _pop_option(rest, "-o") or _pop_option(rest, "--out")
            if len(rest) != 1:
                print(usage)
                return 2
            config = load_scenario(rest[0])
            flags = BuildFlags.compat() if compat else BuildFlags()
            trace = record_scenario(config, flags=flags, shards=shards,
                                    parallel=parallel)
            if out is None:
                out = f"{config.name}.trace.jsonl"
            save_trace(trace, out)
            print(f"recorded {len(trace.events)} events "
                  f"(final t={trace.final_time}) -> {out}")
            return 0
        if command == "replay":
            compat = _pop_flag(rest, "--compat")
            parallel = _pop_flag(rest, "--parallel")
            shards = _parse_shards(rest)
            if len(rest) != 1:
                print(usage)
                return 2
            trace = load_trace(rest[0])
            flags = BuildFlags.compat() if compat \
                else BuildFlags.from_dict(trace.meta.get("flags", {}))
            if shards is None:
                shards = int(trace.meta.get("shards", 1))
            if not parallel:
                parallel = bool(trace.meta.get("parallel", False))
            diff = replay_trace(trace, flags=flags, shards=shards,
                                parallel=parallel)
            print(diff.render())
            if diff.identical:
                print(f"SUCCESS [{build_description(flags, shards, parallel)}]")
            return 0 if diff.identical else 1
        if command == "diff":
            if len(rest) != 2:
                print(usage)
                return 2
            diff = diff_traces(load_trace(rest[0]), load_trace(rest[1]))
            print(diff.render())
            return 0 if diff.identical else 1
        print(usage)
        return 2
    except (ScenarioError, TraceError, KernelError) as exc:
        print(f"trace error: {exc}", file=sys.stderr)
        return 2
