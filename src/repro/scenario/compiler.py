"""Compile validated scenario configs to the concrete runners.

The compiler is the bridge between the DSL and the hand-written
scenario functions in :mod:`repro.bench.scenarios` (and the campaign
soak in :mod:`repro.scenario.campaign`): each scenario *kind* maps the
canonical tables onto one runner's keyword arguments.  Compilation is
pure — a :class:`CompiledScenario` holds only the frozen config and a
kind entry, and every :meth:`CompiledScenario.run` builds the entire
world (kernel, network, repository, RNG streams) from scratch, so
back-to-back runs of the same compiled scenario are byte-identical
and never bleed state into each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.scenario.schema import ScenarioConfig, ScenarioError
from repro.sim.kernel import Kernel


def _ttl(config: ScenarioConfig) -> float | None:
    """The [leases].ttl knob: 0 means leases stay recall-only."""
    ttl = config.get("leases", "ttl")
    return ttl if ttl > 0.0 else None


def _run_object_buffers(config: ScenarioConfig, shards: int,
                        on_kernel: Callable[[Kernel], None] | None
                        ) -> Any:
    from repro.bench.scenarios import object_buffer_scenario

    return object_buffer_scenario(
        team=config.get("team", "size"),
        steps_per_session=config.get("team", "steps_per_session"),
        mean_step=config.get("team", "mean_step"),
        seed=config.seed,
        caching=config.get("buffers", "caching"),
        reread_locality=config.get("locality", "reread"),
        write_mix=config.get("writes", "ratio"),
        reads_per_step=config.get("locality", "reads_per_step"),
        object_pool=config.get("objects", "pool"),
        payload_bytes=config.get("objects", "payload_bytes"),
        bandwidth=config.get("traffic", "bandwidth"),
        lan_latency=config.get("traffic", "lan_latency"),
        jitter=config.get("traffic", "jitter"),
        shards=shards,
        lease_ttl=_ttl(config),
        on_kernel=on_kernel)


def _run_write_back(config: ScenarioConfig, shards: int,
                    on_kernel: Callable[[Kernel], None] | None) -> Any:
    from repro.bench.scenarios import write_back_scenario

    return write_back_scenario(
        team=config.get("team", "size"),
        steps_per_session=config.get("team", "steps_per_session"),
        mean_step=config.get("team", "mean_step"),
        seed=config.seed,
        write_back=config.get("writes", "write_back"),
        write_ratio=config.get("writes", "ratio"),
        reads_per_step=config.get("locality", "reads_per_step"),
        reread_locality=config.get("locality", "reread"),
        object_pool=config.get("objects", "pool"),
        payload_bytes=config.get("objects", "payload_bytes"),
        bandwidth=config.get("traffic", "bandwidth"),
        lan_latency=config.get("traffic", "lan_latency"),
        jitter=config.get("traffic", "jitter"),
        flush_interval=config.get("writes", "flush_interval"),
        restart=config.get("crashes", "server_restart"),
        shards=shards,
        lease_ttl=_ttl(config),
        on_kernel=on_kernel)


def _run_concurrent_delegation(config: ScenarioConfig, shards: int,
                               on_kernel: Callable[[Kernel], None]
                               | None) -> Any:
    from repro.bench.scenarios import concurrent_delegation_scenario

    schedule = config.get("crashes", "schedule")
    if len(schedule) > 1:
        raise ScenarioError(
            "[crashes].schedule: concurrent_delegation compiles at "
            "most one crash entry")
    crash = None
    if schedule:
        entry = schedule[0]
        crash = (entry["node"], entry["at"], entry["restart_after"])
    __, report = concurrent_delegation_scenario(
        subcells=tuple(config.get("team", "subcells")),
        concurrent=True,
        crash=crash,
        jitter=config.get("traffic", "jitter"),
        seed=config.seed,
        shards=shards,
        on_kernel=on_kernel)
    return report


def _run_campaign(config: ScenarioConfig, shards: int,
                  on_kernel: Callable[[Kernel], None] | None) -> Any:
    from repro.scenario.campaign import design_campaign_scenario

    return design_campaign_scenario(
        team=config.get("team", "size"),
        steps_per_session=config.get("team", "steps_per_session"),
        mean_step=config.get("team", "mean_step"),
        seed=config.seed,
        days=config.get("campaign", "days"),
        sessions_per_day=config.get("campaign", "sessions_per_day"),
        day_length=config.get("campaign", "day_length"),
        diurnal_peak=config.get("campaign", "diurnal_peak"),
        churn=config.get("campaign", "churn"),
        object_pool=config.get("objects", "pool"),
        payload_bytes=config.get("objects", "payload_bytes"),
        hotspots=config.get("objects", "hotspots"),
        hotspot_bias=config.get("objects", "hotspot_bias"),
        reads_per_step=config.get("locality", "reads_per_step"),
        reread_locality=config.get("locality", "reread"),
        write_ratio=config.get("writes", "ratio"),
        caching=config.get("buffers", "caching"),
        bandwidth=config.get("traffic", "bandwidth"),
        lan_latency=config.get("traffic", "lan_latency"),
        jitter=config.get("traffic", "jitter"),
        lease_ttl=_ttl(config),
        shards=shards,
        on_kernel=on_kernel)


def _run_federated_commit(config: ScenarioConfig, shards: int,
                          on_kernel: Callable[[Kernel], None] | None
                          ) -> Any:
    """The T10 crash matrix as a scenario: every crash placement of
    the federated atomic commit on one config, plus the
    all-or-nothing verdict.  The federation runs outside the kernel
    (its crashes are injected directly), so *shards*/*on_kernel* have
    nothing to hook."""
    from dataclasses import asdict

    from repro.bench.scenarios import federated_commit_scenario

    reports = {
        crash: asdict(federated_commit_scenario(
            crash=crash,
            members=config.get("federation", "members"),
            batches=config.get("federation", "batches"),
            seed=config.seed,
            placement=config.get("federation", "placement")))
        for crash in ("none", "before", "after", "coordinator")}
    states = {crash: report["state"]
              for crash, report in reports.items()}
    return {
        "crashes": reports,
        "states_identical":
            len({tuple(state) for state in states.values()}) == 1,
    }


#: kind -> runner adapter (the compiler's whole dispatch table)
KIND_RUNNERS: dict[str, Callable[..., Any]] = {
    "object_buffers": _run_object_buffers,
    "write_back": _run_write_back,
    "concurrent_delegation": _run_concurrent_delegation,
    "campaign": _run_campaign,
    "federated_commit": _run_federated_commit,
}


@dataclass(frozen=True)
class CompiledScenario:
    """A scenario bound to its runner, ready to execute.

    ``run`` may be called any number of times; each call builds a
    fresh world from the frozen config (the no-state-leakage
    guarantee the DSL tests pin down).
    """

    config: ScenarioConfig

    def run(self, shards: int | None = None,
            on_kernel: Callable[[Kernel], None] | None = None) -> Any:
        """Execute the scenario and return its report.

        *shards* overrides the config's ``[kernel].shards`` (the
        trace replayer uses this to re-execute a recorded run on a
        different kernel layout); *on_kernel* is invoked with the
        run's kernel as soon as it exists, before any event executes
        — the capture hook of :mod:`repro.sim.trace`.
        """
        runner = KIND_RUNNERS[self.config.kind]
        return runner(self.config,
                      self.config.shards if shards is None else shards,
                      on_kernel)


def compile_scenario(config: ScenarioConfig) -> CompiledScenario:
    """Bind *config* to its kind's runner."""
    if config.kind not in KIND_RUNNERS:
        raise ScenarioError(
            f"[scenario].kind: no runner for {config.kind!r}")
    return CompiledScenario(config=config)


def canonical_scenarios() -> dict[str, ScenarioConfig]:
    """The shipped scenario library, as in-code source of truth.

    The ``scenarios/*.toml`` files in the repository are the dumped
    form of exactly these configs — a sync test asserts the files
    equal ``dump_scenario`` of each entry, so the library cannot
    drift from the DSL.
    """
    from repro.scenario.schema import validate_scenario

    return {
        "t7_concurrent_team": validate_scenario({
            "scenario": {
                "name": "t7-concurrent-team",
                "kind": "concurrent_delegation",
                "description": "Fig.5 team: three delegated subcell "
                               "planners interleaved on one kernel",
                "seed": 0,
            },
            "team": {"subcells": ["A", "B", "C"]},
        }),
        "t8_object_buffers": validate_scenario({
            "scenario": {
                "name": "t8-object-buffers",
                "kind": "object_buffers",
                "description": "T8 data shipping: cached re-reads vs "
                               "re-shipped payloads",
                "seed": 11,
            },
            "team": {"size": 3, "steps_per_session": 4,
                     "mean_step": 60.0},
            "objects": {"pool": 4, "payload_bytes": 4000},
            "locality": {"reads_per_step": 2, "reread": 0.6},
            "writes": {"ratio": 0.3},
            "buffers": {"caching": True},
            "traffic": {"bandwidth": 400.0, "lan_latency": 0.05},
        }),
        "t9_write_back": validate_scenario({
            "scenario": {
                "name": "t9-write-back",
                "kind": "write_back",
                "description": "T9 write-back: staged dirty checkins "
                               "group-flushed at End-of-DOP",
                "seed": 13,
            },
            "team": {"size": 3, "steps_per_session": 4,
                     "mean_step": 60.0},
            "objects": {"pool": 4, "payload_bytes": 4000},
            "locality": {"reads_per_step": 2, "reread": 0.6},
            "writes": {"ratio": 0.6, "write_back": True},
            "crashes": {"server_restart": True},
        }),
        "t9_write_through": validate_scenario({
            "scenario": {
                "name": "t9-write-through",
                "kind": "write_back",
                "description": "T9 reference: every checkin ships "
                               "eagerly through its own 2PC",
                "seed": 13,
            },
            "team": {"size": 3, "steps_per_session": 4,
                     "mean_step": 60.0},
            "objects": {"pool": 4, "payload_bytes": 4000},
            "locality": {"reads_per_step": 2, "reread": 0.6},
            "writes": {"ratio": 0.6, "write_back": False},
            "crashes": {"server_restart": True},
        }),
        "t10_federated_commit": validate_scenario({
            "scenario": {
                "name": "t10-federated-commit",
                "kind": "federated_commit",
                "description": "T10 crash matrix: cross-member "
                               "batches under member/coordinator "
                               "crashes converge to one durable "
                               "state",
                "seed": 17,
            },
            "federation": {"members": 3, "placement": "directory",
                           "batches": 4},
        }),
        "campaign_design_week": validate_scenario({
            "scenario": {
                "name": "campaign-design-week",
                "kind": "campaign",
                "description": "soak: a five-day design week with "
                               "diurnal load, hotspot objects and "
                               "designer churn",
                "seed": 29,
            },
            "team": {"size": 4, "steps_per_session": 3,
                     "mean_step": 40.0},
            "objects": {"pool": 6, "payload_bytes": 4000,
                        "hotspots": 2, "hotspot_bias": 0.5},
            "locality": {"reads_per_step": 2, "reread": 0.5},
            "writes": {"ratio": 0.3},
            "leases": {"ttl": 120.0},
            "campaign": {"days": 5, "sessions_per_day": 3,
                         "day_length": 480.0, "diurnal_peak": 2.0,
                         "churn": 0.25},
        }),
    }
