"""The scenario DSL: TOML definitions, validation, serialisation.

Workloads used to be hand-coded python in ``repro.bench.scenarios``;
this module makes them **data**.  A scenario file is plain TOML in a
fixed table layout (team shape, object pool, locality, write mix,
traffic profile, crash schedule, flush/lease knobs — see
``docs/scenarios.md`` for the full reference)::

    [scenario]
    name = "t8-object-buffers"
    kind = "object_buffers"
    seed = 11

    [team]
    size = 3
    steps_per_session = 4

Parsing is strict: every diagnostic names the offending TOML table and
key (``[locality].reread: 1.4 above the maximum 1.0``), unknown tables
and keys are rejected, and a validated :class:`ScenarioConfig` is
fully defaulted and canonical — ``parse(dumps(config)) == config`` for
every valid config (the round-trip property the DSL tests pin down).
Validation never mutates shared state, so configs can be parsed,
compiled and re-serialised back to back in one process.
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.util.errors import ConcordError


class ScenarioError(ConcordError):
    """A scenario definition that does not satisfy the schema."""


#: the scenario kinds the compiler knows (see repro.scenario.compiler)
SCENARIO_KINDS = ("object_buffers", "write_back",
                  "concurrent_delegation", "campaign",
                  "federated_commit")


@dataclass(frozen=True)
class _Key:
    """Declarative spec of one ``table.key`` entry."""

    type: type
    default: Any
    required: bool = False
    lo: float | None = None
    hi: float | None = None
    choices: tuple[str, ...] | None = None
    #: element type for list-valued keys (str, or dict for the crash
    #: schedule's array-of-tables)
    item: type | None = None
    doc: str = ""


#: the full DSL schema: table -> key -> spec.  Order is the canonical
#: serialisation order of :func:`dump_scenario`.
SCENARIO_SCHEMA: dict[str, dict[str, _Key]] = {
    "scenario": {
        "name": _Key(str, "", required=True,
                     doc="artifact/report identifier"),
        "kind": _Key(str, "", required=True, choices=SCENARIO_KINDS,
                     doc="which runner the config compiles to"),
        "description": _Key(str, "", doc="free-form one-liner"),
        "seed": _Key(int, 0, lo=0, doc="the run's only RNG seed"),
    },
    "kernel": {
        "shards": _Key(int, 1, lo=1,
                       doc="kernel event-loop shards (1 = plain)"),
        "parallel": _Key(bool, False,
                         doc="run shards on spawned worker processes "
                             "(needs shards >= 2)"),
    },
    "team": {
        "size": _Key(int, 3, lo=1, doc="designers (one ws each)"),
        "steps_per_session": _Key(int, 4, lo=1),
        "mean_step": _Key(float, 60.0, lo=1e-9,
                          doc="mean tool-step duration"),
        "subcells": _Key(list, [], item=str,
                         doc="delegation targets "
                             "(concurrent_delegation only)"),
    },
    "objects": {
        "pool": _Key(int, 4, lo=1, doc="shared library objects"),
        "payload_bytes": _Key(int, 4000, lo=0),
        "hotspots": _Key(int, 0, lo=0,
                         doc="skewed-popularity subset (campaign)"),
        "hotspot_bias": _Key(float, 0.0, lo=0.0, hi=1.0,
                             doc="P(read hits a hotspot)"),
    },
    "locality": {
        "reads_per_step": _Key(int, 2, lo=0),
        "reread": _Key(float, 0.6, lo=0.0, hi=1.0,
                       doc="P(read revisits the working set)"),
    },
    "writes": {
        "ratio": _Key(float, 0.3, lo=0.0, hi=1.0,
                      doc="P(step checks in a derived version)"),
        "write_back": _Key(bool, False,
                           doc="stage dirty + group-flush vs eager"),
        "flush_interval": _Key(int, 0, lo=0,
                               doc="deferred checkins per mid-DOP "
                                   "flush (0 = End-of-DOP only)"),
    },
    "buffers": {
        "caching": _Key(bool, True,
                        doc="workstation object buffers on/off"),
    },
    "traffic": {
        "bandwidth": _Key(float, 400.0, lo=1e-9,
                          doc="LAN bytes per time unit"),
        "lan_latency": _Key(float, 0.05, lo=0.0),
        "jitter": _Key(float, 0.0, lo=0.0),
    },
    "leases": {
        "ttl": _Key(float, 0.0, lo=0.0,
                    doc="TTL-renewal leases (0 = recall-only)"),
    },
    "federation": {
        "members": _Key(int, 1, lo=1,
                        doc="member repositories "
                            "(federated_commit only, >= 2 there)"),
        "placement": _Key(str, "directory",
                          choices=("directory", "hash"),
                          doc="DA placement: explicit/round-robin "
                              "directory vs consistent-hash ring"),
        "batches": _Key(int, 4, lo=1,
                        doc="cross-member commit batches per crash "
                            "case"),
    },
    "crashes": {
        "schedule": _Key(list, [], item=dict,
                         doc="[[crashes.schedule]] node/at/"
                             "restart_after entries"),
        "server_restart": _Key(bool, True,
                               doc="seeded server restart + "
                                   "revalidation episode (write_back)"),
    },
    "campaign": {
        "days": _Key(int, 5, lo=1),
        "sessions_per_day": _Key(int, 3, lo=1),
        "day_length": _Key(float, 480.0, lo=1e-9,
                           doc="simulated time units per day"),
        "diurnal_peak": _Key(float, 2.0, lo=1.0,
                             doc="midday load multiplier"),
        "churn": _Key(float, 0.2, lo=0.0, hi=1.0,
                      doc="fraction of designers replaced per day"),
    },
}

#: keys of one [[crashes.schedule]] entry
_SCHEDULE_KEYS: dict[str, _Key] = {
    "node": _Key(str, "", required=True),
    "at": _Key(float, 0.0, required=True, lo=0.0),
    "restart_after": _Key(float, 1.0, lo=0.0),
}


@dataclass(frozen=True)
class ScenarioConfig:
    """A validated, fully-defaulted scenario definition.

    Frozen by design: compiling or serialising a config cannot bleed
    state into the next run.  ``tables`` holds every schema table with
    every key present (defaults filled in), in canonical form.
    """

    tables: dict[str, dict[str, Any]] = field(default_factory=dict)

    def __getitem__(self, table: str) -> dict[str, Any]:
        return self.tables[table]

    def get(self, table: str, key: str) -> Any:
        return self.tables[table][key]

    # -- convenience accessors -------------------------------------------

    @property
    def name(self) -> str:
        return self.tables["scenario"]["name"]

    @property
    def kind(self) -> str:
        return self.tables["scenario"]["kind"]

    @property
    def seed(self) -> int:
        return self.tables["scenario"]["seed"]

    @property
    def shards(self) -> int:
        return self.tables["kernel"]["shards"]

    @property
    def parallel(self) -> bool:
        return self.tables["kernel"]["parallel"]

    def as_tables(self) -> dict[str, dict[str, Any]]:
        """A deep, mutation-safe copy of the canonical table form
        (what trace headers embed)."""
        return json.loads(json.dumps(self.tables))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ScenarioConfig) \
            and self.tables == other.tables

    def __hash__(self) -> int:  # frozen dataclass wants one
        return hash(json.dumps(self.tables, sort_keys=True))


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

def _check_value(table: str, key: str, spec: _Key, value: Any) -> Any:
    """Type/range-check one value; returns its canonical form."""
    where = f"[{table}].{key}"
    if spec.type is float:
        if type(value) is bool or not isinstance(value, (int, float)):
            raise ScenarioError(
                f"{where}: expected a number, got {value!r}")
        value = float(value)
    elif spec.type is int:
        if type(value) is bool or not isinstance(value, int):
            raise ScenarioError(
                f"{where}: expected an integer, got {value!r}")
    elif spec.type is bool:
        if type(value) is not bool:
            raise ScenarioError(
                f"{where}: expected true/false, got {value!r}")
    elif spec.type is str:
        if not isinstance(value, str):
            raise ScenarioError(
                f"{where}: expected a string, got {value!r}")
    elif spec.type is list:
        if not isinstance(value, list):
            raise ScenarioError(
                f"{where}: expected an array, got {value!r}")
        if spec.item is str:
            bad = [v for v in value if not isinstance(v, str)]
            if bad:
                raise ScenarioError(
                    f"{where}: expected an array of strings, got "
                    f"{bad[0]!r}")
            value = list(value)
        elif spec.item is dict:
            value = [_check_schedule_entry(table, key, i, entry)
                     for i, entry in enumerate(value)]
    if spec.lo is not None and isinstance(value, (int, float)) \
            and value < spec.lo:
        raise ScenarioError(
            f"{where}: {value!r} below the minimum {spec.lo!r}")
    if spec.hi is not None and isinstance(value, (int, float)) \
            and value > spec.hi:
        raise ScenarioError(
            f"{where}: {value!r} above the maximum {spec.hi!r}")
    if spec.choices is not None and value not in spec.choices:
        raise ScenarioError(
            f"{where}: {value!r} is not one of "
            f"{', '.join(spec.choices)}")
    return value


def _check_schedule_entry(table: str, key: str, index: int,
                          entry: Any) -> dict[str, Any]:
    where = f"[{table}].{key}[{index}]"
    if not isinstance(entry, dict):
        raise ScenarioError(f"{where}: expected a table, got {entry!r}")
    unknown = set(entry) - set(_SCHEDULE_KEYS)
    if unknown:
        raise ScenarioError(
            f"{where}: unknown key {sorted(unknown)[0]!r} "
            f"(known: {', '.join(_SCHEDULE_KEYS)})")
    out: dict[str, Any] = {}
    for name, spec in _SCHEDULE_KEYS.items():
        if name not in entry:
            if spec.required:
                raise ScenarioError(f"{where}: missing required key "
                                    f"{name!r}")
            out[name] = spec.default
        else:
            out[name] = _check_value(table, f"{key}[{index}].{name}",
                                     spec, entry[name])
    return out


def validate_scenario(raw: dict[str, Any]) -> ScenarioConfig:
    """Validate a raw table dict into a canonical config.

    Every diagnostic names the offending table (and key, where one is
    involved); unknown tables/keys are errors, not warnings — a typo in
    a scenario file must never silently fall back to a default.
    """
    if not isinstance(raw, dict):
        raise ScenarioError(f"scenario definition must be a table of "
                            f"tables, got {raw!r}")
    unknown_tables = set(raw) - set(SCENARIO_SCHEMA)
    if unknown_tables:
        raise ScenarioError(
            f"unknown table [{sorted(unknown_tables)[0]}] "
            f"(known: {', '.join(SCENARIO_SCHEMA)})")
    tables: dict[str, dict[str, Any]] = {}
    for table, keys in SCENARIO_SCHEMA.items():
        given = raw.get(table, {})
        if not isinstance(given, dict):
            raise ScenarioError(
                f"[{table}] must be a table, got {given!r}")
        unknown = set(given) - set(keys)
        if unknown:
            raise ScenarioError(
                f"[{table}]: unknown key {sorted(unknown)[0]!r} "
                f"(known: {', '.join(keys)})")
        out: dict[str, Any] = {}
        for key, spec in keys.items():
            if key not in given:
                if spec.required:
                    raise ScenarioError(
                        f"[{table}]: missing required key {key!r}")
                out[key] = json.loads(json.dumps(spec.default))
            else:
                out[key] = _check_value(table, key, spec, given[key])
        tables[table] = out
    config = ScenarioConfig(tables=tables)
    _check_kind_constraints(config)
    return config


def _check_kind_constraints(config: ScenarioConfig) -> None:
    """Cross-table rules that depend on the scenario kind."""
    kind = config.kind
    if kind == "concurrent_delegation":
        if not config.get("team", "subcells"):
            raise ScenarioError(
                "[team].subcells: kind 'concurrent_delegation' needs "
                "at least one subcell")
    elif config.get("team", "subcells"):
        raise ScenarioError(
            f"[team].subcells: only kind 'concurrent_delegation' "
            f"delegates subcells (kind is {kind!r})")
    if config.get("crashes", "schedule") \
            and kind != "concurrent_delegation":
        raise ScenarioError(
            f"[crashes].schedule: crash injection is only compiled "
            f"for kind 'concurrent_delegation' (kind is {kind!r}; "
            f"write_back kinds use [crashes].server_restart)")
    if config.get("objects", "hotspot_bias") > 0.0 \
            and config.get("objects", "hotspots") == 0:
        raise ScenarioError(
            "[objects].hotspot_bias: set [objects].hotspots > 0 to "
            "give the bias a target set")
    if config.get("objects", "hotspots") > config.get("objects", "pool"):
        raise ScenarioError(
            "[objects].hotspots: cannot exceed [objects].pool")
    if config.get("kernel", "parallel") \
            and config.get("kernel", "shards") < 2:
        raise ScenarioError(
            "[kernel].parallel: multi-process execution needs "
            "[kernel].shards >= 2 (one worker per shard)")
    if kind == "federated_commit":
        if config.get("federation", "members") < 2:
            raise ScenarioError(
                "[federation].members: kind 'federated_commit' needs "
                "at least 2 members (cross-member batches)")
    elif config.get("federation", "members") != 1:
        raise ScenarioError(
            f"[federation].members: only kind 'federated_commit' "
            f"runs a federation (kind is {kind!r})")


# ---------------------------------------------------------------------------
# parse / serialise
# ---------------------------------------------------------------------------

def parse_scenario(text: str) -> ScenarioConfig:
    """Parse and validate scenario TOML source."""
    try:
        raw = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ScenarioError(f"invalid TOML: {exc}") from exc
    return validate_scenario(raw)


def load_scenario(path: str | Path) -> ScenarioConfig:
    """Load and validate a ``.toml`` scenario file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ScenarioError(
            f"cannot read scenario {path}: {exc}") from exc
    try:
        return parse_scenario(text)
    except ScenarioError as exc:
        raise ScenarioError(f"{path}: {exc}") from exc


def _toml_value(value: Any) -> str:
    """Render one canonical config value as TOML."""
    if type(value) is bool:
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        # TOML floats need a dot or exponent; repr guarantees one for
        # every non-integral value and '60.0' for integral ones
        return text
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, list):
        if value and isinstance(value[0], dict):
            rows = []
            for entry in value:
                body = ", ".join(f"{k} = {_toml_value(v)}"
                                 for k, v in entry.items())
                rows.append("{ " + body + " }")
            return "[\n    " + ",\n    ".join(rows) + ",\n]"
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise ScenarioError(f"cannot serialise {value!r} to TOML")


def dump_scenario(config: ScenarioConfig) -> str:
    """Serialise a config to canonical TOML.

    Emits every table and key in schema order with its effective value
    — a dumped file is self-documenting and survives
    ``parse(dumps(config)) == config`` byte-stable (the round-trip
    property).
    """
    lines: list[str] = []
    for table, keys in SCENARIO_SCHEMA.items():
        lines.append(f"[{table}]")
        for key in keys:
            lines.append(f"{key} = {_toml_value(config.get(table, key))}")
        lines.append("")
    return "\n".join(lines)
