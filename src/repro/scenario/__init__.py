"""The scenario DSL: TOML workload definitions compiled to runners.

``repro.scenario`` turns the hand-written experiment scenarios into
data: a ``.toml`` file describes the team shape, object pool,
locality, write mix, traffic profile, crash schedule and flush/lease
knobs; :func:`parse_scenario` validates it into a frozen
:class:`ScenarioConfig`; :func:`compile_scenario` binds it to the
concrete runner; and :mod:`repro.sim.trace` records/replays the
resulting kernel event stream as a regression oracle.  See
``docs/scenarios.md`` and the shipped library under ``scenarios/``.
"""

from repro.scenario.campaign import (
    CampaignReport,
    design_campaign_scenario,
)
from repro.scenario.compiler import (
    KIND_RUNNERS,
    CompiledScenario,
    canonical_scenarios,
    compile_scenario,
)
from repro.scenario.schema import (
    SCENARIO_KINDS,
    SCENARIO_SCHEMA,
    ScenarioConfig,
    ScenarioError,
    dump_scenario,
    load_scenario,
    parse_scenario,
    validate_scenario,
)

__all__ = [
    "CampaignReport",
    "CompiledScenario",
    "KIND_RUNNERS",
    "SCENARIO_KINDS",
    "SCENARIO_SCHEMA",
    "ScenarioConfig",
    "ScenarioError",
    "canonical_scenarios",
    "compile_scenario",
    "design_campaign_scenario",
    "dump_scenario",
    "load_scenario",
    "parse_scenario",
    "validate_scenario",
]
