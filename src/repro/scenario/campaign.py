"""The design-campaign soak runner: days of diurnal team load.

Where T8/T9 measure one session burst, a *campaign* runs the same TE
stack (client-TMs, object buffers, server-TM, 2PC checkins, lease
invalidations) for simulated **days**: session start times concentrate
around midday (``diurnal_peak``), a subset of the library is hot
(``hotspots`` / ``hotspot_bias``), and a fraction of the team churns
at each day boundary — the replacement designer starts with a cold
object buffer, which is exactly the warm-cache value the campaign
quantifies.

The whole multi-day plan (start offsets, read sets, durations, write
decisions, churn victims) is drawn from the seed before the first
event runs, so a campaign is as deterministic and replayable as every
other kernel scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.network import Network
from repro.net.rpc import TransactionalRpc
from repro.repository.repository import DesignDataRepository
from repro.repository.schema import (
    AttributeDef,
    AttributeKind,
    DesignObjectType,
)
from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel
from repro.sim.shard import ShardedKernel
from repro.te.locks import LockManager
from repro.te.object_buffer import ObjectBuffer
from repro.te.transaction_manager import (
    ClientTM,
    ServerTM,
    register_server_endpoints,
)
from repro.util.ids import IdGenerator
from repro.util.rng import SeededRng


@dataclass
class CampaignReport:
    """Chronicle of one multi-day design-campaign soak."""

    days: int = 0
    team: int = 0
    #: designer sessions completed / tool steps executed
    sessions: int = 0
    steps: int = 0
    #: simulated completion time of the whole campaign
    makespan: float = 0.0
    bytes_shipped: int = 0
    messages: int = 0
    hits: int = 0
    misses: int = 0
    hit_rate: float = 0.0
    #: reads that landed on the hotspot subset
    hotspot_reads: int = 0
    checkins: int = 0
    invalidations_sent: int = 0
    invalidations_applied: int = 0
    #: day-boundary churn events (each clears one designer's buffer)
    churn_events: int = 0
    #: buffer entries dropped cold by churn
    churned_entries: int = 0
    fetch_time: float = 0.0
    #: per-day payload bytes (diurnal traffic profile)
    bytes_by_day: list[int] = field(default_factory=list)
    #: deterministic kernel fingerprint of the run
    signature: tuple[Any, ...] = ()


@dataclass(frozen=True)
class _SessionPlan:
    """One pre-drawn designer session (fully deterministic)."""

    day: int
    designer: int
    slot: int
    start: float
    durations: tuple[float, ...]
    #: per step, the object names to check out
    reads: tuple[tuple[str, ...], ...]
    #: per step, True when the step checks in a derived version
    writes: tuple[bool, ...]


def _draw_plan(rng: SeededRng, *, team: int, days: int,
               sessions_per_day: int, steps_per_session: int,
               mean_step: float, day_length: float, diurnal_peak: float,
               object_pool: int, hotspots: int, hotspot_bias: float,
               reads_per_step: int, reread_locality: float,
               write_ratio: float) -> list[_SessionPlan]:
    """Draw the whole campaign up front from one seeded stream."""
    plans: list[_SessionPlan] = []
    working: dict[int, list[str]] = {i: [] for i in range(team)}
    # diurnal concentration: peak=1 spreads starts over the whole day,
    # higher peaks narrow the start window symmetrically around midday
    spread = 1.0 / diurnal_peak
    for day in range(days):
        for designer in range(team):
            for slot in range(sessions_per_day):
                offset = day_length * (0.5 + (rng.random() - 0.5)
                                       * spread)
                start = day * day_length + offset
                durations = tuple(
                    rng.bounded_normal(mean_step, mean_step / 3.0,
                                       mean_step / 10.0, mean_step * 3.0)
                    for _ in range(steps_per_session))
                reads: list[tuple[str, ...]] = []
                writes: list[bool] = []
                for _ in range(steps_per_session):
                    step_reads: list[str] = []
                    for _ in range(reads_per_step):
                        ws = working[designer]
                        if ws and rng.bernoulli(reread_locality):
                            obj = rng.choice(ws)
                        elif hotspots and rng.bernoulli(hotspot_bias):
                            obj = f"lib-{rng.randint(0, hotspots - 1)}"
                        else:
                            obj = f"lib-{rng.randint(0, object_pool - 1)}"
                        step_reads.append(obj)
                        if obj not in ws:
                            ws.append(obj)
                            del ws[:-4]  # bounded working set
                    reads.append(tuple(step_reads))
                    writes.append(bool(step_reads)
                                  and rng.bernoulli(write_ratio))
                plans.append(_SessionPlan(
                    day=day, designer=designer, slot=slot, start=start,
                    durations=durations, reads=tuple(reads),
                    writes=tuple(writes)))
    return plans


def design_campaign_scenario(team: int = 4,
                             steps_per_session: int = 3,
                             mean_step: float = 40.0,
                             seed: int = 29,
                             days: int = 5,
                             sessions_per_day: int = 3,
                             day_length: float = 480.0,
                             diurnal_peak: float = 2.0,
                             churn: float = 0.2,
                             object_pool: int = 6,
                             payload_bytes: int = 4000,
                             hotspots: int = 2,
                             hotspot_bias: float = 0.5,
                             reads_per_step: int = 2,
                             reread_locality: float = 0.5,
                             write_ratio: float = 0.3,
                             caching: bool = True,
                             bandwidth: float = 400.0,
                             lan_latency: float = 0.05,
                             jitter: float = 0.0,
                             lease_ttl: float | None = None,
                             shards: int = 1,
                             on_kernel: Callable[[Kernel], None]
                             | None = None) -> CampaignReport:
    """Run a multi-day design campaign on the real TE stack."""
    clock = SimClock()
    kernel = ShardedKernel(clock, shards=shards) if shards > 1 \
        else Kernel(clock)
    if on_kernel is not None:
        on_kernel(kernel)
    network = Network(clock, lan_latency=lan_latency, jitter=jitter,
                      seed=seed, bandwidth=bandwidth)
    network.attach_kernel(kernel)
    network.add_server()
    kernel.assign_shard("server", 0)
    repository = DesignDataRepository()
    locks = LockManager()
    server_tm = ServerTM(repository, locks, network, clock=clock,
                         lease_ttl=lease_ttl)
    server_tm.scope_check = lambda da_id, dov_id: True
    rpc = TransactionalRpc(network)
    register_server_endpoints(rpc, server_tm)
    ids = IdGenerator()

    repository.register_dot(DesignObjectType("SharedObject", attributes=[
        AttributeDef("name", AttributeKind.STRING),
        AttributeDef("blob", AttributeKind.STRING),
    ]))
    repository.create_graph("lib")
    current: dict[str, str] = {}

    def blob_for(obj: str, generation: int) -> str:
        index = int(obj.rsplit("-", 1)[-1])
        return chr(ord("a") + generation % 26) \
            * (payload_bytes + 256 * index)

    for index in range(object_pool):
        name = f"lib-{index}"
        dov = repository.checkin(
            "lib", "SharedObject",
            {"name": name, "blob": blob_for(name, 0)}, ())
        current[name] = dov.dov_id

    rng = SeededRng(seed)
    plans = _draw_plan(
        rng.fork(1), team=team, days=days,
        sessions_per_day=sessions_per_day,
        steps_per_session=steps_per_session, mean_step=mean_step,
        day_length=day_length, diurnal_peak=diurnal_peak,
        object_pool=object_pool, hotspots=hotspots,
        hotspot_bias=hotspot_bias, reads_per_step=reads_per_step,
        reread_locality=reread_locality, write_ratio=write_ratio)

    report = CampaignReport(days=days, team=team)
    clients: list[ClientTM] = []
    buffers: list[ObjectBuffer] = []
    generations: dict[str, int] = {}
    hotspot_names = {f"lib-{index}" for index in range(hotspots)}

    for index in range(team):
        workstation = f"ws-{index}"
        network.add_workstation(workstation)
        kernel.assign_shard(workstation, (1 + index) % max(shards, 1))
        buffer = ObjectBuffer(workstation, policy="lru") if caching \
            else None
        client = ClientTM(workstation, server_tm, rpc, clock, ids=ids,
                          buffer=buffer)
        repository.create_graph(f"da-{index}")
        clients.append(client)
        if buffer is not None:
            buffers.append(buffer)

    def run_session(plan: _SessionPlan) -> None:
        client = clients[plan.designer]
        dop = client.begin_dop(f"da-{plan.designer}",
                               tool="campaign-tool")
        state = {"step": 0}

        def start_step() -> None:
            step = state["step"]
            fetched_before = client.fetch_time
            for obj in plan.reads[step]:
                client.checkout(dop, current[obj])
                if obj in hotspot_names:
                    report.hotspot_reads += 1
            fetch_delay = client.fetch_time - fetched_before
            kernel.after(
                fetch_delay + plan.durations[step],
                lambda: finish_step(step),
                label=f"campaign-step:d{plan.day}:w{plan.designer}"
                      f":s{plan.slot}:{step}")

        def finish_step(step: int) -> None:
            report.steps += 1
            reads = plan.reads[step]
            if plan.writes[step] and reads:
                target = reads[0]
                generations[target] = generations.get(target, 0) + 1
                result = client.checkin(
                    dop, "SharedObject",
                    data={"name": target,
                          "blob": blob_for(target, generations[target])},
                    parents=[current[target]])
                if result.success:
                    current[target] = result.dov.dov_id
                    report.checkins += 1
            state["step"] = step + 1
            if state["step"] >= len(plan.durations):
                client.commit_dop(dop)
                report.sessions += 1
                return
            start_step()

        start_step()

    for plan in plans:
        kernel.at(plan.start, lambda p=plan: run_session(p),
                  label=f"campaign-begin:d{plan.day}:w{plan.designer}"
                        f":s{plan.slot}")

    # -- churn: at each day boundary a rotating subset of the team is
    # replaced; the successor inherits the workstation but none of the
    # warm buffer state
    victims_per_day = int(team * churn + 1e-9)
    if caching and victims_per_day:
        for day in range(1, days):
            for slot in range(victims_per_day):
                victim = ((day - 1) * victims_per_day + slot) % team

                def churn_designer(index: int = victim) -> None:
                    report.churn_events += 1
                    report.churned_entries += buffers[index].clear()

                kernel.at(day * day_length, churn_designer,
                          label=f"campaign-churn:d{day}:w{victim}",
                          priority=-1)

    # -- per-day traffic profile, sampled at each boundary
    day_marks: list[int] = []
    for day in range(1, days + 1):
        kernel.at(day * day_length,
                  lambda: day_marks.append(network.bytes_shipped),
                  label=f"campaign-day-mark:{day}", priority=1)

    kernel.run_until_quiescent()

    stats = network.traffic_stats()
    report.makespan = clock.now
    report.bytes_shipped = stats["bytes_shipped"]
    report.messages = stats["messages_sent"]
    report.hits = sum(b.hits for b in buffers)
    report.misses = sum(b.misses for b in buffers)
    looked_up = report.hits + report.misses
    report.hit_rate = report.hits / looked_up if looked_up else 0.0
    report.invalidations_sent = server_tm.invalidations_sent
    report.invalidations_applied = sum(b.invalidations for b in buffers)
    report.fetch_time = sum(c.fetch_time for c in clients)
    prev = 0
    for sample in day_marks:
        report.bytes_by_day.append(sample - prev)
        prev = sample
    report.signature = kernel.trace_signature()
    return report
