"""Lock management for DOVs: short, derivation and scope locks.

Sect.5.2 and 5.4 of the paper describe three lock families:

* **short locks** protect the brief critical sections of checkin and
  checkout ("short locks are fully sufficient to protect a checkin or
  checkout operation");
* **derivation locks** are long locks a DA may acquire on a DOV "to
  prevent multiple checkout (and concurrent processing) of this DOV for
  application-specific reasons";
* **scope locks** realise the CM's dissemination control: every DOV in
  a DA's scope carries a scope lock held by that DA.  Unlike nested
  transactions [Mo81], (a) only locks on *final* DOVs are inherited
  upward when a sub-DA terminates, and (b) a scope lock may be granted
  to an *additional* DA when a usage relationship to the retaining DA
  exists and the DOV was propagated with sufficient quality.

The manager is conflict-raising rather than blocking: a conflicting
request raises :class:`LockConflictError` immediately, and the workload
layer models waiting (so blocked time is measurable in experiment T1/T4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.util.errors import LockConflictError


class LockMode(str, Enum):
    """Lock modes on DOV resources."""

    SHORT_READ = "short_read"     # checkout critical section
    SHORT_WRITE = "short_write"   # checkin critical section
    DERIVATION = "derivation"     # long lock against multiple checkout
    SCOPE = "scope"               # membership of a DOV in a DA's scope


#: (granted, requested) -> compatible?
_COMPATIBLE: dict[tuple[LockMode, LockMode], bool] = {
    (LockMode.SHORT_READ, LockMode.SHORT_READ): True,
    (LockMode.SHORT_READ, LockMode.SHORT_WRITE): False,
    (LockMode.SHORT_READ, LockMode.DERIVATION): True,
    (LockMode.SHORT_WRITE, LockMode.SHORT_READ): False,
    (LockMode.SHORT_WRITE, LockMode.SHORT_WRITE): False,
    (LockMode.SHORT_WRITE, LockMode.DERIVATION): False,
    (LockMode.DERIVATION, LockMode.SHORT_READ): True,
    (LockMode.DERIVATION, LockMode.SHORT_WRITE): False,
    (LockMode.DERIVATION, LockMode.DERIVATION): False,
}


@dataclass(frozen=True)
class Lock:
    """One granted lock."""

    resource: str   # DOV id
    holder: str     # DA id (scope/derivation) or DOP id (short)
    mode: LockMode


@dataclass
class LockStats:
    """Counters for experiment T4."""

    granted: int = 0
    conflicts: int = 0
    released: int = 0
    inherited: int = 0
    usage_grants: int = 0


class LockManager:
    """Lock table over DOV ids with CONCORD's special scope semantics."""

    def __init__(self, usage_allows: Callable[[str, str, str], bool]
                 | None = None) -> None:
        #: resource -> list of grants
        self._table: dict[str, list[Lock]] = {}
        #: callback(requestor_da, holder_da, dov_id) -> bool, installed by
        #: the CM to authorise scope-lock sharing along usage relationships
        self.usage_allows = usage_allows or (lambda *_: False)
        self.stats = LockStats()

    # -- helpers ---------------------------------------------------------------

    def holders(self, resource: str,
                mode: LockMode | None = None) -> list[Lock]:
        """Current grants on *resource*, optionally filtered by mode."""
        grants = self._table.get(resource, [])
        if mode is None:
            return list(grants)
        return [g for g in grants if g.mode is mode]

    def holds(self, resource: str, holder: str,
              mode: LockMode | None = None) -> bool:
        """True when *holder* holds a (mode) lock on *resource*."""
        return any(g.holder == holder and (mode is None or g.mode is mode)
                   for g in self._table.get(resource, []))

    def locks_of(self, holder: str,
                 mode: LockMode | None = None) -> list[Lock]:
        """All grants held by *holder*."""
        found = []
        for grants in self._table.values():
            found.extend(g for g in grants
                         if g.holder == holder
                         and (mode is None or g.mode is mode))
        return found

    def _scope_compatible(self, requestor: str, resource: str) -> bool:
        """Scope locks coexist only along usage relationships."""
        for grant in self.holders(resource, LockMode.SCOPE):
            if grant.holder == requestor:
                continue
            if not self.usage_allows(requestor, grant.holder, resource):
                return False
        return True

    # -- acquire/release -----------------------------------------------------------

    def acquire(self, resource: str, holder: str, mode: LockMode) -> Lock:
        """Grant a lock or raise :class:`LockConflictError`.

        Re-acquiring an identical lock is idempotent.
        """
        grants = self._table.setdefault(resource, [])
        for grant in grants:
            if grant.holder == holder and grant.mode is mode:
                return grant  # idempotent
        if mode is LockMode.SCOPE:
            if not self._scope_compatible(holder, resource):
                blocker = next(g.holder for g in grants
                               if g.mode is LockMode.SCOPE
                               and g.holder != holder)
                self.stats.conflicts += 1
                raise LockConflictError(
                    f"scope lock on {resource!r} for {holder!r} denied: "
                    f"no usage relationship to holder {blocker!r}",
                    holder=blocker)
            was_shared = any(g.mode is LockMode.SCOPE and g.holder != holder
                             for g in grants)
            if was_shared:
                self.stats.usage_grants += 1
        else:
            for grant in grants:
                if grant.holder == holder:
                    continue  # own locks never conflict with each other
                if grant.mode is LockMode.SCOPE:
                    continue  # scope membership does not block processing
                if not _COMPATIBLE[(grant.mode, mode)]:
                    self.stats.conflicts += 1
                    raise LockConflictError(
                        f"{mode.value} on {resource!r} for {holder!r} "
                        f"conflicts with {grant.mode.value} held by "
                        f"{grant.holder!r}", holder=grant.holder)
        lock = Lock(resource, holder, mode)
        grants.append(lock)
        self.stats.granted += 1
        return lock

    def try_acquire(self, resource: str, holder: str,
                    mode: LockMode) -> Lock | None:
        """Like :meth:`acquire` but returns None instead of raising."""
        try:
            return self.acquire(resource, holder, mode)
        except LockConflictError:
            return None

    def release(self, resource: str, holder: str,
                mode: LockMode | None = None) -> int:
        """Release *holder*'s lock(s) on *resource*; returns #released."""
        grants = self._table.get(resource, [])
        keep = [g for g in grants
                if not (g.holder == holder
                        and (mode is None or g.mode is mode))]
        released = len(grants) - len(keep)
        if keep:
            self._table[resource] = keep
        else:
            self._table.pop(resource, None)
        self.stats.released += released
        return released

    def release_all(self, holder: str, mode: LockMode | None = None) -> int:
        """Release every lock of *holder* (optionally one mode)."""
        released = 0
        for resource in list(self._table):
            released += self.release(resource, holder, mode)
        return released

    # -- CONCORD scope-lock specials ------------------------------------------------

    def inherit_scope_locks(self, from_da: str, to_da: str,
                            final_dovs: set[str]) -> list[str]:
        """Terminate-time inheritance: move scope locks on *final* DOVs.

        "Referring to delegation relationships a super-DA inherits the
        scope-locks on the final DOVs of its terminated sub-DAs and
        then retains these locks" (Sect.5.4).  Non-final DOV locks of
        the sub-DA are simply released (they leave every scope).

        Returns the DOV ids whose locks were inherited.
        """
        inherited: list[str] = []
        for lock in self.locks_of(from_da, LockMode.SCOPE):
            self.release(lock.resource, from_da, LockMode.SCOPE)
            if lock.resource in final_dovs:
                grants = self._table.setdefault(lock.resource, [])
                if not any(g.holder == to_da and g.mode is LockMode.SCOPE
                           for g in grants):
                    grants.append(Lock(lock.resource, to_da, LockMode.SCOPE))
                    self.stats.inherited += 1
                inherited.append(lock.resource)
        return inherited

    def scope_of(self, da_id: str) -> set[str]:
        """DOV ids currently scope-locked by *da_id*."""
        return {lock.resource
                for lock in self.locks_of(da_id, LockMode.SCOPE)}

    def table_size(self) -> int:
        """Number of resources with at least one grant."""
        return len(self._table)
