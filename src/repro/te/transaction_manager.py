"""The transaction manager (TM): client-TM and server-TM.

Sect.5.1/5.2: the TM "is split into two subcomponents.  The server-TM
handles checkout/checkin and controls concurrent access to DOVs, thus
residing on the server, whereas the client-TM resides on the
workstation managing the internal structure of DOPs."  Their critical
interactions (checkin) run under two-phase commit.

* :class:`ServerTM` — scope-checked checkout with derivation locking,
  two-phase checkin against the repository (it is the 2PC
  *participant*), derivation-lock release on End-of-DOP, WAL-backed
  durability (delegated to the repository), and the **lease table** of
  the data-shipping protocol: every version shipped to a buffering
  workstation is leased per ``(workstation, dov_id)``, and a committed
  checkin revokes the leases on the versions it supersedes with
  asynchronous invalidation messages over the simulated LAN.
* :class:`ClientTM` — Begin/End-of-DOP, checkout (buffer-first: a hit
  in the workstation's :class:`~repro.te.object_buffer.ObjectBuffer`
  costs zero network events, a miss ships the payload size-aware), the
  mandatory post-checkout recovery point, tool-work application with
  periodic recovery points, Save/Restore, Suspend/Resume, checkin as
  2PC *coordinator*, and workstation-crash recovery from the most
  recent recovery point (the buffer is volatile: a crash drops it and
  recovery re-fetches through the normal chain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.network import Network
from repro.net.rpc import TransactionalRpc
from repro.net.two_phase_commit import (
    CommitOutcome,
    CommitProtocol,
    TwoPhaseCoordinator,
    Vote,
)
from repro.repository.repository import DesignDataRepository
from repro.repository.versions import DesignObjectVersion, payload_sizeof
from repro.sim.clock import SimClock
from repro.te.context import DopContext, SavepointStack
from repro.te.dop import DesignOperation, DopState
from repro.te.object_buffer import ObjectBuffer
from repro.te.locks import LockManager, LockMode
from repro.te.recovery import RecoveryManager, RecoveryPointPolicy
from repro.util.errors import (
    IntegrityError,
    LockConflictError,
    NetworkError,
    RecoveryError,
    ScopeViolationError,
    TransactionError,
)
from repro.util.ids import IdGenerator
from repro.util.trace import EventTrace, Level


@dataclass
class CheckinResult:
    """Outcome of a checkin reported to the DM (Sect.5.2/5.3)."""

    success: bool
    dov: DesignObjectVersion | None = None
    reason: str = ""
    outcome: CommitOutcome | None = None


class ServerTM:
    """Server-side transaction manager: shared access to the repository."""

    def __init__(self, repository: DesignDataRepository,
                 locks: LockManager, network: Network,
                 node_id: str = "server",
                 trace: EventTrace | None = None,
                 clock: SimClock | None = None) -> None:
        self.repository = repository
        self.locks = locks
        self.network = network
        self.node_id = node_id
        self.trace = trace if trace is not None else EventTrace(enabled=False)
        self.clock = clock or SimClock()
        #: callback(da_id, dov_id) -> bool installed by the CM; the default
        #: admits only the DA's own derivation graph (Sect.4.1's rule that
        #: "without further authorization a DA is only allowed to read
        #: DOVs of its own derivation graph").
        self.scope_check: Callable[[str, str], bool] = self._default_scope
        #: staged checkins per 2PC transaction id
        self._staged: dict[str, str] = {}
        #: read leases of the data-shipping protocol:
        #: dov_id -> workstations holding a buffered copy
        self._leases: dict[str, set[str]] = {}
        #: workstation -> its object buffer (invalidation delivery target)
        self._buffers: dict[str, ObjectBuffer] = {}
        #: invalidation messages scheduled over the LAN
        self.invalidations_sent = 0
        #: modelled size of one lease-invalidation control message
        self.invalidation_bytes = 16
        # supersession notices: every committed version revokes the
        # leases on its parents (plain repository and federation alike
        # expose the on_commit observer)
        if hasattr(repository, "on_commit"):
            repository.on_commit = self._on_repository_commit
        # the lease table is volatile server state; and because it
        # died with the server, a restart flushes the registered
        # workstation buffers — an unleased copy could never be
        # revoked again
        try:
            node = network.node(node_id)
            node.on_crash.append(self.clear_leases)
            node.on_restart.append(self.flush_buffers)
        except NetworkError:
            pass  # node registered later; leases then live unguarded

    def _default_scope(self, da_id: str, dov_id: str) -> bool:
        if not self.repository.has_graph(da_id):
            return False
        return dov_id in self.repository.graph(da_id)

    def _record(self, operation: str, subject: str, **detail: Any) -> None:
        self.trace.record(self.clock.now, Level.TE, f"server-TM",
                          operation, subject, **detail)

    # -- checkout ---------------------------------------------------------------

    def checkout(self, da_id: str, dop_id: str, dov_id: str,
                 derivation_lock: bool = False,
                 workstation: str | None = None,
                 lease: bool = False) -> DesignObjectVersion:
        """Scope-checked read of a DOV with optional derivation lock.

        Implements Sect.5.2's checkout: "it has to be tested that,
        firstly, the DOV belongs to the scope of the DOP's DA, and,
        secondly, there is no incompatible derivation lock on the DOV."
        The critical section itself is protected by a short read lock.
        With ``lease=True`` the server additionally records a read
        lease for *workstation* — the promise to invalidate the
        shipped copy when a later checkin supersedes it.
        """
        self.network.node(self.node_id).require_up()
        if not self.scope_check(da_id, dov_id):
            self._record("checkout_denied", dov_id, da=da_id,
                         reason="scope")
            raise ScopeViolationError(
                f"DOV {dov_id!r} is not in the scope of DA {da_id!r}")
        holders = self.locks.holders(dov_id, LockMode.DERIVATION)
        foreign = [h for h in holders if h.holder != da_id]
        if foreign:
            raise LockConflictError(
                f"DOV {dov_id!r} derivation-locked by {foreign[0].holder!r}",
                holder=foreign[0].holder)
        self.locks.acquire(dov_id, dop_id, LockMode.SHORT_READ)
        try:
            dov = self.repository.read(dov_id)
            if derivation_lock:
                self.locks.acquire(dov_id, da_id, LockMode.DERIVATION)
        finally:
            self.locks.release(dov_id, dop_id, LockMode.SHORT_READ)
        if lease and workstation is not None:
            self._leases.setdefault(dov_id, set()).add(workstation)
        self._record("checkout", dov_id, da=da_id, dop=dop_id,
                     derivation_lock=derivation_lock,
                     leased=bool(lease and workstation))
        return dov

    # -- checkin (2PC participant interface) --------------------------------------

    def prepare(self, txn_id: str) -> Vote:
        """Phase 1 of checkin: validate + stage the new DOV.

        The checkin request payload is stashed under *txn_id* by
        :meth:`request_checkin` before the coordinator starts 2PC.
        """
        node = self.network.node(self.node_id)
        node.require_up()
        request = node.volatile.get(f"checkin-req:{txn_id}")
        if request is None:
            return Vote.NO
        da_id = request["da_id"]
        try:
            self.locks.acquire(request["graph_lock"], txn_id,
                               LockMode.SHORT_WRITE)
            try:
                dov = self.repository.stage_checkin(
                    da_id=da_id,
                    dot_name=request["dot_name"],
                    data=request["data"],
                    parents=tuple(request["parents"]),
                    created_at=self.clock.now,
                )
            finally:
                self.locks.release(request["graph_lock"], txn_id,
                                   LockMode.SHORT_WRITE)
        except (IntegrityError, Exception) as exc:
            node.volatile[f"checkin-err:{txn_id}"] = str(exc)
            self._record("checkin_prepare_failed", da_id, error=str(exc))
            return Vote.NO
        self._staged[txn_id] = dov.dov_id
        node.volatile[f"checkin-dov:{txn_id}"] = dov.dov_id
        self._record("checkin_prepared", dov.dov_id, da=da_id)
        return Vote.YES

    def commit(self, txn_id: str) -> None:
        """Phase 2 commit: the staged DOV becomes durable.

        The repository's commit observer fires the supersession
        invalidations for the new version's parents; afterwards the
        committing workstation — which keeps the fresh version in its
        buffer without any extra shipping — gets a lease on it.
        """
        dov_id = self._staged.pop(txn_id, None)
        if dov_id is None:
            raise TransactionError(f"nothing staged for txn {txn_id!r}")
        dov = self.repository.commit_checkin(dov_id)
        request = self.network.node(self.node_id).volatile.get(
            f"checkin-req:{txn_id}") or {}
        if request.get("lease") and request.get("workstation"):
            self._leases.setdefault(dov.dov_id, set()).add(
                request["workstation"])
        self._record("checkin_committed", dov.dov_id, da=dov.created_by)

    def abort(self, txn_id: str) -> None:
        """Phase 2 abort: the staged DOV is discarded."""
        dov_id = self._staged.pop(txn_id, None)
        if dov_id is not None:
            self.repository.abort_checkin(dov_id)
            self._record("checkin_aborted", dov_id)

    def request_checkin(self, txn_id: str, da_id: str, dot_name: str,
                        data: dict[str, Any], parents: list[str],
                        workstation: str | None = None,
                        lease: bool = False) -> None:
        """Stash a checkin request before the coordinator runs 2PC.

        The modification of a DA's derivation graph during checkin is
        protected by a short (write) lock on the graph resource
        (Sect.5.2: "the TM has to protect the proliferation of the DA's
        derivation graph ... employing a locking protocol based on
        short locks").
        """
        node = self.network.node(self.node_id)
        node.require_up()
        node.volatile[f"checkin-req:{txn_id}"] = {
            "da_id": da_id,
            "dot_name": dot_name,
            "data": data,
            "parents": parents,
            "graph_lock": f"graph:{da_id}",
            "workstation": workstation,
            "lease": lease,
        }

    def checkin_error(self, txn_id: str) -> str | None:
        """Why the prepare for *txn_id* voted NO (integrity message)."""
        node = self.network.node(self.node_id)
        return node.volatile.get(f"checkin-err:{txn_id}")

    def staged_dov(self, txn_id: str) -> str | None:
        """Id assigned to the staged DOV of *txn_id*, if prepare succeeded."""
        node = self.network.node(self.node_id)
        return node.volatile.get(f"checkin-dov:{txn_id}")

    # -- End-of-DOP support ---------------------------------------------------------

    def release_derivation_locks(self, da_id: str,
                                 dov_ids: list[str] | None = None) -> int:
        """Release derivation locks at End-of-DOP (commit *and* abort).

        "the server-TM is firstly asked to release the derivation locks
        held (if any)" (Sect.5.2).
        """
        if dov_ids is None:
            released = self.locks.release_all(da_id, LockMode.DERIVATION)
        else:
            released = 0
            for dov_id in dov_ids:
                released += self.locks.release(dov_id, da_id,
                                               LockMode.DERIVATION)
        if released:
            self._record("derivation_locks_released", da_id, count=released)
        return released

    # -- object-buffer leases (data-shipping coherence) -----------------------------

    def register_buffer(self, workstation: str,
                        buffer: ObjectBuffer) -> None:
        """Make *workstation*'s buffer the target of its invalidations.

        Capacity evictions release the server-side lease too — an
        evicted copy must not draw invalidation traffic later.
        """
        self._buffers[workstation] = buffer
        buffer.on_evict = (
            lambda dov_id, ws=workstation: self.release_lease(ws, dov_id))

    def lease_holders(self, dov_id: str) -> set[str]:
        """Workstations currently leasing a buffered copy of *dov_id*."""
        return set(self._leases.get(dov_id, ()))

    def release_lease(self, workstation: str, dov_id: str) -> bool:
        """Release one lease (buffer eviction); True when it existed."""
        holders = self._leases.get(dov_id)
        if holders and workstation in holders:
            holders.discard(workstation)
            return True
        return False

    def drop_leases(self, workstation: str) -> int:
        """Forget every lease of one workstation (its crash dropped the
        buffered copies, so there is nothing left to invalidate)."""
        dropped = 0
        for holders in self._leases.values():
            if workstation in holders:
                holders.discard(workstation)
                dropped += 1
        return dropped

    def clear_leases(self) -> None:
        """Server crash: the (volatile) lease table vanishes."""
        self._leases.clear()

    def flush_buffers(self) -> None:
        """Server restart: flush every registered workstation buffer.

        The lease table died with the server, so surviving buffered
        copies could never be invalidated again; re-reads repopulate
        the buffers through the normal checkout chain.
        """
        for buffer in self._buffers.values():
            buffer.clear()

    def _on_repository_commit(self, dov: DesignObjectVersion) -> None:
        """A version became durable: revoke the leases it supersedes.

        The new DOV's parents are no longer the frontier of the design
        state; every workstation buffering one of them gets an
        asynchronous invalidation over the LAN (an ordinary timed
        kernel event under the concurrent kernel, a synchronous
        handoff otherwise).  The lease itself is revoked immediately —
        the server stops promising coherence the moment it schedules
        the notice.
        """
        targets = getattr(self.repository, "invalidation_targets", None)
        if targets is not None:
            superseded = targets(dov)
        else:
            superseded = list(dov.parents)
        for dov_id in superseded:
            holders = self._leases.get(dov_id)
            if not holders:
                continue
            for workstation in sorted(holders):
                self._post_invalidation(workstation, dov_id,
                                        superseded_by=dov.dov_id)
            holders.clear()

    def _post_invalidation(self, workstation: str, dov_id: str,
                           superseded_by: str) -> None:
        buffer = self._buffers.get(workstation)

        def deliver() -> None:
            if buffer is not None:
                buffer.invalidate(dov_id)

        self.invalidations_sent += 1
        self.network.post(self.node_id, workstation, deliver,
                          label=f"invalidate:{dov_id}->{workstation}",
                          size=self.invalidation_bytes)
        self._record("lease_invalidated", dov_id,
                     workstation=workstation,
                     superseded_by=superseded_by)


class ClientTM:
    """Workstation-side transaction manager for one workstation.

    Manages the internal structure of the DOPs running on its machine:
    contexts, savepoints, recovery points, suspend/resume, and the
    coordinator role in the checkin 2PC.
    """

    def __init__(self, workstation: str, server_tm: ServerTM,
                 rpc: TransactionalRpc, clock: SimClock,
                 ids: IdGenerator | None = None,
                 policy: RecoveryPointPolicy | None = None,
                 trace: EventTrace | None = None,
                 protocol: CommitProtocol = CommitProtocol.PRESUMED_ABORT,
                 buffer: ObjectBuffer | None = None) -> None:
        self.workstation = workstation
        self.server_tm = server_tm
        self.rpc = rpc
        self.clock = clock
        self.ids = ids or IdGenerator()
        self.trace = trace if trace is not None else EventTrace(enabled=False)
        #: the workstation's DOV object buffer (None = caching off:
        #: every checkout re-ships its payload over the LAN)
        self.buffer = buffer
        if buffer is not None:
            server_tm.register_buffer(workstation, buffer)
        #: payload bytes fetched from the server (buffer misses and,
        #: with caching off, every checkout)
        self.bytes_fetched = 0
        #: simulated time spent shipping checkout payloads
        self.fetch_time = 0.0
        node = rpc.network.node(workstation)
        self.node = node
        self.recovery = RecoveryManager(node.stable, policy)
        self.coordinator = TwoPhaseCoordinator(
            rpc.network, workstation, protocol=protocol)
        #: volatile table of running DOPs — lost on workstation crash
        self._active: dict[str, DesignOperation] = {}
        #: callback fired with (dop, CheckinResult) on End-of-DOP; the DM
        #: installs itself here ("gives the appropriate message ... to
        #: its DM", Sect.5.2)
        self.on_dop_finished: Callable[[DesignOperation, CheckinResult],
                                       None] | None = None
        node.on_crash.append(self._on_crash)

    # -- infrastructure -----------------------------------------------------------

    def _record(self, operation: str, subject: str, **detail: Any) -> None:
        self.trace.record(self.clock.now, Level.TE,
                          f"client-TM:{self.workstation}",
                          operation, subject, **detail)

    def _on_crash(self) -> None:
        # volatile DOP table vanishes with the workstation, and so
        # does the object buffer; the server forgets the leases (there
        # is no buffered copy left to invalidate) and recovery
        # re-fetches through the normal checkout chain
        self._active.clear()
        if self.buffer is not None:
            self.buffer.clear()
            self.server_tm.drop_leases(self.workstation)

    def active_dops(self) -> list[DesignOperation]:
        """The DOPs currently running on this workstation."""
        return list(self._active.values())

    def get_dop(self, dop_id: str) -> DesignOperation:
        """Look up a running DOP."""
        try:
            return self._active[dop_id]
        except KeyError:
            raise TransactionError(
                f"DOP {dop_id!r} is not active on {self.workstation!r} "
                f"(crashed or finished?)") from None

    def _take_recovery_point(self, dop: DesignOperation,
                             reason: str) -> None:
        self.recovery.take(dop.dop_id, dop.context, dop.savepoints,
                           self.clock.now, reason)
        dop.work_since_recovery_point = 0.0
        self._record("recovery_point", dop.dop_id, reason=reason)

    # -- Begin-of-DOP -----------------------------------------------------------------

    def begin_dop(self, da_id: str, tool: str,
                  start_params: dict[str, Any] | None = None
                  ) -> DesignOperation:
        """Begin-of-DOP: create and activate a new design operation."""
        self.node.require_up()
        dop = DesignOperation(
            dop_id=self.ids.next("dop"),
            da_id=da_id,
            workstation=self.workstation,
            tool=tool,
            start_params=dict(start_params or {}),
            started_at=self.clock.now,
        )
        dop.require("activate")
        dop.transition(DopState.ACTIVE)
        self._active[dop.dop_id] = dop
        self._record("begin_dop", dop.dop_id, da=da_id, tool=tool)
        return dop

    # -- checkout -----------------------------------------------------------------------

    def checkout(self, dop: DesignOperation, dov_id: str,
                 derivation_lock: bool = False) -> DesignObjectVersion:
        """Check out an input DOV into the DOP's context, buffer-first.

        With an object buffer, a resident version the DOP's DA is
        authorized for is served locally — zero network events.  A
        miss (or a derivation-lock request, which always needs the
        server) goes through the server's scope + derivation-lock
        checks, then the payload is shipped size-aware over the LAN
        and installed in the buffer under a read lease.  Afterwards a
        recovery point is taken so a crash never repeats the request
        (Sect.5.2).
        """
        dop.require("checkout")
        if self.buffer is not None and not derivation_lock:
            cached = self.buffer.get(dov_id, dop.da_id)
            if cached is not None:
                self._install_checkout(dop, cached, dov_id, cached=True)
                return cached
        result = self.rpc.call(
            self.workstation, self.server_tm.node_id, "checkout",
            dop.da_id, dop.dop_id, dov_id, derivation_lock,
            workstation=self.workstation,
            lease=self.buffer is not None)
        dov: DesignObjectVersion = result.value
        self._ship_payload(dov, dop.da_id)
        self._install_checkout(dop, dov, dov_id, cached=False)
        return dov

    def _ship_payload(self, dov: DesignObjectVersion, da_id: str) -> None:
        """Account the size-aware shipment of a fetched DOV payload.

        The checkout RPC itself is control traffic; the version's data
        travels as a separate sized message whose delay scales with
        the payload bytes.  With a buffer the delivery installs the
        version (an ordinary timed kernel event under the concurrent
        kernel); without one the bytes are still shipped — and paid —
        on every read.
        """
        network = self.rpc.network
        buffer = self.buffer

        def deliver() -> None:
            if buffer is not None:
                buffer.put(dov, da_id, now=network.clock.now)

        delay = network.post(
            self.server_tm.node_id, self.workstation, deliver,
            label=f"dov-ship:{dov.dov_id}->{self.workstation}",
            size=dov.payload_size)
        self.bytes_fetched += dov.payload_size
        self.fetch_time += delay

    def _install_checkout(self, dop: DesignOperation,
                          dov: DesignObjectVersion, dov_id: str,
                          cached: bool) -> None:
        dop.input_dovs.append(dov_id)
        dop.context.checked_out.append(dov_id)
        dop.context.data.update(dov.copy_data())
        self._record("checkout", dov_id, dop=dop.dop_id, cached=cached)
        if self.recovery.policy.after_checkout:
            self._take_recovery_point(dop, "checkout")

    # -- tool processing ----------------------------------------------------------------

    def work(self, dop: DesignOperation, effort: float,
             mutate: Callable[[DopContext], None] | None = None,
             advance_clock: bool = True) -> None:
        """Apply *effort* simulated minutes of tool work to the context.

        Advances the simulated clock, applies the tool's mutation, and
        takes a periodic recovery point when the policy says one is due.
        Under the concurrent kernel the clock is driven by the event
        times themselves — those callers pass ``advance_clock=False``
        because the kernel already sits at the work's finish instant.
        """
        dop.require("work")
        self.node.require_up()
        if advance_clock:
            self.clock.advance(effort)
        if mutate is not None:
            mutate(dop.context)
        dop.context.work_done += effort
        dop.work_since_recovery_point += effort
        if self.recovery.policy.due(dop.work_since_recovery_point):
            self._take_recovery_point(dop, "interval")

    # -- savepoints -------------------------------------------------------------------------

    def save(self, dop: DesignOperation, name: str) -> None:
        """Designer-initiated Save (Sect.4.3)."""
        dop.require("save")
        dop.savepoints.save(name, dop.context)
        # savepoints are implemented with the recovery-point mechanism
        self._take_recovery_point(dop, f"savepoint:{name}")
        self._record("save", dop.dop_id, savepoint=name)

    def restore(self, dop: DesignOperation, name: str | None = None) -> None:
        """Designer-initiated Restore: roll back to a marked state."""
        dop.require("restore")
        dop.context = dop.savepoints.restore(name)
        self._record("restore", dop.dop_id, savepoint=name or "<latest>")

    # -- suspend / resume ----------------------------------------------------------------------

    def suspend(self, dop: DesignOperation) -> None:
        """Suspend the DOP; its context is made persistent."""
        dop.require("suspend")
        self._take_recovery_point(dop, "suspend")
        dop.transition(DopState.SUSPENDED)
        self._record("suspend", dop.dop_id)

    def resume(self, dop: DesignOperation) -> None:
        """Resume a suspended DOP; state equals the suspend-time state."""
        dop.require("resume")
        context, savepoints, _ = self.recovery.restore(dop.dop_id)
        dop.context = context
        dop.savepoints = savepoints
        dop.transition(DopState.ACTIVE)
        self._record("resume", dop.dop_id)

    # -- checkin -----------------------------------------------------------------------------------

    def checkin(self, dop: DesignOperation, dot_name: str,
                data: dict[str, Any] | None = None,
                parents: list[str] | None = None) -> CheckinResult:
        """Check in the derived DOV under two-phase commit.

        On success the new DOV id is recorded on the DOP.  On an
        integrity violation the result carries the server's reason —
        the 'checkin failure' situation the client-TM "has to indicate
        ... to the DM" (Sect.5.2).
        """
        dop.require("checkin")
        payload = data if data is not None else dict(dop.context.data)
        lineage = parents if parents is not None else list(dop.input_dovs)
        txn_id = self.ids.next(f"txn-{self.workstation}")
        self.rpc.call(self.workstation, self.server_tm.node_id,
                      "request_checkin", txn_id, dop.da_id, dot_name,
                      payload, lineage,
                      workstation=self.workstation,
                      lease=self.buffer is not None)
        # the derived data ships workstation -> server (the checkin
        # direction of the data-shipping path; the RPC above is the
        # control message)
        self.rpc.network.post(
            self.workstation, self.server_tm.node_id, lambda: None,
            label=f"dov-upload:{txn_id}", size=payload_sizeof(payload))
        outcome = self.coordinator.execute(txn_id, [self.server_tm])
        if outcome.committed:
            dov_id = self.server_tm.staged_dov(txn_id)
            dov = self.server_tm.repository.read(dov_id)
            dop.output_dov = dov.dov_id
            if self.buffer is not None:
                # checkin results stay resident: the workstation just
                # produced these bytes, so the next checkout of the new
                # frontier is a local hit
                self.buffer.put(dov, dop.da_id, now=self.clock.now)
            self._record("checkin", dov.dov_id, dop=dop.dop_id)
            return CheckinResult(True, dov=dov, outcome=outcome)
        reason = self.server_tm.checkin_error(txn_id) or "2PC abort"
        self._record("checkin_failed", dop.dop_id, reason=reason)
        return CheckinResult(False, reason=reason, outcome=outcome)

    # -- End-of-DOP ------------------------------------------------------------------------------------

    def _finish(self, dop: DesignOperation, state: DopState,
                result: CheckinResult) -> None:
        # release derivation locks first, then drop savepoints and the
        # recovery point, then message the DM — the Sect.5.2 order.
        self.rpc.call(self.workstation, self.server_tm.node_id,
                      "release_derivation_locks", dop.da_id,
                      list(dop.input_dovs))
        dop.savepoints.clear()
        self.recovery.remove(dop.dop_id)
        dop.transition(state)
        dop.finished_at = self.clock.now
        self._active.pop(dop.dop_id, None)
        self._record("end_dop", dop.dop_id, state=state.value)
        if self.on_dop_finished is not None:
            self.on_dop_finished(dop, result)

    def drop_dop(self, dop: DesignOperation) -> None:
        """Forget a DOP whose start could not complete (server down
        before the first checkout).  Purely local volatile cleanup —
        nothing reached the server, so there is nothing to abort
        there; the caller begins a fresh DOP on retry."""
        self._active.pop(dop.dop_id, None)
        self.recovery.remove(dop.dop_id)
        self._record("drop_dop", dop.dop_id)

    def commit_dop(self, dop: DesignOperation,
                   result: CheckinResult | None = None) -> None:
        """End-of-DOP (commit): close processing after a final state."""
        dop.require("commit")
        self._finish(dop, DopState.COMMITTED,
                     result or CheckinResult(True, dov=None))

    def abort_dop(self, dop: DesignOperation, reason: str = "") -> None:
        """End-of-DOP (abort): the DOP "will abort its activities"."""
        dop.require("abort")
        self._finish(dop, DopState.ABORTED, CheckinResult(False,
                                                          reason=reason))

    # -- workstation-crash recovery -----------------------------------------------------------------------

    def recover_dop(self, dop_id: str, da_id: str, tool: str
                    ) -> tuple[DesignOperation, float]:
        """Rebuild a crashed DOP from its most recent recovery point.

        Returns the re-activated DOP and the simulated time the recovery
        point was taken at (the caller knows the crash time and derives
        the lost work as ``context.work_done`` deltas).  Raises
        :class:`RecoveryError` when no point exists — then the DOP is
        lost entirely and must restart from its beginning.
        """
        self.node.require_up()
        context, savepoints, point = self.recovery.restore(dop_id)
        dop = DesignOperation(
            dop_id=dop_id, da_id=da_id, workstation=self.workstation,
            tool=tool, started_at=point.taken_at,
        )
        dop.transition(DopState.ACTIVE)
        dop.context = context
        dop.savepoints = savepoints
        dop.input_dovs = list(context.checked_out)
        self._active[dop_id] = dop
        self._record("recover_dop", dop_id, from_point=point.reason,
                     taken_at=point.taken_at)
        return dop, point.taken_at


def register_server_endpoints(rpc: TransactionalRpc,
                              server_tm: ServerTM) -> None:
    """Expose the server-TM operations as transactional RPC endpoints."""
    rpc.register(server_tm.node_id, "checkout", server_tm.checkout)
    rpc.register(server_tm.node_id, "request_checkin",
                 server_tm.request_checkin)
    rpc.register(server_tm.node_id, "release_derivation_locks",
                 server_tm.release_derivation_locks)
