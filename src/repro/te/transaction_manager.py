"""The transaction manager (TM): client-TM and server-TM.

Sect.5.1/5.2: the TM "is split into two subcomponents.  The server-TM
handles checkout/checkin and controls concurrent access to DOVs, thus
residing on the server, whereas the client-TM resides on the
workstation managing the internal structure of DOPs."  Their critical
interactions (checkin) run under two-phase commit.

* :class:`ServerTM` — scope-checked checkout with derivation locking,
  two-phase checkin against the repository (it is the 2PC
  *participant*), derivation-lock release on End-of-DOP, WAL-backed
  durability (delegated to the repository).
* :class:`ClientTM` — Begin/End-of-DOP, checkout (with the mandatory
  post-checkout recovery point), tool-work application with periodic
  recovery points, Save/Restore, Suspend/Resume, checkin as 2PC
  *coordinator*, and workstation-crash recovery from the most recent
  recovery point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.network import Network
from repro.net.rpc import TransactionalRpc
from repro.net.two_phase_commit import (
    CommitOutcome,
    CommitProtocol,
    TwoPhaseCoordinator,
    Vote,
)
from repro.repository.repository import DesignDataRepository
from repro.repository.versions import DesignObjectVersion
from repro.sim.clock import SimClock
from repro.te.context import DopContext, SavepointStack
from repro.te.dop import DesignOperation, DopState
from repro.te.locks import LockManager, LockMode
from repro.te.recovery import RecoveryManager, RecoveryPointPolicy
from repro.util.errors import (
    IntegrityError,
    LockConflictError,
    RecoveryError,
    ScopeViolationError,
    TransactionError,
)
from repro.util.ids import IdGenerator
from repro.util.trace import EventTrace, Level


@dataclass
class CheckinResult:
    """Outcome of a checkin reported to the DM (Sect.5.2/5.3)."""

    success: bool
    dov: DesignObjectVersion | None = None
    reason: str = ""
    outcome: CommitOutcome | None = None


class ServerTM:
    """Server-side transaction manager: shared access to the repository."""

    def __init__(self, repository: DesignDataRepository,
                 locks: LockManager, network: Network,
                 node_id: str = "server",
                 trace: EventTrace | None = None,
                 clock: SimClock | None = None) -> None:
        self.repository = repository
        self.locks = locks
        self.network = network
        self.node_id = node_id
        self.trace = trace if trace is not None else EventTrace(enabled=False)
        self.clock = clock or SimClock()
        #: callback(da_id, dov_id) -> bool installed by the CM; the default
        #: admits only the DA's own derivation graph (Sect.4.1's rule that
        #: "without further authorization a DA is only allowed to read
        #: DOVs of its own derivation graph").
        self.scope_check: Callable[[str, str], bool] = self._default_scope
        #: staged checkins per 2PC transaction id
        self._staged: dict[str, str] = {}

    def _default_scope(self, da_id: str, dov_id: str) -> bool:
        if not self.repository.has_graph(da_id):
            return False
        return dov_id in self.repository.graph(da_id)

    def _record(self, operation: str, subject: str, **detail: Any) -> None:
        self.trace.record(self.clock.now, Level.TE, f"server-TM",
                          operation, subject, **detail)

    # -- checkout ---------------------------------------------------------------

    def checkout(self, da_id: str, dop_id: str, dov_id: str,
                 derivation_lock: bool = False) -> DesignObjectVersion:
        """Scope-checked read of a DOV with optional derivation lock.

        Implements Sect.5.2's checkout: "it has to be tested that,
        firstly, the DOV belongs to the scope of the DOP's DA, and,
        secondly, there is no incompatible derivation lock on the DOV."
        The critical section itself is protected by a short read lock.
        """
        self.network.node(self.node_id).require_up()
        if not self.scope_check(da_id, dov_id):
            self._record("checkout_denied", dov_id, da=da_id,
                         reason="scope")
            raise ScopeViolationError(
                f"DOV {dov_id!r} is not in the scope of DA {da_id!r}")
        holders = self.locks.holders(dov_id, LockMode.DERIVATION)
        foreign = [h for h in holders if h.holder != da_id]
        if foreign:
            raise LockConflictError(
                f"DOV {dov_id!r} derivation-locked by {foreign[0].holder!r}",
                holder=foreign[0].holder)
        self.locks.acquire(dov_id, dop_id, LockMode.SHORT_READ)
        try:
            dov = self.repository.read(dov_id)
            if derivation_lock:
                self.locks.acquire(dov_id, da_id, LockMode.DERIVATION)
        finally:
            self.locks.release(dov_id, dop_id, LockMode.SHORT_READ)
        self._record("checkout", dov_id, da=da_id, dop=dop_id,
                     derivation_lock=derivation_lock)
        return dov

    # -- checkin (2PC participant interface) --------------------------------------

    def prepare(self, txn_id: str) -> Vote:
        """Phase 1 of checkin: validate + stage the new DOV.

        The checkin request payload is stashed under *txn_id* by
        :meth:`request_checkin` before the coordinator starts 2PC.
        """
        node = self.network.node(self.node_id)
        node.require_up()
        request = node.volatile.get(f"checkin-req:{txn_id}")
        if request is None:
            return Vote.NO
        da_id = request["da_id"]
        try:
            self.locks.acquire(request["graph_lock"], txn_id,
                               LockMode.SHORT_WRITE)
            try:
                dov = self.repository.stage_checkin(
                    da_id=da_id,
                    dot_name=request["dot_name"],
                    data=request["data"],
                    parents=tuple(request["parents"]),
                    created_at=self.clock.now,
                )
            finally:
                self.locks.release(request["graph_lock"], txn_id,
                                   LockMode.SHORT_WRITE)
        except (IntegrityError, Exception) as exc:
            node.volatile[f"checkin-err:{txn_id}"] = str(exc)
            self._record("checkin_prepare_failed", da_id, error=str(exc))
            return Vote.NO
        self._staged[txn_id] = dov.dov_id
        node.volatile[f"checkin-dov:{txn_id}"] = dov.dov_id
        self._record("checkin_prepared", dov.dov_id, da=da_id)
        return Vote.YES

    def commit(self, txn_id: str) -> None:
        """Phase 2 commit: the staged DOV becomes durable."""
        dov_id = self._staged.pop(txn_id, None)
        if dov_id is None:
            raise TransactionError(f"nothing staged for txn {txn_id!r}")
        dov = self.repository.commit_checkin(dov_id)
        self._record("checkin_committed", dov.dov_id, da=dov.created_by)

    def abort(self, txn_id: str) -> None:
        """Phase 2 abort: the staged DOV is discarded."""
        dov_id = self._staged.pop(txn_id, None)
        if dov_id is not None:
            self.repository.abort_checkin(dov_id)
            self._record("checkin_aborted", dov_id)

    def request_checkin(self, txn_id: str, da_id: str, dot_name: str,
                        data: dict[str, Any], parents: list[str]) -> None:
        """Stash a checkin request before the coordinator runs 2PC.

        The modification of a DA's derivation graph during checkin is
        protected by a short (write) lock on the graph resource
        (Sect.5.2: "the TM has to protect the proliferation of the DA's
        derivation graph ... employing a locking protocol based on
        short locks").
        """
        node = self.network.node(self.node_id)
        node.require_up()
        node.volatile[f"checkin-req:{txn_id}"] = {
            "da_id": da_id,
            "dot_name": dot_name,
            "data": data,
            "parents": parents,
            "graph_lock": f"graph:{da_id}",
        }

    def checkin_error(self, txn_id: str) -> str | None:
        """Why the prepare for *txn_id* voted NO (integrity message)."""
        node = self.network.node(self.node_id)
        return node.volatile.get(f"checkin-err:{txn_id}")

    def staged_dov(self, txn_id: str) -> str | None:
        """Id assigned to the staged DOV of *txn_id*, if prepare succeeded."""
        node = self.network.node(self.node_id)
        return node.volatile.get(f"checkin-dov:{txn_id}")

    # -- End-of-DOP support ---------------------------------------------------------

    def release_derivation_locks(self, da_id: str,
                                 dov_ids: list[str] | None = None) -> int:
        """Release derivation locks at End-of-DOP (commit *and* abort).

        "the server-TM is firstly asked to release the derivation locks
        held (if any)" (Sect.5.2).
        """
        if dov_ids is None:
            released = self.locks.release_all(da_id, LockMode.DERIVATION)
        else:
            released = 0
            for dov_id in dov_ids:
                released += self.locks.release(dov_id, da_id,
                                               LockMode.DERIVATION)
        if released:
            self._record("derivation_locks_released", da_id, count=released)
        return released


class ClientTM:
    """Workstation-side transaction manager for one workstation.

    Manages the internal structure of the DOPs running on its machine:
    contexts, savepoints, recovery points, suspend/resume, and the
    coordinator role in the checkin 2PC.
    """

    def __init__(self, workstation: str, server_tm: ServerTM,
                 rpc: TransactionalRpc, clock: SimClock,
                 ids: IdGenerator | None = None,
                 policy: RecoveryPointPolicy | None = None,
                 trace: EventTrace | None = None,
                 protocol: CommitProtocol = CommitProtocol.PRESUMED_ABORT
                 ) -> None:
        self.workstation = workstation
        self.server_tm = server_tm
        self.rpc = rpc
        self.clock = clock
        self.ids = ids or IdGenerator()
        self.trace = trace if trace is not None else EventTrace(enabled=False)
        node = rpc.network.node(workstation)
        self.node = node
        self.recovery = RecoveryManager(node.stable, policy)
        self.coordinator = TwoPhaseCoordinator(
            rpc.network, workstation, protocol=protocol)
        #: volatile table of running DOPs — lost on workstation crash
        self._active: dict[str, DesignOperation] = {}
        #: callback fired with (dop, CheckinResult) on End-of-DOP; the DM
        #: installs itself here ("gives the appropriate message ... to
        #: its DM", Sect.5.2)
        self.on_dop_finished: Callable[[DesignOperation, CheckinResult],
                                       None] | None = None
        node.on_crash.append(self._on_crash)

    # -- infrastructure -----------------------------------------------------------

    def _record(self, operation: str, subject: str, **detail: Any) -> None:
        self.trace.record(self.clock.now, Level.TE,
                          f"client-TM:{self.workstation}",
                          operation, subject, **detail)

    def _on_crash(self) -> None:
        # volatile DOP table vanishes with the workstation
        self._active.clear()

    def active_dops(self) -> list[DesignOperation]:
        """The DOPs currently running on this workstation."""
        return list(self._active.values())

    def get_dop(self, dop_id: str) -> DesignOperation:
        """Look up a running DOP."""
        try:
            return self._active[dop_id]
        except KeyError:
            raise TransactionError(
                f"DOP {dop_id!r} is not active on {self.workstation!r} "
                f"(crashed or finished?)") from None

    def _take_recovery_point(self, dop: DesignOperation,
                             reason: str) -> None:
        self.recovery.take(dop.dop_id, dop.context, dop.savepoints,
                           self.clock.now, reason)
        dop.work_since_recovery_point = 0.0
        self._record("recovery_point", dop.dop_id, reason=reason)

    # -- Begin-of-DOP -----------------------------------------------------------------

    def begin_dop(self, da_id: str, tool: str,
                  start_params: dict[str, Any] | None = None
                  ) -> DesignOperation:
        """Begin-of-DOP: create and activate a new design operation."""
        self.node.require_up()
        dop = DesignOperation(
            dop_id=self.ids.next("dop"),
            da_id=da_id,
            workstation=self.workstation,
            tool=tool,
            start_params=dict(start_params or {}),
            started_at=self.clock.now,
        )
        dop.require("activate")
        dop.transition(DopState.ACTIVE)
        self._active[dop.dop_id] = dop
        self._record("begin_dop", dop.dop_id, da=da_id, tool=tool)
        return dop

    # -- checkout -----------------------------------------------------------------------

    def checkout(self, dop: DesignOperation, dov_id: str,
                 derivation_lock: bool = False) -> DesignObjectVersion:
        """Check out an input DOV into the DOP's context.

        The server performs scope + derivation-lock checks; afterwards
        a recovery point is taken so a crash never repeats the request
        (Sect.5.2).
        """
        dop.require("checkout")
        result = self.rpc.call(
            self.workstation, self.server_tm.node_id, "checkout",
            dop.da_id, dop.dop_id, dov_id, derivation_lock)
        dov: DesignObjectVersion = result.value
        dop.input_dovs.append(dov_id)
        dop.context.checked_out.append(dov_id)
        dop.context.data.update(dov.copy_data())
        self._record("checkout", dov_id, dop=dop.dop_id)
        if self.recovery.policy.after_checkout:
            self._take_recovery_point(dop, "checkout")
        return dov

    # -- tool processing ----------------------------------------------------------------

    def work(self, dop: DesignOperation, effort: float,
             mutate: Callable[[DopContext], None] | None = None,
             advance_clock: bool = True) -> None:
        """Apply *effort* simulated minutes of tool work to the context.

        Advances the simulated clock, applies the tool's mutation, and
        takes a periodic recovery point when the policy says one is due.
        Under the concurrent kernel the clock is driven by the event
        times themselves — those callers pass ``advance_clock=False``
        because the kernel already sits at the work's finish instant.
        """
        dop.require("work")
        self.node.require_up()
        if advance_clock:
            self.clock.advance(effort)
        if mutate is not None:
            mutate(dop.context)
        dop.context.work_done += effort
        dop.work_since_recovery_point += effort
        if self.recovery.policy.due(dop.work_since_recovery_point):
            self._take_recovery_point(dop, "interval")

    # -- savepoints -------------------------------------------------------------------------

    def save(self, dop: DesignOperation, name: str) -> None:
        """Designer-initiated Save (Sect.4.3)."""
        dop.require("save")
        dop.savepoints.save(name, dop.context)
        # savepoints are implemented with the recovery-point mechanism
        self._take_recovery_point(dop, f"savepoint:{name}")
        self._record("save", dop.dop_id, savepoint=name)

    def restore(self, dop: DesignOperation, name: str | None = None) -> None:
        """Designer-initiated Restore: roll back to a marked state."""
        dop.require("restore")
        dop.context = dop.savepoints.restore(name)
        self._record("restore", dop.dop_id, savepoint=name or "<latest>")

    # -- suspend / resume ----------------------------------------------------------------------

    def suspend(self, dop: DesignOperation) -> None:
        """Suspend the DOP; its context is made persistent."""
        dop.require("suspend")
        self._take_recovery_point(dop, "suspend")
        dop.transition(DopState.SUSPENDED)
        self._record("suspend", dop.dop_id)

    def resume(self, dop: DesignOperation) -> None:
        """Resume a suspended DOP; state equals the suspend-time state."""
        dop.require("resume")
        context, savepoints, _ = self.recovery.restore(dop.dop_id)
        dop.context = context
        dop.savepoints = savepoints
        dop.transition(DopState.ACTIVE)
        self._record("resume", dop.dop_id)

    # -- checkin -----------------------------------------------------------------------------------

    def checkin(self, dop: DesignOperation, dot_name: str,
                data: dict[str, Any] | None = None,
                parents: list[str] | None = None) -> CheckinResult:
        """Check in the derived DOV under two-phase commit.

        On success the new DOV id is recorded on the DOP.  On an
        integrity violation the result carries the server's reason —
        the 'checkin failure' situation the client-TM "has to indicate
        ... to the DM" (Sect.5.2).
        """
        dop.require("checkin")
        payload = data if data is not None else dict(dop.context.data)
        lineage = parents if parents is not None else list(dop.input_dovs)
        txn_id = self.ids.next(f"txn-{self.workstation}")
        self.rpc.call(self.workstation, self.server_tm.node_id,
                      "request_checkin", txn_id, dop.da_id, dot_name,
                      payload, lineage)
        outcome = self.coordinator.execute(txn_id, [self.server_tm])
        if outcome.committed:
            dov_id = self.server_tm.staged_dov(txn_id)
            dov = self.server_tm.repository.read(dov_id)
            dop.output_dov = dov.dov_id
            self._record("checkin", dov.dov_id, dop=dop.dop_id)
            return CheckinResult(True, dov=dov, outcome=outcome)
        reason = self.server_tm.checkin_error(txn_id) or "2PC abort"
        self._record("checkin_failed", dop.dop_id, reason=reason)
        return CheckinResult(False, reason=reason, outcome=outcome)

    # -- End-of-DOP ------------------------------------------------------------------------------------

    def _finish(self, dop: DesignOperation, state: DopState,
                result: CheckinResult) -> None:
        # release derivation locks first, then drop savepoints and the
        # recovery point, then message the DM — the Sect.5.2 order.
        self.rpc.call(self.workstation, self.server_tm.node_id,
                      "release_derivation_locks", dop.da_id,
                      list(dop.input_dovs))
        dop.savepoints.clear()
        self.recovery.remove(dop.dop_id)
        dop.transition(state)
        dop.finished_at = self.clock.now
        self._active.pop(dop.dop_id, None)
        self._record("end_dop", dop.dop_id, state=state.value)
        if self.on_dop_finished is not None:
            self.on_dop_finished(dop, result)

    def drop_dop(self, dop: DesignOperation) -> None:
        """Forget a DOP whose start could not complete (server down
        before the first checkout).  Purely local volatile cleanup —
        nothing reached the server, so there is nothing to abort
        there; the caller begins a fresh DOP on retry."""
        self._active.pop(dop.dop_id, None)
        self.recovery.remove(dop.dop_id)
        self._record("drop_dop", dop.dop_id)

    def commit_dop(self, dop: DesignOperation,
                   result: CheckinResult | None = None) -> None:
        """End-of-DOP (commit): close processing after a final state."""
        dop.require("commit")
        self._finish(dop, DopState.COMMITTED,
                     result or CheckinResult(True, dov=None))

    def abort_dop(self, dop: DesignOperation, reason: str = "") -> None:
        """End-of-DOP (abort): the DOP "will abort its activities"."""
        dop.require("abort")
        self._finish(dop, DopState.ABORTED, CheckinResult(False,
                                                          reason=reason))

    # -- workstation-crash recovery -----------------------------------------------------------------------

    def recover_dop(self, dop_id: str, da_id: str, tool: str
                    ) -> tuple[DesignOperation, float]:
        """Rebuild a crashed DOP from its most recent recovery point.

        Returns the re-activated DOP and the simulated time the recovery
        point was taken at (the caller knows the crash time and derives
        the lost work as ``context.work_done`` deltas).  Raises
        :class:`RecoveryError` when no point exists — then the DOP is
        lost entirely and must restart from its beginning.
        """
        self.node.require_up()
        context, savepoints, point = self.recovery.restore(dop_id)
        dop = DesignOperation(
            dop_id=dop_id, da_id=da_id, workstation=self.workstation,
            tool=tool, started_at=point.taken_at,
        )
        dop.transition(DopState.ACTIVE)
        dop.context = context
        dop.savepoints = savepoints
        dop.input_dovs = list(context.checked_out)
        self._active[dop_id] = dop
        self._record("recover_dop", dop_id, from_point=point.reason,
                     taken_at=point.taken_at)
        return dop, point.taken_at


def register_server_endpoints(rpc: TransactionalRpc,
                              server_tm: ServerTM) -> None:
    """Expose the server-TM operations as transactional RPC endpoints."""
    rpc.register(server_tm.node_id, "checkout", server_tm.checkout)
    rpc.register(server_tm.node_id, "request_checkin",
                 server_tm.request_checkin)
    rpc.register(server_tm.node_id, "release_derivation_locks",
                 server_tm.release_derivation_locks)
