"""The transaction manager (TM): client-TM and server-TM.

Sect.5.1/5.2: the TM "is split into two subcomponents.  The server-TM
handles checkout/checkin and controls concurrent access to DOVs, thus
residing on the server, whereas the client-TM resides on the
workstation managing the internal structure of DOPs."  Their critical
interactions (checkin) run under two-phase commit.

* :class:`ServerTM` — scope-checked checkout with derivation locking,
  two-phase checkin against the repository (it is the 2PC
  *participant*), derivation-lock release on End-of-DOP, WAL-backed
  durability (delegated to the repository), and the **lease table** of
  the data-shipping protocol (the txn layer's
  :class:`~repro.txn.leases.LeaseTable`): every version shipped to a
  buffering workstation is leased per ``(workstation, dov_id)``; a
  committed checkin revokes the leases on the versions it supersedes
  with asynchronous invalidation messages over the simulated LAN, and
  with ``lease_ttl`` set the regime becomes **TTL renewal**: an
  unrenewed lease expires via a kernel timer event and the expiry
  behaves exactly like a recall, while renewals are metadata-only
  messages.
* :class:`ClientTM` — Begin/End-of-DOP, checkout (buffer-first: a hit
  in the workstation's :class:`~repro.te.object_buffer.ObjectBuffer`
  costs zero network events, a miss ships the payload size-aware), the
  mandatory post-checkout recovery point, tool-work application with
  periodic recovery points, Save/Restore, Suspend/Resume, and
  workstation-crash recovery from the most recent recovery point (the
  buffer is volatile: a crash drops it and recovery re-fetches through
  the normal chain).

Both TMs are **thin participants of the txn layer**
(:mod:`repro.txn`): the commit drive itself — txn ids, request
stashing, sized payload shipment, the prepare/decide/complete run —
belongs to the :class:`~repro.txn.gateway.CommitGateway` each
client-TM owns; the TMs validate, stage and apply.

Checkin runs in one of two modes:

* **write-through** (default, the seed behaviour): every checkin ships
  its payload and runs its own 2PC immediately;
* **write-back** (``ClientTM(write_back=True)``): checkins stage
  *dirty* provisional versions in the object buffer and ship later as
  one batched, sized **group checkin** under a single 2PC — triggered
  by End-of-DOP, a lease recall touching dirty lineage, capacity
  pressure (which ships only the oldest ``pressure_fraction`` prefix
  of the dirty set), an optional dirty-set size threshold
  (``flush_interval``), or an explicit :meth:`ClientTM.flush`.
  Successive checkins of the same lineage coalesce before shipping,
  and a workstation crash drops unflushed dirty data (recovered from
  repository state, not from the buffer).  Several workstations'
  dirty sets can additionally commit under ONE coordinator and ONE
  decision via :func:`repro.txn.flush_group` — the cross-workstation
  group commit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.network import Network
from repro.net.rpc import TransactionalRpc
from repro.net.two_phase_commit import (
    CommitOutcome,
    CommitProtocol,
    Vote,
)
from repro.txn.gateway import CommitGateway, GroupRequest
from repro.txn.leases import LeaseTable
from repro.repository.repository import DesignDataRepository
from repro.repository.versions import (
    DesignObjectVersion,
    freeze_payload,
    is_frozen_payload,
    payload_fast_path_enabled,
    payload_sizeof,
)
from repro.sim.clock import SimClock
from repro.te.context import DopContext, SavepointStack
from repro.te.dop import DesignOperation, DopState
from repro.te.object_buffer import ObjectBuffer
from repro.te.locks import LockManager, LockMode
from repro.te.recovery import RecoveryManager, RecoveryPointPolicy
from repro.util.errors import (
    IntegrityError,
    LockConflictError,
    NetworkError,
    RecoveryError,
    ScopeViolationError,
    TransactionError,
)
from repro.util.ids import IdGenerator
from repro.util.trace import EventTrace, Level


@dataclass
class CheckinResult:
    """Outcome of a checkin reported to the DM (Sect.5.2/5.3).

    In write-back mode a successful checkin is *provisional*: the
    version lives only in the workstation buffer (``dov`` carries a
    provisional id) until a flush ships it; integrity validation is
    deferred to the flush, whose :class:`FlushResult` carries any
    rejection.
    """

    success: bool
    dov: DesignObjectVersion | None = None
    reason: str = ""
    outcome: CommitOutcome | None = None
    #: True when the version is an unflushed write-back entry
    provisional: bool = False


@dataclass
class FlushResult:
    """Outcome of one group checkin (write-back flush)."""

    success: bool
    #: checkins shipped in the batch (0 = nothing was dirty)
    count: int = 0
    #: payload bytes the batch shipped over the LAN
    bytes_shipped: int = 0
    #: provisional id -> durable id assigned by the server
    mapping: dict[str, str] = field(default_factory=dict)
    reason: str = ""
    outcome: CommitOutcome | None = None


class ServerTM:
    """Server-side transaction manager: shared access to the repository."""

    def __init__(self, repository: DesignDataRepository,
                 locks: LockManager, network: Network,
                 node_id: str = "server",
                 trace: EventTrace | None = None,
                 clock: SimClock | None = None,
                 lease_ttl: float | None = None) -> None:
        self.repository = repository
        self.locks = locks
        self.network = network
        self.node_id = node_id
        self.trace = trace if trace is not None else EventTrace(enabled=False)
        self.clock = clock or SimClock()
        #: callback(da_id, dov_id) -> bool installed by the CM; the default
        #: admits only the DA's own derivation graph (Sect.4.1's rule that
        #: "without further authorization a DA is only allowed to read
        #: DOVs of its own derivation graph").
        self.scope_check: Callable[[str, str], bool] = self._default_scope
        #: staged checkins per 2PC transaction id
        self._staged: dict[str, str] = {}
        #: staged *group* checkins: txn_id -> dov ids in batch order
        self._staged_groups: dict[str, list[str]] = {}
        #: lease time-to-live (None keeps the PR 2 recall-only regime;
        #: a number switches to TTL renewal leases: unrenewed leases
        #: expire via kernel timer events, and expiry behaves exactly
        #: like a recall)
        self.lease_ttl = lease_ttl
        #: read leases of the data-shipping protocol, per
        #: ``(workstation, dov_id)`` — the txn layer's lease table
        self.leases = LeaseTable(
            clock=self.clock, ttl=lease_ttl,
            kernel_source=lambda: network.kernel,
            owner=node_id)
        self.leases.on_expire = self._on_lease_expired
        #: dict-of-sets era alias (rigs seeded ``_leases`` directly)
        self._leases = self.leases
        #: workstation -> its object buffer (invalidation delivery target)
        self._buffers: dict[str, ObjectBuffer] = {}
        #: invalidation messages scheduled over the LAN
        self.invalidations_sent = 0
        #: renewals that rode along on checkout/checkin control
        #: messages instead of a dedicated renewal message
        self.renewals_piggybacked = 0
        #: modelled size of one lease-invalidation control message
        self.invalidation_bytes = 16
        #: group checkins committed (each one batched 2PC run)
        self.group_checkins = 0
        #: restart policy: True re-validates resident buffer entries
        #: against repository stamps (warm caches survive recovery),
        #: False keeps the seed's conservative cold flush.  Standalone
        #: TE rigs default to the flush; :class:`ConcordSystem` turns
        #: re-validation on (its hook ordering guarantees the
        #: repository has recovered before the stamps are read).
        self.revalidate_on_restart = False
        # supersession notices: every committed version revokes the
        # leases on its parents (plain repository and federation alike
        # expose the on_commit observer)
        if hasattr(repository, "on_commit"):
            repository.on_commit = self._on_repository_commit
        # the lease table is volatile server state and died with the
        # server; a restart must either re-validate the registered
        # workstation buffers against fresh repository stamps or flush
        # them — an unleased, unvalidated copy could never be revoked
        # again
        try:
            node = network.node(node_id)
            node.on_crash.append(self.clear_leases)
            node.on_restart.append(self._on_server_restart)
        except NetworkError:
            pass  # node registered later; leases then live unguarded

    def _default_scope(self, da_id: str, dov_id: str) -> bool:
        if not self.repository.has_graph(da_id):
            return False
        return dov_id in self.repository.graph(da_id)

    def _record(self, operation: str, subject: str, **detail: Any) -> None:
        self.trace.record(self.clock.now, Level.TE, f"server-TM",
                          operation, subject, **detail)

    # -- checkout ---------------------------------------------------------------

    def checkout(self, da_id: str, dop_id: str, dov_id: str,
                 derivation_lock: bool = False,
                 workstation: str | None = None,
                 lease: bool = False,
                 renew: bool = False) -> DesignObjectVersion:
        """Scope-checked read of a DOV with optional derivation lock.

        Implements Sect.5.2's checkout: "it has to be tested that,
        firstly, the DOV belongs to the scope of the DOP's DA, and,
        secondly, there is no incompatible derivation lock on the DOV."
        The critical section itself is protected by a short read lock.
        With ``lease=True`` the server additionally records a read
        lease for *workstation* — the promise to invalidate the
        shipped copy when a later checkin supersedes it.

        Runs synchronously on the RPC's stack; the payload shipment
        (a sized async message, i.e. a timed kernel event under the
        concurrent kernel) is the *caller's* doing — see
        :meth:`ClientTM._ship_payload`.
        """
        self.network.node(self.node_id).require_up()
        if not self.scope_check(da_id, dov_id):
            self._record("checkout_denied", dov_id, da=da_id,
                         reason="scope")
            raise ScopeViolationError(
                f"DOV {dov_id!r} is not in the scope of DA {da_id!r}")
        holders = self.locks.holders(dov_id, LockMode.DERIVATION)
        foreign = [h for h in holders if h.holder != da_id]
        if foreign:
            raise LockConflictError(
                f"DOV {dov_id!r} derivation-locked by {foreign[0].holder!r}",
                holder=foreign[0].holder)
        self.locks.acquire(dov_id, dop_id, LockMode.SHORT_READ)
        try:
            dov = self.repository.read(dov_id)
            if derivation_lock:
                self.locks.acquire(dov_id, da_id, LockMode.DERIVATION)
        finally:
            self.locks.release(dov_id, dop_id, LockMode.SHORT_READ)
        if renew and workstation is not None:
            # renewal metadata folded onto this control message — the
            # workstation's whole lease set extends without a
            # dedicated renewal message on the LAN
            self._piggyback_renewal(workstation)
        if lease and workstation is not None:
            self.leases.grant(workstation, dov_id)
        self._record("checkout", dov_id, da=da_id, dop=dop_id,
                     derivation_lock=derivation_lock,
                     leased=bool(lease and workstation))
        return dov

    # -- checkin (2PC participant interface) --------------------------------------

    def prepare(self, txn_id: str) -> Vote:
        """Phase 1 of checkin: validate + stage the new DOV(s).

        The request payload is stashed under *txn_id* by
        :meth:`request_checkin` (single) or
        :meth:`request_group_checkin` (batch) before the coordinator
        starts 2PC.  Runs synchronously on the coordinator's stack —
        no kernel events of its own; the network costs are the 2PC
        messages the coordinator accounts.
        """
        node = self.network.node(self.node_id)
        node.require_up()
        group = node.volatile.get(f"group-checkin-req:{txn_id}")
        if group is not None:
            return self._prepare_group(txn_id, group)
        request = node.volatile.get(f"checkin-req:{txn_id}")
        if request is None:
            return Vote.NO
        da_id = request["da_id"]
        try:
            self.locks.acquire(request["graph_lock"], txn_id,
                               LockMode.SHORT_WRITE)
            try:
                dov = self.repository.stage_checkin(
                    da_id=da_id,
                    dot_name=request["dot_name"],
                    data=request["data"],
                    parents=tuple(request["parents"]),
                    created_at=self.clock.now,
                )
            finally:
                self.locks.release(request["graph_lock"], txn_id,
                                   LockMode.SHORT_WRITE)
        except (IntegrityError, Exception) as exc:
            node.volatile[f"checkin-err:{txn_id}"] = str(exc)
            self._record("checkin_prepare_failed", da_id, error=str(exc))
            return Vote.NO
        self._staged[txn_id] = dov.dov_id
        node.volatile[f"checkin-dov:{txn_id}"] = dov.dov_id
        self._record("checkin_prepared", dov.dov_id, da=da_id)
        return Vote.YES

    def _prepare_group(self, txn_id: str, request: dict[str, Any]) -> Vote:
        """Phase 1 of a group checkin: stage the whole batch or nothing.

        Records are staged in batch order; parents naming an earlier
        record's provisional id resolve to the durable id the server
        just assigned it, so an unflushed lineage ships as one
        consistent chain.  Graph locks are acquired **batched**: one
        short write lock per distinct DA for the whole batch instead
        of an acquire/release pair per record — same protection (the
        batch is one critical section per graph), a fraction of the
        lock traffic.  Any failure (integrity violation, unknown
        parent, lock conflict) un-stages everything already staged and
        votes NO — atomicity at the staging level; the durability
        level is covered by the repository's single-force group
        commit.
        """
        node = self.network.node(self.node_id)
        records = request["records"]
        staged: list[str] = []
        mapping: dict[str, str] = {}
        ws_by_dov: dict[str, str] = {}
        graph_locks = list(dict.fromkeys(
            f"graph:{record['da_id']}" for record in records))
        acquired: list[str] = []
        try:
            for graph_lock in graph_locks:
                self.locks.acquire(graph_lock, txn_id,
                                   LockMode.SHORT_WRITE)
                acquired.append(graph_lock)
            now = self.clock.now
            for record in records:
                dov = self.repository.stage_checkin(
                    da_id=record["da_id"],
                    dot_name=record["dot_name"],
                    data=record["data"],
                    parents=tuple(mapping.get(p, p)
                                  for p in record["parents"]),
                    created_at=now,
                )
                staged.append(dov.dov_id)
                mapping[record["provisional_id"]] = dov.dov_id
                workstation = record.get("workstation") \
                    or request.get("workstation")
                if workstation:
                    ws_by_dov[dov.dov_id] = workstation
        except Exception as exc:  # noqa: BLE001 - any failure aborts
            abort_group = getattr(self.repository, "abort_group", None)
            if abort_group is not None:
                abort_group(staged)
            else:
                for dov_id in reversed(staged):
                    self.repository.abort_checkin(dov_id)
            node.volatile[f"checkin-err:{txn_id}"] = str(exc)
            self._record("group_checkin_prepare_failed", txn_id,
                         error=str(exc),
                         staged_rolled_back=len(staged))
            return Vote.NO
        finally:
            for graph_lock in acquired:
                self.locks.release(graph_lock, txn_id,
                                   LockMode.SHORT_WRITE)
        self._staged_groups[txn_id] = staged
        node.volatile[f"group-checkin-map:{txn_id}"] = mapping
        node.volatile[f"group-checkin-ws:{txn_id}"] = ws_by_dov
        self._record("group_checkin_prepared", txn_id, count=len(staged))
        return Vote.YES

    def commit(self, txn_id: str) -> None:
        """Phase 2 commit: the staged DOV(s) become durable.

        The repository's commit observer fires the supersession
        invalidations for each new version's parents — asynchronous
        sized LAN messages (ordinary timed kernel events under the
        concurrent kernel, scheduled in deterministic batch order);
        afterwards the committing workstation — which keeps the fresh
        versions in its buffer without any extra shipping — gets a
        lease on each.  A group commits through the repository's
        atomic single-force path.
        """
        group = self._staged_groups.pop(txn_id, None)
        if group is not None:
            self._commit_group(txn_id, group)
            return
        dov_id = self._staged.pop(txn_id, None)
        if dov_id is None:
            raise TransactionError(f"nothing staged for txn {txn_id!r}")
        dov = self.repository.commit_checkin(dov_id)
        request = self.network.node(self.node_id).volatile.get(
            f"checkin-req:{txn_id}") or {}
        if request.get("lease") and request.get("workstation"):
            self.leases.grant(request["workstation"], dov.dov_id)
        self._record("checkin_committed", dov.dov_id, da=dov.created_by)

    def _commit_group(self, txn_id: str, staged: list[str]) -> None:
        commit_group = getattr(self.repository, "commit_group", None)
        if commit_group is not None:
            dovs = commit_group(staged)
        else:  # repository without the batch surface: per-version path
            dovs = [self.repository.commit_checkin(dov_id)
                    for dov_id in staged]
        node = self.network.node(self.node_id)
        request = node.volatile.get(f"group-checkin-req:{txn_id}") or {}
        if request.get("lease"):
            # a cross-workstation batch stamps each record with its
            # origin; leases go to the contributor, not the coordinator
            ws_by_dov = node.volatile.get(
                f"group-checkin-ws:{txn_id}") or {}
            for dov in dovs:
                workstation = ws_by_dov.get(dov.dov_id)
                if workstation:
                    self.leases.grant(workstation, dov.dov_id)
        node.volatile[f"group-checkin-dovs:{txn_id}"] = list(dovs)
        self.group_checkins += 1
        self._record("group_checkin_committed", txn_id, count=len(dovs))

    def abort(self, txn_id: str) -> None:
        """Phase 2 abort: the staged DOV(s) are discarded."""
        group = self._staged_groups.pop(txn_id, None)
        if group is not None:
            abort_group = getattr(self.repository, "abort_group", None)
            if abort_group is not None:
                abort_group(group)
            else:
                for dov_id in reversed(group):
                    self.repository.abort_checkin(dov_id)
            self._record("group_checkin_aborted", txn_id,
                         count=len(group))
            return
        dov_id = self._staged.pop(txn_id, None)
        if dov_id is not None:
            self.repository.abort_checkin(dov_id)
            self._record("checkin_aborted", dov_id)

    def request_checkin(self, txn_id: str, da_id: str, dot_name: str,
                        data: dict[str, Any], parents: list[str],
                        workstation: str | None = None,
                        lease: bool = False,
                        renew: bool = False) -> None:
        """Stash a checkin request before the coordinator runs 2PC.

        The modification of a DA's derivation graph during checkin is
        protected by a short (write) lock on the graph resource
        (Sect.5.2: "the TM has to protect the proliferation of the DA's
        derivation graph ... employing a locking protocol based on
        short locks").
        """
        node = self.network.node(self.node_id)
        node.require_up()
        if renew and workstation is not None:
            self._piggyback_renewal(workstation)
        node.volatile[f"checkin-req:{txn_id}"] = {
            "da_id": da_id,
            "dot_name": dot_name,
            "data": data,
            "parents": parents,
            "graph_lock": f"graph:{da_id}",
            "workstation": workstation,
            "lease": lease,
        }

    def request_group_checkin(self, txn_id: str,
                              records: list[dict[str, Any]],
                              workstation: str | None = None,
                              lease: bool = False,
                              renew: bool = False) -> int:
        """Stash a batched (write-back) checkin before the 2PC runs.

        *records* carry the deferred checkin requests in the
        workstation's original checkin order, each with its
        ``provisional_id`` so the server can map unflushed lineage to
        the durable ids it assigns during :meth:`prepare`.  Like
        :meth:`request_checkin` this is a control message; the batch's
        payload bytes travel as one separate sized LAN message the
        client posts.  Returns the accepted record count.
        """
        node = self.network.node(self.node_id)
        node.require_up()
        if renew and workstation is not None:
            self._piggyback_renewal(workstation)
        node.volatile[f"group-checkin-req:{txn_id}"] = {
            "records": [dict(record) for record in records],
            "workstation": workstation,
            "lease": lease,
        }
        return len(records)

    def checkin_error(self, txn_id: str) -> str | None:
        """Why the prepare for *txn_id* voted NO (integrity message)."""
        node = self.network.node(self.node_id)
        return node.volatile.get(f"checkin-err:{txn_id}")

    def staged_dov(self, txn_id: str) -> str | None:
        """Id assigned to the staged DOV of *txn_id*, if prepare succeeded."""
        node = self.network.node(self.node_id)
        return node.volatile.get(f"checkin-dov:{txn_id}")

    def group_mapping(self, txn_id: str) -> dict[str, str]:
        """provisional id -> durable id of a prepared group checkin."""
        node = self.network.node(self.node_id)
        return dict(node.volatile.get(f"group-checkin-map:{txn_id}")
                    or {})

    def group_result(self, txn_id: str) -> list[DesignObjectVersion]:
        """The durable versions of a committed group checkin, in batch
        order (saves the gateway a read round per version)."""
        node = self.network.node(self.node_id)
        return list(node.volatile.get(f"group-checkin-dovs:{txn_id}")
                    or [])

    # -- End-of-DOP support ---------------------------------------------------------

    def release_derivation_locks(self, da_id: str,
                                 dov_ids: list[str] | None = None) -> int:
        """Release derivation locks at End-of-DOP (commit *and* abort).

        "the server-TM is firstly asked to release the derivation locks
        held (if any)" (Sect.5.2).
        """
        if dov_ids is None:
            released = self.locks.release_all(da_id, LockMode.DERIVATION)
        else:
            released = 0
            for dov_id in dov_ids:
                released += self.locks.release(dov_id, da_id,
                                               LockMode.DERIVATION)
        if released:
            self._record("derivation_locks_released", da_id, count=released)
        return released

    # -- object-buffer leases (data-shipping coherence) -----------------------------

    def register_buffer(self, workstation: str,
                        buffer: ObjectBuffer) -> None:
        """Make *workstation*'s buffer the target of its invalidations.

        Capacity evictions release the server-side lease too — an
        evicted copy must not draw invalidation traffic later.
        Registration order is the order restart re-validation walks
        the buffers in, part of the determinism contract.
        """
        self._buffers[workstation] = buffer
        buffer.on_evict = (
            lambda dov_id, ws=workstation: self.release_lease(ws, dov_id))

    def lease_holders(self, dov_id: str) -> set[str]:
        """Workstations currently leasing a buffered copy of *dov_id*."""
        return self.leases.holders(dov_id)

    def release_lease(self, workstation: str, dov_id: str) -> bool:
        """Release one lease (buffer eviction); True when it existed."""
        return self.leases.release(workstation, dov_id)

    def drop_leases(self, workstation: str) -> int:
        """Forget every lease of one workstation (its crash dropped the
        buffered copies, so there is nothing left to invalidate)."""
        return self.leases.drop_workstation(workstation)

    def clear_leases(self) -> None:
        """Server crash: the (volatile) lease table vanishes."""
        self.leases.clear()

    def _piggyback_renewal(self, workstation: str) -> int:
        """Renewal metadata carried by an in-flight control message.

        Same lease-table effect as :meth:`renew_leases`, zero extra
        LAN traffic — the fallback dedicated renewal message is only
        needed when no checkout/checkin is in flight to carry it.
        """
        renewed = self.leases.renew_workstation(workstation)
        if renewed:
            self.renewals_piggybacked += 1
            self._record("leases_renewed_piggyback", workstation,
                         count=renewed)
        return renewed

    def renew_leases(self, workstation: str) -> int:
        """Handle a workstation's metadata-only renewal message.

        Extends every lease the workstation holds by one fresh TTL; a
        lease that already expired (or was recalled) while the message
        was in flight stays dead — a renewal never resurrects, which
        is what makes expiry racing an in-flight renewal safe.
        Returns the number of leases extended.
        """
        renewed = self.leases.renew_workstation(workstation)
        self._record("leases_renewed", workstation, count=renewed)
        return renewed

    def _on_lease_expired(self, workstation: str, dov_id: str) -> None:
        """A TTL lease ran out unrenewed: expiry behaves like a recall.

        The buffered copy is invalidated with the same asynchronous
        LAN message an explicit supersession recall would send — the
        workstation cannot tell the difference, by design.
        """
        self._post_invalidation(workstation, dov_id,
                                superseded_by="<lease-expired>")

    def _on_server_restart(self) -> None:
        """Restart hook: re-validate or flush the registered buffers.

        Dispatches on :attr:`revalidate_on_restart`.  When
        re-validating, the repository must already have recovered
        (hook-registration order is the caller's contract —
        :class:`~repro.core.system.ConcordSystem` registers the
        repository's recovery before constructing the server-TM).
        """
        if self.revalidate_on_restart:
            self.revalidate_buffers()
        else:
            self.flush_buffers()

    def flush_buffers(self) -> None:
        """Server restart (conservative path): flush every registered
        workstation buffer.

        The lease table died with the server, so surviving buffered
        copies could never be invalidated again; re-reads repopulate
        the buffers through the normal checkout chain.  This was the
        seed behaviour and stays reachable via
        ``restart_server(revalidate=False)`` /
        ``revalidate_on_restart = False``.  Dirty (unflushed
        write-back) entries survive either restart path: they were
        never shipped, so the server's death says nothing about them —
        a later flush ships them against the recovered repository.
        """
        for buffer in self._buffers.values():
            buffer.drop_clean()

    def revalidate_buffers(self) -> dict[str, dict[str, int]]:
        """Server restart (warm path): stamp-based buffer re-validation.

        Instead of cold-flushing, each registered buffer's clean
        resident ids are checked against fresh repository stamps
        (:meth:`~repro.repository.repository.DesignDataRepository.describe_many`
        — metadata only, no payload shipping).  Entries whose stamp
        still matches stay resident and get a **new read lease**, so
        coherence is restored without re-shipping a byte; stale or
        vanished entries drop.  Buffers are processed in registration
        order and ids in residence order — deterministic, and purely
        synchronous (no kernel events: re-validation is part of the
        restart instant).  Returns ``{workstation: {kept, dropped}}``.
        """
        describe_many = getattr(self.repository, "describe_many", None)
        report: dict[str, dict[str, int]] = {}
        for workstation, buffer in self._buffers.items():
            clean = buffer.clean_ids()
            if describe_many is not None:
                descriptions = describe_many(clean)
            else:
                descriptions = {}
                for dov_id in clean:
                    if dov_id in self.repository:
                        descriptions[dov_id] = \
                            self.repository.describe(dov_id)
            kept = buffer.revalidate(descriptions)
            for dov_id in buffer.clean_ids():
                self.leases.grant(workstation, dov_id)
            dropped = len(clean) - kept
            report[workstation] = {"kept": kept, "dropped": dropped}
            self._record("buffers_revalidated", workstation,
                         kept=kept, dropped=dropped)
        return report

    def _on_repository_commit(self, dov: DesignObjectVersion) -> None:
        """A version became durable: revoke the leases it supersedes.

        The new DOV's parents are no longer the frontier of the design
        state; every workstation buffering one of them gets an
        asynchronous invalidation over the LAN (an ordinary timed
        kernel event under the concurrent kernel, a synchronous
        handoff otherwise).  The lease itself is revoked immediately —
        the server stops promising coherence the moment it schedules
        the notice.
        """
        targets = getattr(self.repository, "invalidation_targets", None)
        if targets is not None:
            superseded = targets(dov)
        else:
            superseded = list(dov.parents)
        for dov_id in superseded:
            # revoke BEFORE posting: a synchronous delivery can recall
            # a dirty dependent whose flush re-enters this observer —
            # with the lease already gone it cannot double-send
            recipients = sorted(self.leases.release_all(dov_id))
            for workstation in recipients:
                self._post_invalidation(workstation, dov_id,
                                        superseded_by=dov.dov_id)

    def _post_invalidation(self, workstation: str, dov_id: str,
                           superseded_by: str) -> None:
        buffer = self._buffers.get(workstation)

        def deliver() -> None:
            if buffer is not None:
                buffer.invalidate(dov_id)

        self.invalidations_sent += 1
        self.network.post(self.node_id, workstation, deliver,
                          label=f"invalidate:{dov_id}->{workstation}",
                          size=self.invalidation_bytes)
        self._record("lease_invalidated", dov_id,
                     workstation=workstation,
                     superseded_by=superseded_by)


class ClientTM:
    """Workstation-side transaction manager for one workstation.

    Manages the internal structure of the DOPs running on its machine:
    contexts, savepoints, recovery points, suspend/resume, and the
    coordinator role in the checkin 2PC.

    Kernel-event contract: local DOP bookkeeping (begin, work, save,
    restore, suspend, resume, recovery points) schedules **no** kernel
    events and touches **no** network state — it is invisible to the
    event trace.  Network activity happens only on the checkout miss
    path (one RPC + one sized async shipment), on write-through
    checkin (RPC + sized upload + 2PC), and on :meth:`flush` (RPC +
    one batched sized message + 2PC).  All of it is deterministic:
    message order follows program order, async deliveries are kernel
    events ordered by ``(time, priority, seq)``, so identically
    seeded runs are trace-identical.
    """

    def __init__(self, workstation: str, server_tm: ServerTM,
                 rpc: TransactionalRpc, clock: SimClock,
                 ids: IdGenerator | None = None,
                 policy: RecoveryPointPolicy | None = None,
                 trace: EventTrace | None = None,
                 protocol: CommitProtocol = CommitProtocol.PRESUMED_ABORT,
                 buffer: ObjectBuffer | None = None,
                 write_back: bool = False,
                 flush_interval: int | None = None,
                 flush_on_end_dop: bool = True,
                 pressure_fraction: float = 1.0) -> None:
        self.workstation = workstation
        self.server_tm = server_tm
        self.rpc = rpc
        self.clock = clock
        self.ids = ids or IdGenerator()
        self.trace = trace if trace is not None else EventTrace(enabled=False)
        #: the workstation's DOV object buffer (None = caching off:
        #: every checkout re-ships its payload over the LAN)
        self.buffer = buffer
        #: write-back mode: checkins stage dirty buffer entries and
        #: ship later as one group checkin (requires a buffer)
        self.write_back = write_back and buffer is not None
        #: flush automatically when the dirty set reaches this many
        #: entries (None/0 = only the other triggers); coalesced
        #: checkins never inflate the count
        self.flush_interval = flush_interval
        #: flush the dirty set at End-of-DOP (the paper-shaped default)
        self.flush_on_end_dop = flush_on_end_dop
        #: capacity-pressure flush policy: ship only the oldest dirty
        #: prefix — ``ceil(fraction * dirty)`` entries — instead of the
        #: whole set (1.0 keeps the flush-everything behaviour).  The
        #: prefix is enough to relieve pressure, and the youngest
        #: entries stay resident to keep coalescing
        self.pressure_fraction = pressure_fraction
        if buffer is not None:
            server_tm.register_buffer(workstation, buffer)
            if self.write_back:
                buffer.on_pressure = self._flush_on_pressure
                buffer.on_recall = self._flush_on_recall
        #: payload bytes fetched from the server (buffer misses and,
        #: with caching off, every checkout)
        self.bytes_fetched = 0
        #: simulated time spent shipping checkout payloads
        self.fetch_time = 0.0
        #: group checkins shipped / checkins they carried / their bytes
        self.flushes = 0
        self.flushed_checkins = 0
        self.bytes_flushed = 0
        #: provisional id -> the later provisional id that coalesced it
        self._superseded: dict[str, str] = {}
        #: provisional id -> durable id (committed group checkins)
        self._resolved: dict[str, str] = {}
        #: reentrancy guard: a flush's own commit schedules
        #: invalidations that could recall the flush mid-flight (also
        #: set by :func:`repro.txn.flush_group` while this client's
        #: dirty set rides a cross-workstation commit)
        self.flushing = False
        #: simulated instant of the last lease-renewal message (TTL
        #: leases only; renewals are rate-limited to ttl/2)
        self._last_renewal: float | None = None
        #: renewals this client folded onto outgoing control messages
        self.renewals_piggybacked = 0
        node = rpc.network.node(workstation)
        self.node = node
        self.recovery = RecoveryManager(node.stable, policy)
        #: the txn layer's commit gateway: every commit shape of this
        #: workstation (single checkin, group flush, its slice of a
        #: cross-workstation commit) is driven through it
        self.gateway = CommitGateway(rpc, server_tm, workstation,
                                     protocol=protocol, ids=self.ids)
        self.coordinator = self.gateway.coordinator
        #: volatile table of running DOPs — lost on workstation crash
        self._active: dict[str, DesignOperation] = {}
        #: callback fired with (dop, CheckinResult) on End-of-DOP; the DM
        #: installs itself here ("gives the appropriate message ... to
        #: its DM", Sect.5.2)
        self.on_dop_finished: Callable[[DesignOperation, CheckinResult],
                                       None] | None = None
        node.on_crash.append(self._on_crash)

    # -- infrastructure -----------------------------------------------------------

    def _record(self, operation: str, subject: str, **detail: Any) -> None:
        self.trace.record(self.clock.now, Level.TE,
                          f"client-TM:{self.workstation}",
                          operation, subject, **detail)

    def _on_crash(self) -> None:
        # volatile DOP table vanishes with the workstation, and so
        # does the object buffer; the server forgets the leases (there
        # is no buffered copy left to invalidate) and recovery
        # re-fetches through the normal checkout chain
        self._active.clear()
        if self.buffer is not None:
            self.buffer.clear()
            self.server_tm.drop_leases(self.workstation)

    def active_dops(self) -> list[DesignOperation]:
        """The DOPs currently running on this workstation."""
        return list(self._active.values())

    def get_dop(self, dop_id: str) -> DesignOperation:
        """Look up a running DOP."""
        try:
            return self._active[dop_id]
        except KeyError:
            raise TransactionError(
                f"DOP {dop_id!r} is not active on {self.workstation!r} "
                f"(crashed or finished?)") from None

    def _take_recovery_point(self, dop: DesignOperation,
                             reason: str) -> None:
        self.recovery.take(dop.dop_id, dop.context, dop.savepoints,
                           self.clock.now, reason)
        dop.work_since_recovery_point = 0.0
        self._record("recovery_point", dop.dop_id, reason=reason)

    # -- Begin-of-DOP -----------------------------------------------------------------

    def begin_dop(self, da_id: str, tool: str,
                  start_params: dict[str, Any] | None = None
                  ) -> DesignOperation:
        """Begin-of-DOP: create and activate a new design operation."""
        self.node.require_up()
        dop = DesignOperation(
            dop_id=self.ids.next("dop"),
            da_id=da_id,
            workstation=self.workstation,
            tool=tool,
            start_params=dict(start_params or {}),
            started_at=self.clock.now,
        )
        dop.require("activate")
        dop.transition(DopState.ACTIVE)
        self._active[dop.dop_id] = dop
        self._record("begin_dop", dop.dop_id, da=da_id, tool=tool)
        return dop

    # -- checkout -----------------------------------------------------------------------

    def checkout(self, dop: DesignOperation, dov_id: str,
                 derivation_lock: bool = False) -> DesignObjectVersion:
        """Check out an input DOV into the DOP's context, buffer-first.

        With an object buffer, a resident version the DOP's DA is
        authorized for is served locally — zero network events.  A
        miss (or a derivation-lock request, which always needs the
        server) goes through the server's scope + derivation-lock
        checks, then the payload is shipped size-aware over the LAN
        and installed in the buffer under a read lease.  Afterwards a
        recovery point is taken so a crash never repeats the request
        (Sect.5.2).
        """
        dop.require("checkout")
        if self.buffer is not None and not derivation_lock:
            cached = self.buffer.get(dov_id, dop.da_id)
            if cached is not None:
                self._maybe_renew_leases()
                self._install_checkout(dop, cached, dov_id, cached=True)
                return cached
        result = self.rpc.call(
            self.workstation, self.server_tm.node_id, "checkout",
            dop.da_id, dop.dop_id, dov_id, derivation_lock,
            workstation=self.workstation,
            lease=self.buffer is not None,
            renew=self._consume_renewal_window())
        dov: DesignObjectVersion = result.value
        self._ship_payload(dov, dop.da_id)
        self._install_checkout(dop, dov, dov_id, cached=False)
        return dov

    def _ship_payload(self, dov: DesignObjectVersion, da_id: str) -> None:
        """Account the size-aware shipment of a fetched DOV payload.

        The checkout RPC itself is control traffic; the version's data
        travels as a separate sized message whose delay scales with
        the payload bytes.  With a buffer the delivery installs the
        version (an ordinary timed kernel event under the concurrent
        kernel); without one the bytes are still shipped — and paid —
        on every read.
        """
        network = self.rpc.network
        buffer = self.buffer

        def deliver() -> None:
            if buffer is not None:
                buffer.put(dov, da_id, now=network.clock.now)

        delay = network.post(
            self.server_tm.node_id, self.workstation, deliver,
            label=f"dov-ship:{dov.dov_id}->{self.workstation}",
            size=dov.payload_size)
        self.bytes_fetched += dov.payload_size
        self.fetch_time += delay

    def _maybe_renew_leases(self) -> None:
        """Renew this workstation's leases when a hit shows the buffer
        is live and the TTL budget is half spent.

        TTL regime only (``server_tm.lease_ttl`` set): renewals are
        driven by actual buffer use, so an idle workstation stops
        renewing and its leases decay out of the table by expiry —
        the bound the TTL design buys.  Rate-limited to one renewal
        message per ttl/2 of simulated time.
        """
        ttl = getattr(self.server_tm, "lease_ttl", None)
        if ttl is None or self.buffer is None:
            return
        now = self.clock.now
        if self._last_renewal is None:
            # anchor the window at first use: the leases were granted
            # moments ago, their budget is essentially unspent
            self._last_renewal = now
            return
        if now - self._last_renewal < ttl / 2:
            return
        self._last_renewal = now
        self.renew_leases()

    def _consume_renewal_window(self) -> bool:
        """True when an outgoing control message should carry renewal
        metadata (the piggyback path).

        Same ttl/2 window as :meth:`_maybe_renew_leases`, and claiming
        it stamps the window — so a buffer hit right after a
        piggybacked renewal does NOT also send the dedicated message.
        The dedicated message stays the fallback for workstations that
        only hit their buffer (no control message in flight to ride).
        """
        ttl = getattr(self.server_tm, "lease_ttl", None)
        if ttl is None or self.buffer is None:
            return False
        now = self.clock.now
        if self._last_renewal is None:
            self._last_renewal = now
            return False
        if now - self._last_renewal < ttl / 2:
            return False
        self._last_renewal = now
        self.renewals_piggybacked += 1
        return True

    def renew_leases(self) -> float:
        """Send one metadata-only renewal message for ALL held leases.

        A single small LAN message (no payload bytes re-ship) extends
        every lease this workstation holds by a fresh TTL; delivery is
        an ordinary timed kernel event, so an expiry racing the
        in-flight renewal resolves deterministically — and a lease
        that expired first stays dead (renewals never resurrect).
        Returns the transport delay of the message.
        """
        server = self.server_tm
        workstation = self.workstation
        delay = self.rpc.network.post(
            workstation, server.node_id,
            lambda: server.renew_leases(workstation),
            label=f"lease-renew:{workstation}",
            size=server.invalidation_bytes)
        self._record("lease_renewal", workstation)
        return delay

    def _install_checkout(self, dop: DesignOperation,
                          dov: DesignObjectVersion, dov_id: str,
                          cached: bool) -> None:
        dop.input_dovs.append(dov_id)
        dop.context.checked_out.append(dov_id)
        dop.context.data.update(dov.copy_data())
        self._record("checkout", dov_id, dop=dop.dop_id, cached=cached)
        if self.recovery.policy.after_checkout:
            self._take_recovery_point(dop, "checkout")

    # -- tool processing ----------------------------------------------------------------

    def work(self, dop: DesignOperation, effort: float,
             mutate: Callable[[DopContext], None] | None = None,
             advance_clock: bool = True) -> None:
        """Apply *effort* simulated minutes of tool work to the context.

        Advances the simulated clock, applies the tool's mutation, and
        takes a periodic recovery point when the policy says one is due.
        Under the concurrent kernel the clock is driven by the event
        times themselves — those callers pass ``advance_clock=False``
        because the kernel already sits at the work's finish instant.
        """
        dop.require("work")
        self.node.require_up()
        if advance_clock:
            self.clock.advance(effort)
        if mutate is not None:
            mutate(dop.context)
        dop.context.work_done += effort
        dop.work_since_recovery_point += effort
        if self.recovery.policy.due(dop.work_since_recovery_point):
            self._take_recovery_point(dop, "interval")

    # -- savepoints -------------------------------------------------------------------------

    def save(self, dop: DesignOperation, name: str) -> None:
        """Designer-initiated Save (Sect.4.3)."""
        dop.require("save")
        dop.savepoints.save(name, dop.context)
        # savepoints are implemented with the recovery-point mechanism
        self._take_recovery_point(dop, f"savepoint:{name}")
        self._record("save", dop.dop_id, savepoint=name)

    def restore(self, dop: DesignOperation, name: str | None = None) -> None:
        """Designer-initiated Restore: roll back to a marked state."""
        dop.require("restore")
        dop.context = dop.savepoints.restore(name)
        self._record("restore", dop.dop_id, savepoint=name or "<latest>")

    # -- suspend / resume ----------------------------------------------------------------------

    def suspend(self, dop: DesignOperation) -> None:
        """Suspend the DOP; its context is made persistent."""
        dop.require("suspend")
        self._take_recovery_point(dop, "suspend")
        dop.transition(DopState.SUSPENDED)
        self._record("suspend", dop.dop_id)

    def resume(self, dop: DesignOperation) -> None:
        """Resume a suspended DOP; state equals the suspend-time state."""
        dop.require("resume")
        context, savepoints, _ = self.recovery.restore(dop.dop_id)
        dop.context = context
        dop.savepoints = savepoints
        dop.transition(DopState.ACTIVE)
        self._record("resume", dop.dop_id)

    # -- checkin -----------------------------------------------------------------------------------

    def checkin(self, dop: DesignOperation, dot_name: str,
                data: dict[str, Any] | None = None,
                parents: list[str] | None = None) -> CheckinResult:
        """Check in the derived DOV.

        **Write-through** (default): ships the payload as a sized LAN
        message and runs the checkin 2PC immediately — one RPC, one
        sized upload, one commit protocol per checkin.  On success the
        new DOV id is recorded on the DOP.  On an integrity violation
        the result carries the server's reason — the 'checkin failure'
        situation the client-TM "has to indicate ... to the DM"
        (Sect.5.2).

        **Write-back** (``write_back=True``): zero network and zero
        kernel events here — the version is staged as a *dirty*,
        provisional buffer entry and ships with the next group flush
        (End-of-DOP, lease recall, capacity pressure, flush interval,
        or explicit :meth:`flush`).  Integrity validation is deferred
        to the flush; a workstation crash before the flush drops the
        entry (recovered from repository state).
        """
        dop.require("checkin")
        payload = data if data is not None else dict(dop.context.data)
        if payload_fast_path_enabled():
            # freeze once on the workstation: the upload sizing below,
            # the server's staging walk and the durable DOV all reuse
            # this one canonical form (and its cached size)
            payload = freeze_payload(payload)
        lineage = parents if parents is not None else list(dop.input_dovs)
        if self.write_back and self.buffer is not None:
            return self._checkin_write_back(dop, dot_name, payload,
                                            lineage)
        result = self.gateway.single_checkin(
            dop.da_id, dot_name, payload, lineage,
            lease=self.buffer is not None,
            renew=self._consume_renewal_window())
        if result.committed:
            dov = result.dov
            dop.output_dov = dov.dov_id
            if self.buffer is not None:
                # checkin results stay resident: the workstation just
                # produced these bytes, so the next checkout of the new
                # frontier is a local hit
                self.buffer.put(dov, dop.da_id, now=self.clock.now)
            self._record("checkin", dov.dov_id, dop=dop.dop_id)
            return CheckinResult(True, dov=dov, outcome=result.outcome)
        self._record("checkin_failed", dop.dop_id, reason=result.reason)
        return CheckinResult(False, reason=result.reason,
                             outcome=result.outcome)

    # -- write-back: deferred checkin + group flush ---------------------------------

    def _checkin_write_back(self, dop: DesignOperation, dot_name: str,
                            payload: dict[str, Any],
                            lineage: list[str]) -> CheckinResult:
        """Stage a checkin as a dirty provisional buffer entry."""
        resolved_lineage = [self.resolve(p) for p in lineage]
        provisional_id = self.ids.next(f"wb-{self.workstation}")
        dov = DesignObjectVersion(
            dov_id=provisional_id, dot_name=dot_name,
            data=payload if is_frozen_payload(payload)
            else dict(payload),
            created_by=dop.da_id,
            created_at=self.clock.now,
            parents=tuple(resolved_lineage))
        record = {
            "provisional_id": provisional_id,
            "da_id": dop.da_id,
            "dot_name": dot_name,
            # the provisional DOV's (frozen) payload — the flush ships
            # this exact object and the server stages it without a
            # copy or re-walk, so the durable version shares it too
            "data": dov.data,
            "parents": resolved_lineage,
            "dop_id": dop.dop_id,
        }
        before = set(self.buffer.dirty_ids())
        self.buffer.put_dirty(dov, dop.da_id, record,
                              now=self.clock.now)
        # record which provisional ids this entry coalesced away, so
        # stale handles (an earlier DOP's output_dov) keep resolving
        for parent in resolved_lineage:
            if parent in before \
                    and parent not in self.buffer:
                self._superseded[parent] = provisional_id
        dop.output_dov = provisional_id
        self._record("checkin_deferred", provisional_id,
                     dop=dop.dop_id,
                     dirty=self.buffer.dirty_count)
        if self.flush_interval \
                and self.buffer.dirty_count >= self.flush_interval:
            self.flush()
        return CheckinResult(True, dov=dov, provisional=True)

    def _flush_on_pressure(self) -> None:
        """Buffer hook target: capacity pressure.

        Ships only the oldest ``ceil(pressure_fraction * dirty)``
        entries — enough to turn pinned bytes into evictable clean
        residents, while the youngest checkins stay dirty and keep
        coalescing (a full flush would forfeit exactly the write-back
        savings pressure is most likely to hit).
        """
        if self.flushing:
            return
        dirty = self.buffer.dirty_count
        if self.pressure_fraction >= 1.0 or dirty <= 1:
            self.flush()
            return
        self.flush(limit=max(1, math.ceil(self.pressure_fraction
                                          * dirty)))

    def _flush_on_recall(self) -> None:
        """Buffer hook target: a lease recall touched dirty lineage."""
        if not self.flushing:
            self.flush()

    def collect_flush_records(self, limit: int | None = None
                              ) -> tuple[list[dict[str, Any]], list[int]]:
        """The dirty set as (records, sizes), oldest first.

        With *limit*, only the oldest dirty prefix is collected (the
        capacity-pressure policy).  Records are handed to the server
        as-is; a committed flush retires them via
        :meth:`apply_flush_commit`, an aborted one leaves the entries
        dirty and untouched for retry.
        """
        dirty = self.buffer.dirty_entries(limit)
        return ([entry.record for entry in dirty],
                [entry.size for entry in dirty])

    def apply_flush_commit(self, records: list[dict[str, Any]],
                           sizes: list[int], mapping: dict[str, str],
                           dovs: list[DesignObjectVersion]) -> None:
        """Apply a committed group checkin to this workstation's state.

        *mapping*/*dovs* may span a whole cross-workstation batch;
        only this client's *records* slice is applied here.  The
        buffer rebinds the provisional entries to their durable
        versions (still resident, under fresh leases), running DOPs
        learn their durable output ids, and — after a *partial*
        (capacity-pressure) flush — the still-dirty remainder's
        lineage is rewritten to the durable ids so a later flush ships
        a consistent chain.
        """
        durable = {dov.dov_id: dov for dov in dovs}
        own = {record["provisional_id"]: mapping[record["provisional_id"]]
               for record in records
               if record["provisional_id"] in mapping}
        self.buffer.rebind({provisional: durable[durable_id]
                            for provisional, durable_id in own.items()
                            if durable_id in durable})
        self._resolved.update(own)
        for dop in self._active.values():
            if dop.output_dov in own:
                dop.output_dov = own[dop.output_dov]
        for entry in self.buffer.dirty_entries():
            record = entry.record
            if record and any(p in own for p in record["parents"]):
                record["parents"] = [own.get(p, p)
                                     for p in record["parents"]]
        self.flushes += 1
        self.flushed_checkins += len(records)
        self.bytes_flushed += sum(sizes)
        self._record("flush", self.workstation, count=len(records),
                     bytes=sum(sizes))

    def fail_flush(self, records: list[dict[str, Any]],
                   reason: str) -> None:
        """Record an aborted flush; the entries stay dirty for retry."""
        self._record("flush_failed", self.workstation, reason=reason,
                     count=len(records))

    def flush(self, limit: int | None = None) -> FlushResult:
        """Ship the buffer's dirty set as one batched group checkin.

        The drive itself — txn id, control RPC, ONE sized batch
        message, the 2PC — belongs to the txn layer's
        :class:`~repro.txn.gateway.CommitGateway`; this method is the
        thin participant around it: collect the dirty records (all of
        them, or the oldest *limit* under capacity pressure), hand
        them to the gateway, and apply the outcome.  On commit the
        buffer rebinds the provisional entries to the durable versions
        the server assigned (they stay resident under fresh leases)
        and :meth:`resolve` learns the id mapping.  On abort —
        integrity rejection or a server crash mid-batch — *nothing*
        becomes durable; the entries stay dirty so a later flush (e.g.
        after the server restarts) can retry.

        Under the concurrent kernel the batch message and the
        resulting lease invalidations are ordinary timed events in
        deterministic batch order, so identically seeded runs remain
        trace-identical.
        """
        if self.buffer is None:
            return FlushResult(True, count=0)
        if self.flushing or not self.buffer.dirty_count:
            return FlushResult(True, count=0)
        self.flushing = True
        try:
            records, sizes = self.collect_flush_records(limit)
            result = self.gateway.group_checkin(
                [GroupRequest(self.workstation, records, sizes)],
                lease=True, renew=self._consume_renewal_window())
            if not result.committed:
                self.fail_flush(records, result.reason)
                return FlushResult(False, count=len(records),
                                   reason=result.reason,
                                   outcome=result.outcome)
            self.apply_flush_commit(records, sizes, result.mapping,
                                    result.dovs)
            return FlushResult(True, count=len(records),
                               bytes_shipped=sum(sizes),
                               mapping=dict(result.mapping),
                               outcome=result.outcome)
        finally:
            self.flushing = False

    def resolve(self, dov_id: str) -> str:
        """The durable id a provisional (write-back) id ended up as.

        Follows coalescing (a provisional version superseded before it
        shipped forwards to its successor) and then the flush mapping;
        ids that were never provisional come back unchanged.  Useful
        to callers that stored a provisional handle (e.g. a DOP's
        ``output_dov`` logged before the flush).
        """
        seen: set[str] = set()
        while dov_id in self._superseded and dov_id not in seen:
            seen.add(dov_id)
            dov_id = self._superseded[dov_id]
        return self._resolved.get(dov_id, dov_id)

    # -- End-of-DOP ------------------------------------------------------------------------------------

    def _finish(self, dop: DesignOperation, state: DopState,
                result: CheckinResult) -> None:
        # release derivation locks first, then drop savepoints and the
        # recovery point, then message the DM — the Sect.5.2 order.
        self.rpc.call(self.workstation, self.server_tm.node_id,
                      "release_derivation_locks", dop.da_id,
                      list(dop.input_dovs))
        dop.savepoints.clear()
        self.recovery.remove(dop.dop_id)
        dop.transition(state)
        dop.finished_at = self.clock.now
        self._active.pop(dop.dop_id, None)
        self._record("end_dop", dop.dop_id, state=state.value)
        if self.on_dop_finished is not None:
            self.on_dop_finished(dop, result)

    def drop_dop(self, dop: DesignOperation) -> None:
        """Forget a DOP whose start could not complete (server down
        before the first checkout).  Purely local volatile cleanup —
        nothing reached the server, so there is nothing to abort
        there; the caller begins a fresh DOP on retry."""
        self._active.pop(dop.dop_id, None)
        self.recovery.remove(dop.dop_id)
        self._record("drop_dop", dop.dop_id)

    def commit_dop(self, dop: DesignOperation,
                   result: CheckinResult | None = None) -> None:
        """End-of-DOP (commit): close processing after a final state.

        In write-back mode this is flush trigger 1: the workstation's
        dirty set ships as one group checkin *before* the Sect.5.2
        close-out sequence runs, so the DOP's results are durable by
        the time the DM is messaged.  The DOP's ``output_dov`` is
        rewritten from its provisional to its durable id.

        A *failed* flush (deferred integrity violation, 2PC abort)
        raises :class:`TransactionError` instead of committing: the
        DOP stays ACTIVE with its dirty entries intact, so the caller
        can correct and retry the checkin — or :meth:`abort_dop`,
        which discards them.  This is where write-back's deferred
        validation surfaces; write-through reports the same failure
        earlier, on the checkin itself.
        """
        dop.require("commit")
        if self.write_back and self.flush_on_end_dop:
            flushed = self.flush()
            if not flushed.success:
                raise TransactionError(
                    f"End-of-DOP flush of {dop.dop_id!r} aborted: "
                    f"{flushed.reason}")
        if dop.output_dov is not None:
            dop.output_dov = self.resolve(dop.output_dov)
        self._finish(dop, DopState.COMMITTED,
                     result or CheckinResult(True, dov=None))

    def abort_dop(self, dop: DesignOperation, reason: str = "") -> None:
        """End-of-DOP (abort): the DOP "will abort its activities".

        Unflushed write-back checkins of this DOP are discarded — they
        never reached the server, so there is nothing to undo there.
        The interval counter and the coalescing forward map retire the
        discarded ids too, so a later DOP's first checkin does not
        inherit a premature flush and :meth:`resolve` never forwards
        to an id that can no longer become durable.
        """
        dop.require("abort")
        if self.write_back and self.buffer is not None:
            discarded = set(self.buffer.discard_dirty(dop.dop_id))
            if discarded:
                self._superseded = {
                    key: value for key, value
                    in self._superseded.items()
                    if key not in discarded
                    and value not in discarded}
        self._finish(dop, DopState.ABORTED, CheckinResult(False,
                                                          reason=reason))

    # -- workstation-crash recovery -----------------------------------------------------------------------

    def recover_dop(self, dop_id: str, da_id: str, tool: str
                    ) -> tuple[DesignOperation, float]:
        """Rebuild a crashed DOP from its most recent recovery point.

        Returns the re-activated DOP and the simulated time the recovery
        point was taken at (the caller knows the crash time and derives
        the lost work as ``context.work_done`` deltas).  Raises
        :class:`RecoveryError` when no point exists — then the DOP is
        lost entirely and must restart from its beginning.
        """
        self.node.require_up()
        context, savepoints, point = self.recovery.restore(dop_id)
        dop = DesignOperation(
            dop_id=dop_id, da_id=da_id, workstation=self.workstation,
            tool=tool, started_at=point.taken_at,
        )
        dop.transition(DopState.ACTIVE)
        dop.context = context
        dop.savepoints = savepoints
        dop.input_dovs = list(context.checked_out)
        self._active[dop_id] = dop
        self._record("recover_dop", dop_id, from_point=point.reason,
                     taken_at=point.taken_at)
        return dop, point.taken_at


def register_server_endpoints(rpc: TransactionalRpc,
                              server_tm: ServerTM) -> None:
    """Expose the server-TM operations as transactional RPC endpoints."""
    rpc.register(server_tm.node_id, "checkout", server_tm.checkout)
    rpc.register(server_tm.node_id, "request_checkin",
                 server_tm.request_checkin)
    rpc.register(server_tm.node_id, "request_group_checkin",
                 server_tm.request_group_checkin)
    rpc.register(server_tm.node_id, "release_derivation_locks",
                 server_tm.release_derivation_locks)
