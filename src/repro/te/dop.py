"""Design operations (DOPs) — the TE level's long ACID transactions.

"From the viewpoint of the DBMS or data repository, a DOP is an ACID
transaction.  Due to long duration, it is internally structured by
save/restore and suspend/resume facilities" (Sect.2).  A DOP processes
design object versions in three steps: checkout of the input versions,
tool processing of the loaded data, and checkin of the derived version.

This module holds the passive DOP object (identity, lifecycle state,
context, savepoints, accounting); the active behaviour lives in the
client/server transaction managers
(:mod:`repro.te.transaction_manager`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.te.context import DopContext, SavepointStack
from repro.util.errors import TransactionStateError


class DopState(str, Enum):
    """Lifecycle of a design operation."""

    CREATED = "created"      # Begin-of-DOP issued, no work yet
    ACTIVE = "active"        # processing
    SUSPENDED = "suspended"  # designer issued Suspend
    COMMITTED = "committed"  # End-of-DOP with commit
    ABORTED = "aborted"      # End-of-DOP with abort

    @property
    def terminal(self) -> bool:
        """True for COMMITTED / ABORTED."""
        return self in (DopState.COMMITTED, DopState.ABORTED)


#: state -> operations legal in it (guarding the TM entry points)
_ALLOWED: dict[DopState, frozenset[str]] = {
    DopState.CREATED: frozenset({"activate", "abort"}),
    DopState.ACTIVE: frozenset({"checkout", "work", "save", "restore",
                                "suspend", "checkin", "commit", "abort"}),
    DopState.SUSPENDED: frozenset({"resume", "abort"}),
    DopState.COMMITTED: frozenset(),
    DopState.ABORTED: frozenset(),
}


@dataclass
class DesignOperation:
    """One tool execution as a long-duration transaction.

    Attributes
    ----------
    dop_id / da_id / workstation:
        Identity and placement ("a DA is running on a single
        workstation ... all actions executed within a DA are managed
        and executed on that workstation too", Sect.5.1).
    tool:
        Name of the design tool this DOP runs (e.g. ``chip_planner``).
    start_params:
        The Begin-of-DOP parameters handed over by the DM.
    context / savepoints:
        Volatile working state; lost on workstation crash, rebuilt from
        the latest recovery point.
    """

    dop_id: str
    da_id: str
    workstation: str
    tool: str
    start_params: dict[str, Any] = field(default_factory=dict)
    state: DopState = DopState.CREATED
    context: DopContext = field(default_factory=DopContext)
    savepoints: SavepointStack = field(default_factory=SavepointStack)
    started_at: float = 0.0
    finished_at: float | None = None
    #: id of the DOV produced by a successful checkin
    output_dov: str | None = None
    #: DOV ids read via checkout (inputs; also logged by the DM)
    input_dovs: list[str] = field(default_factory=list)
    #: simulated work invested since the last recovery point
    work_since_recovery_point: float = 0.0

    def require(self, operation: str) -> None:
        """Guard: raise unless *operation* is legal in the current state."""
        if operation not in _ALLOWED[self.state]:
            raise TransactionStateError(
                f"DOP {self.dop_id!r}: operation {operation!r} illegal in "
                f"state {self.state.value!r}")

    def transition(self, new_state: DopState) -> None:
        """Move to *new_state* (no checks — callers use :meth:`require`)."""
        self.state = new_state

    @property
    def is_running(self) -> bool:
        """True while the DOP occupies its workstation."""
        return self.state in (DopState.ACTIVE, DopState.SUSPENDED)
