"""Tool Execution level: long ACID transactions (DOPs), locks, recovery.

Provides the TE-level concepts of the paper's Sect.4.3 and Sect.5.2:
design operations with checkout/checkin, save/restore, suspend/resume,
automatic recovery points, and the client-TM / server-TM pair with
two-phase commit for their critical interactions.
"""

from repro.te.context import DopContext, SavepointStack
from repro.te.dop import DesignOperation, DopState
from repro.te.locks import Lock, LockManager, LockMode, LockStats
from repro.te.object_buffer import (
    BufferEntry,
    EvictionPolicy,
    FifoEviction,
    LruEviction,
    ObjectBuffer,
    SizeAwareEviction,
    make_eviction_policy,
)
from repro.te.recovery import (
    RecoveryManager,
    RecoveryPoint,
    RecoveryPointPolicy,
)
from repro.te.transaction_manager import (
    CheckinResult,
    ClientTM,
    FlushResult,
    ServerTM,
    register_server_endpoints,
)

__all__ = [
    "BufferEntry",
    "CheckinResult",
    "ClientTM",
    "DesignOperation",
    "EvictionPolicy",
    "FifoEviction",
    "FlushResult",
    "LruEviction",
    "ObjectBuffer",
    "DopContext",
    "DopState",
    "Lock",
    "LockManager",
    "LockMode",
    "LockStats",
    "RecoveryManager",
    "RecoveryPoint",
    "RecoveryPointPolicy",
    "SavepointStack",
    "ServerTM",
    "SizeAwareEviction",
    "make_eviction_policy",
    "register_server_endpoints",
]
