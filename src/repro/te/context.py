"""DOP processing contexts, savepoints, suspend/resume.

"The context of a DOP consists of the current state of the design data
and on information about the state of the application program
implementing the DOP" (Sect.5.2, footnote).  :class:`DopContext` models
exactly that pair: the working copy of the design data plus an opaque
tool-state dict.  On top of it sit the designer-facing structuring
facilities of Sect.4.3:

* **Save / Restore** — designer-marked savepoints ("intermediate
  states, to which a designer might wish to return later, are
  explicitly marked by the designer");
* **Suspend / Resume** — a DOP may pause for days; the state seen
  after Resume "must be equal to that seen when issuing the Suspend
  command".

Savepoints and suspended contexts live on the workstation's *stable*
storage (they are implemented with the recovery-point mechanism,
Sect.5.2), so they also survive workstation crashes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

from repro.repository.versions import is_frozen_payload
from repro.util.errors import RecoveryError


def _cow_copy(mapping: dict[str, Any]) -> dict[str, Any]:
    """Copy-on-write image of a working dict over frozen payloads.

    Values installed by checkout are frozen (immutable through any
    reference) and are shared into the image as-is; everything the
    tool produced itself is deep-copied as before.  The recovery-point
    hot path thus costs O(top-level keys), not O(payload bytes).
    """
    return {key: value if is_frozen_payload(value)
            else copy.deepcopy(value)
            for key, value in mapping.items()}


@dataclass
class DopContext:
    """Volatile working state of one design operation.

    ``data`` is the tool's working copy of the design object (seeded by
    checkout, mutated by tool steps, checked in at the end); ``tool_state``
    is whatever the tool needs to continue (iteration counters,
    intermediate structures); ``work_done`` accumulates the simulated
    effort invested, which the lost-work experiment (T2) compares before
    and after crashes.
    """

    data: dict[str, Any] = field(default_factory=dict)
    tool_state: dict[str, Any] = field(default_factory=dict)
    checked_out: list[str] = field(default_factory=list)
    work_done: float = 0.0

    def snapshot(self) -> dict[str, Any]:
        """Storage-ready image of the context (copy-on-write).

        Frozen payload values are shared, mutable tool output is
        deep-copied — the image is private either way.
        """
        return {
            "data": _cow_copy(self.data),
            "tool_state": copy.deepcopy(self.tool_state),
            "checked_out": list(self.checked_out),
            "work_done": self.work_done,
        }

    @classmethod
    def from_snapshot(cls, snap: dict[str, Any]) -> "DopContext":
        """Rebuild a context from a :meth:`snapshot` image."""
        return cls(
            data=_cow_copy(snap["data"]),
            tool_state=copy.deepcopy(snap["tool_state"]),
            checked_out=list(snap["checked_out"]),
            work_done=snap["work_done"],
        )


class SavepointStack:
    """Named, ordered savepoints over a :class:`DopContext`.

    Restore semantics follow the paper: restoring a savepoint "wipes
    out" everything done after it, including later savepoints.
    """

    def __init__(self) -> None:
        self._stack: list[tuple[str, dict[str, Any]]] = []

    def save(self, name: str, context: DopContext) -> None:
        """Record the current context under *name*."""
        if any(existing == name for existing, _ in self._stack):
            raise RecoveryError(f"savepoint {name!r} already exists")
        self._stack.append((name, context.snapshot()))

    def restore(self, name: str | None = None) -> DopContext:
        """Return the context saved under *name* (default: most recent).

        Later savepoints are discarded; the restored savepoint itself is
        kept, so it can be restored again.
        """
        if not self._stack:
            raise RecoveryError("no savepoints to restore")
        if name is None:
            index = len(self._stack) - 1
        else:
            try:
                index = next(i for i, (n, _) in enumerate(self._stack)
                             if n == name)
            except StopIteration:
                raise RecoveryError(f"no savepoint named {name!r}") from None
        name_kept, snap = self._stack[index]
        del self._stack[index + 1:]
        return DopContext.from_snapshot(snap)

    def names(self) -> list[str]:
        """Savepoint names, oldest first."""
        return [n for n, _ in self._stack]

    def clear(self) -> None:
        """Remove all savepoints (commit/abort path, Sect.5.2)."""
        self._stack.clear()

    def __len__(self) -> int:
        return len(self._stack)

    def snapshot(self) -> list[tuple[str, dict[str, Any]]]:
        """Storage-ready image of the whole stack."""
        return [(n, copy.deepcopy(s)) for n, s in self._stack]

    @classmethod
    def from_snapshot(cls, snap: list[tuple[str, dict[str, Any]]]
                      ) -> "SavepointStack":
        """Rebuild a stack from a :meth:`snapshot` image."""
        stack = cls()
        stack._stack = [(n, copy.deepcopy(s)) for n, s in snap]
        return stack
