"""Per-workstation object buffers for checked-out DOVs.

The TE level is a workstation-server architecture: DOPs check design
object versions *out* of the server repository into the workstation and
check results back in (Sect.5.1).  That split only pays off when the
workstation keeps the shipped versions resident instead of re-fetching
every DOV over the LAN on each read.  :class:`ObjectBuffer` is that
residence: a per-workstation cache of immutable DOV snapshots.

Coherence is lease-based: the server-TM records a read lease per
``(workstation, dov_id)`` whenever it ships a version to a buffering
workstation, and revokes it — with an asynchronous invalidation message
over the simulated LAN — when a checkin supersedes the version (the
new DOV's parents are no longer the frontier of the design state).
Because DOVs themselves are immutable, an entry that outlives its lease
is never *wrong*, merely superseded; the invalidation keeps designers
from continuing work on versions a colleague has already replaced.

Scope discipline survives caching: each entry remembers the DAs whose
checkouts were admitted by the server's scope check, and only those DAs
hit locally — any other DA falls through to the server, which
revalidates its scope on the miss path.

Workstation crashes wipe the buffer (it is volatile state); recovery
re-fetches through the normal checkout chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.repository.versions import DesignObjectVersion


@dataclass
class BufferEntry:
    """One resident DOV: the snapshot plus its cache bookkeeping."""

    dov: DesignObjectVersion
    size: int
    cached_at: float
    #: DA ids whose server-validated checkouts shipped/refreshed this
    #: entry — the only DAs allowed to hit it locally
    authorized: set[str] = field(default_factory=set)
    hits: int = 0


class ObjectBuffer:
    """The DOV object buffer of one workstation.

    * :meth:`get` — scope-aware lookup; counts hits and misses.
    * :meth:`put` — install a shipped (or freshly checked-in) version;
      an optional byte capacity evicts the oldest-resident entries.
    * :meth:`invalidate` — drop a superseded version (the delivery
      side of a server lease revocation).
    * :meth:`clear` — crash/flush semantics: everything vanishes.
    """

    def __init__(self, workstation: str,
                 capacity_bytes: int | None = None) -> None:
        self.workstation = workstation
        self.capacity_bytes = capacity_bytes
        #: dov_id -> entry, in insertion (residence) order
        self._entries: dict[str, BufferEntry] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        #: fired with the dov_id of every capacity eviction — the
        #: server-TM hangs its lease release here so an evicted copy
        #: stops drawing invalidation traffic
        self.on_evict: Callable[[str], None] | None = None

    # -- lookups ----------------------------------------------------------------

    def __contains__(self, dov_id: str) -> bool:
        return dov_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        """Total modelled payload bytes currently resident."""
        return sum(entry.size for entry in self._entries.values())

    def get(self, dov_id: str, da_id: str) -> DesignObjectVersion | None:
        """The cached version, or None on a miss.

        A hit requires the entry to be resident *and* authorized for
        *da_id* — an unauthorized DA misses so the server's scope check
        runs on the fetch path.
        """
        entry = self._entries.get(dov_id)
        if entry is None or da_id not in entry.authorized:
            self.misses += 1
            return None
        self.hits += 1
        entry.hits += 1
        return entry.dov

    # -- mutation ----------------------------------------------------------------

    def put(self, dov: DesignObjectVersion, da_id: str,
            now: float = 0.0) -> BufferEntry:
        """Install (or re-authorize) a version shipped to this node."""
        entry = self._entries.get(dov.dov_id)
        if entry is not None:
            entry.authorized.add(da_id)
            return entry
        entry = BufferEntry(dov=dov, size=dov.payload_size,
                            cached_at=now, authorized={da_id})
        self._entries[dov.dov_id] = entry
        self._evict_to_capacity()
        return entry

    def _evict_to_capacity(self) -> None:
        if self.capacity_bytes is None:
            return
        while len(self._entries) > 1 \
                and self.resident_bytes > self.capacity_bytes:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(oldest)

    def invalidate(self, dov_id: str) -> bool:
        """Drop a superseded version; True when it was resident."""
        if self._entries.pop(dov_id, None) is not None:
            self.invalidations += 1
            return True
        return False

    def clear(self) -> int:
        """Crash/flush: drop every entry; returns how many were lost."""
        lost = len(self._entries)
        self._entries.clear()
        return lost

    # -- statistics --------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses); 0.0 before any lookup."""
        looked_up = self.hits + self.misses
        return self.hits / looked_up if looked_up else 0.0

    def stats(self) -> dict[str, Any]:
        """Snapshot of the buffer's counters (bench/trace surface)."""
        return {
            "workstation": self.workstation,
            "resident": len(self._entries),
            "resident_bytes": self.resident_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }
