"""Per-workstation object buffers for checked-out DOVs.

The TE level is a workstation-server architecture: DOPs check design
object versions *out* of the server repository into the workstation and
check results back in (Sect.5.1).  That split only pays off when the
workstation keeps the shipped versions resident instead of re-fetching
every DOV over the LAN on each read.  :class:`ObjectBuffer` is that
residence: a per-workstation cache of immutable DOV snapshots.

Coherence is lease-based: the server-TM records a read lease per
``(workstation, dov_id)`` whenever it ships a version to a buffering
workstation, and revokes it — with an asynchronous invalidation message
over the simulated LAN — when a checkin supersedes the version (the
new DOV's parents are no longer the frontier of the design state).
Because DOVs themselves are immutable, an entry that outlives its lease
is never *wrong*, merely superseded; the invalidation keeps designers
from continuing work on versions a colleague has already replaced.

Scope discipline survives caching: each entry remembers the DAs whose
checkouts were admitted by the server's scope check, and only those DAs
hit locally — any other DA falls through to the server, which
revalidates its scope on the miss path.

Beyond the read cache, the buffer is also the *write-back* staging area
of the data-shipping protocol: a client-TM in write-back mode records
checkins as **dirty** entries (provisional versions plus their checkin
request records) instead of shipping them eagerly.  Dirty entries are
pinned — no eviction policy may pick them — until the client-TM flushes
them as one batched group-checkin; successive checkins of the same
lineage coalesce, so intermediate versions superseded before they were
ever shipped cost zero LAN bytes.

Replacement is pluggable via :class:`EvictionPolicy`: the seed's FIFO
(oldest-resident) behaviour is kept as the baseline, with LRU and a
size-aware GreedyDual-Size variant available; all three are
deterministic (ties break by admission order).

Workstation crashes wipe the buffer (it is volatile state) *including
any dirty, not-yet-flushed checkins* — the write-back trade-off: that
work is recovered from repository state through the normal recovery
chain, not from the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.repository.versions import DesignObjectVersion


@dataclass
class BufferEntry:
    """One resident DOV: the snapshot plus its cache bookkeeping."""

    dov: DesignObjectVersion
    size: int
    cached_at: float
    #: DA ids whose server-validated checkouts shipped/refreshed this
    #: entry — the only DAs allowed to hit it locally
    authorized: set[str] = field(default_factory=set)
    hits: int = 0
    #: admission sequence number (deterministic policy tie-breaker)
    seq: int = 0
    #: logical access tick of the most recent hit/admission (LRU key)
    last_access: int = 0
    #: GreedyDual-Size priority (maintained by SizeAwareEviction)
    priority: float = 0.0
    #: True for a write-back entry not yet shipped to the server —
    #: pinned against eviction until the client-TM flushes it
    dirty: bool = False
    #: the deferred checkin request of a dirty entry (da_id, dot_name,
    #: data, parents, provisional_id, dop_id); None once flushed
    record: dict[str, Any] | None = None


class EvictionPolicy:
    """Replacement strategy of an :class:`ObjectBuffer`.

    Policies only ever see *clean* entries — dirty (unflushed
    write-back) entries are pinned by the buffer itself.  All hooks are
    synchronous bookkeeping on the caller's stack: a policy never
    schedules kernel events, so the choice of policy cannot perturb
    event order — identically seeded runs stay trace-identical across
    policies (the *traffic* differs, the *mechanism* stays
    deterministic).
    """

    name = "base"

    def on_admit(self, entry: BufferEntry) -> None:
        """A new entry became resident."""

    def on_hit(self, entry: BufferEntry) -> None:
        """A resident entry served a lookup."""

    def victim(self, candidates: list[BufferEntry]) -> BufferEntry:
        """Pick the entry to evict from *candidates* (never empty).

        Candidates arrive in residence (admission) order; ties must be
        broken deterministically — by admission order, not by hash or
        wall-clock state.
        """
        raise NotImplementedError


class FifoEviction(EvictionPolicy):
    """The seed baseline: evict the oldest-resident entry."""

    name = "fifo"

    def victim(self, candidates: list[BufferEntry]) -> BufferEntry:
        return candidates[0]


class LruEviction(EvictionPolicy):
    """Evict the least-recently-used entry.

    Recency is a logical access tick maintained by the buffer (every
    get/put advances it), not wall-clock time — which keeps the policy
    deterministic under the simulated clock.
    """

    name = "lru"

    def on_admit(self, entry: BufferEntry) -> None:
        pass  # last_access is stamped by the buffer

    def victim(self, candidates: list[BufferEntry]) -> BufferEntry:
        return min(candidates, key=lambda e: (e.last_access, e.seq))


class SizeAwareEviction(EvictionPolicy):
    """GreedyDual-Size: prefer evicting large, long-unused entries.

    Classic GreedyDual-Size with uniform miss cost: an entry's priority
    is ``L + 1/size`` at admission and on every hit, where ``L``
    inflates to the evicted priority on each eviction.  Small entries
    (cheap to keep, expensive per byte to re-fetch relative to their
    footprint) therefore outlive large cold ones, and recency decays
    naturally through the inflation term.
    """

    name = "size-aware"

    def __init__(self) -> None:
        self._inflation = 0.0

    def _credit(self, entry: BufferEntry) -> None:
        entry.priority = self._inflation + 1.0 / max(entry.size, 1)

    def on_admit(self, entry: BufferEntry) -> None:
        self._credit(entry)

    def on_hit(self, entry: BufferEntry) -> None:
        self._credit(entry)

    def victim(self, candidates: list[BufferEntry]) -> BufferEntry:
        victim = min(candidates, key=lambda e: (e.priority, e.seq))
        self._inflation = victim.priority
        return victim


#: registry of the built-in policies (``ObjectBuffer(policy="lru")``)
EVICTION_POLICIES: dict[str, Callable[[], EvictionPolicy]] = {
    "fifo": FifoEviction,
    "lru": LruEviction,
    "size-aware": SizeAwareEviction,
}


def make_eviction_policy(spec: "EvictionPolicy | str | None"
                         ) -> EvictionPolicy:
    """Resolve a policy spec (instance, registry name, or None=FIFO)."""
    if spec is None:
        return FifoEviction()
    if isinstance(spec, EvictionPolicy):
        return spec
    try:
        return EVICTION_POLICIES[spec]()
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {spec!r}; "
            f"known: {sorted(EVICTION_POLICIES)}") from None


class ObjectBuffer:
    """The DOV object buffer of one workstation.

    * :meth:`get` — scope-aware lookup; counts hits and misses.
    * :meth:`put` — install a shipped (or freshly checked-in) version;
      an optional byte capacity evicts clean entries per the configured
      :class:`EvictionPolicy` (dirty entries are pinned).
    * :meth:`put_dirty` — write-back: stage a provisional checkin as a
      dirty entry, coalescing dirty parents it supersedes.
    * :meth:`invalidate` — drop a superseded version (the delivery
      side of a server lease revocation); recalls dirty dependents.
    * :meth:`rebind` — swap flushed provisional entries for their
      durable versions (group-checkin commit).
    * :meth:`revalidate` — keep/drop resident entries against fresh
      repository stamps (server-restart re-validation).
    * :meth:`clear` — crash/flush semantics: everything vanishes,
      dirty entries included.

    All mutators run synchronously on the caller's stack and never
    schedule kernel events themselves; the *callbacks* they fire
    (``on_evict``, ``on_pressure``, ``on_recall``) are where the TMs
    hang network activity, so any event scheduling is attributable to
    the TM that installed the hook.
    """

    def __init__(self, workstation: str,
                 capacity_bytes: int | None = None,
                 policy: EvictionPolicy | str | None = None) -> None:
        self.workstation = workstation
        self.capacity_bytes = capacity_bytes
        self.policy = make_eviction_policy(policy)
        #: dov_id -> entry, in insertion (residence) order
        self._entries: dict[str, BufferEntry] = {}
        #: insertion-ordered index of the dirty ids — the flush set is
        #: read on every write-back checkin, so it must not scan the
        #: whole (growing) residence map
        self._dirty: dict[str, None] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        #: dirty provisional versions dropped without ever shipping
        #: because a later dirty checkin superseded them (write-back's
        #: byte saving)
        self.coalesced = 0
        #: dirty entries lost to a workstation crash (clear())
        self.dirty_lost = 0
        #: entries kept warm across a server restart (stamp matched)
        self.revalidated = 0
        #: entries dropped at re-validation (stamp gone or changed)
        self.revalidation_drops = 0
        #: logical access clock (LRU recency source; deterministic)
        self._ticks = 0
        #: admission counter (policy tie-breaker)
        self._admissions = 0
        #: fired with the dov_id of every capacity eviction — the
        #: server-TM hangs its lease release here so an evicted copy
        #: stops drawing invalidation traffic
        self.on_evict: Callable[[str], None] | None = None
        #: fired when capacity pressure needs dirty entries gone — the
        #: client-TM hangs its flush here (write-back trigger 3)
        self.on_pressure: Callable[[], None] | None = None
        #: fired when an invalidation recalls a version some dirty
        #: entry derives from — the client-TM hangs its flush here
        #: (write-back trigger 2: lease recall)
        self.on_recall: Callable[[], None] | None = None

    # -- lookups ----------------------------------------------------------------

    def __contains__(self, dov_id: str) -> bool:
        return dov_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        """Total modelled payload bytes currently resident."""
        return sum(entry.size for entry in self._entries.values())

    @property
    def dirty_bytes(self) -> int:
        """Payload bytes of dirty (unflushed write-back) entries."""
        return sum(self._entries[dov_id].size for dov_id in self._dirty)

    @property
    def dirty_count(self) -> int:
        """Number of dirty (unflushed write-back) entries — O(1)."""
        return len(self._dirty)

    def dirty_ids(self) -> list[str]:
        """Dirty ids in admission (checkin) order."""
        return list(self._dirty)

    def entry(self, dov_id: str) -> BufferEntry | None:
        """The raw entry for *dov_id* (no hit/miss accounting)."""
        return self._entries.get(dov_id)

    def get(self, dov_id: str, da_id: str) -> DesignObjectVersion | None:
        """The cached version, or None on a miss.

        A hit requires the entry to be resident *and* authorized for
        *da_id* — an unauthorized DA misses so the server's scope check
        runs on the fetch path.  Pure local bookkeeping: a hit costs
        zero network events and zero kernel events.
        """
        entry = self._entries.get(dov_id)
        if entry is None or da_id not in entry.authorized:
            self.misses += 1
            return None
        self.hits += 1
        entry.hits += 1
        self._ticks += 1
        entry.last_access = self._ticks
        self.policy.on_hit(entry)
        return entry.dov

    def dirty_entries(self, limit: int | None = None) -> list[BufferEntry]:
        """Dirty entries in admission (checkin) order — the flush set.

        With *limit*, only the **oldest** dirty prefix is returned:
        the capacity-pressure flush policy ships that prefix and keeps
        the youngest entries dirty (still coalescing).
        """
        ids = list(self._dirty) if limit is None \
            else list(self._dirty)[:limit]
        return [self._entries[dov_id] for dov_id in ids]

    def dirty_depends_on(self, dov_id: str) -> bool:
        """True when some dirty entry lists *dov_id* among its parents."""
        for dirty_id in self._dirty:
            record = self._entries[dirty_id].record
            if record is not None \
                    and dov_id in record.get("parents", ()):
                return True
        return False

    # -- mutation ----------------------------------------------------------------

    def _admit(self, dov: DesignObjectVersion, da_id: str, now: float,
               dirty: bool, record: dict[str, Any] | None) -> BufferEntry:
        self._admissions += 1
        self._ticks += 1
        entry = BufferEntry(dov=dov, size=dov.payload_size,
                            cached_at=now, authorized={da_id},
                            seq=self._admissions,
                            last_access=self._ticks,
                            dirty=dirty, record=record)
        self._entries[dov.dov_id] = entry
        if dirty:
            self._dirty[dov.dov_id] = None
        self.policy.on_admit(entry)
        return entry

    def put(self, dov: DesignObjectVersion, da_id: str,
            now: float = 0.0) -> BufferEntry:
        """Install (or re-authorize) a version shipped to this node.

        May fire ``on_pressure`` (client-TM flush) and ``on_evict``
        (server-TM lease release) while restoring the byte capacity —
        both run synchronously before :meth:`put` returns.
        """
        entry = self._entries.get(dov.dov_id)
        if entry is not None:
            entry.authorized.add(da_id)
            # a re-ship is a touch: refresh recency/priority so the
            # policy does not evict the entry the server just re-sent
            self._ticks += 1
            entry.last_access = self._ticks
            self.policy.on_hit(entry)
            return entry
        entry = self._admit(dov, da_id, now, dirty=False, record=None)
        self._evict_to_capacity()
        return entry

    def put_dirty(self, dov: DesignObjectVersion, da_id: str,
                  record: dict[str, Any], now: float = 0.0) -> BufferEntry:
        """Stage a provisional (write-back) checkin as a dirty entry.

        Coalescing: any *dirty* parent of *record* is superseded before
        it was ever shipped — it is dropped from the buffer, its own
        parents spliced into *record*'s lineage, and its bytes never
        cross the LAN.  The caller (client-TM) maintains the
        provisional-id forwarding map.  Returns the staged entry;
        capacity pressure may fire ``on_pressure``/``on_evict``.
        """
        parents = list(record.get("parents", ()))
        spliced: list[str] = []
        for parent in parents:
            stale = self._entries.get(parent)
            if stale is not None and stale.dirty \
                    and stale.record is not None:
                for grand in stale.record.get("parents", ()):
                    if grand not in spliced:
                        spliced.append(grand)
                del self._entries[parent]
                self._dirty.pop(parent, None)
                self.coalesced += 1
            elif parent not in spliced:
                spliced.append(parent)
        record = dict(record, parents=spliced)
        entry = self._admit(dov, da_id, now, dirty=True, record=record)
        self._evict_to_capacity()
        return entry

    def _evict_to_capacity(self) -> None:
        if self.capacity_bytes is None:
            return
        # write-back trigger: when over capacity with pinned dirty
        # bytes, ask the client-TM to flush (dirty entries become
        # clean, evictable residents) before evicting per policy
        if self.resident_bytes > self.capacity_bytes \
                and self.dirty_bytes > 0 and self.on_pressure is not None:
            self.on_pressure()
        while len(self._entries) > 1 \
                and self.resident_bytes > self.capacity_bytes:
            clean = [e for e in self._entries.values() if not e.dirty]
            if not clean:
                break  # everything pinned: exceed capacity rather
                # than drop unflushed work
            victim = self.policy.victim(clean)
            del self._entries[victim.dov.dov_id]
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim.dov.dov_id)

    def invalidate(self, dov_id: str) -> bool:
        """Drop a superseded version; True when it was resident.

        This is the delivery side of a server lease revocation —
        executed as an ordinary timed kernel event under the
        concurrent kernel.  When the recalled version is the parent of
        a dirty entry, ``on_recall`` fires so the client-TM can ship
        its derived work before the frontier moves further.
        """
        recalled = self._entries.pop(dov_id, None) is not None
        if recalled:
            self._dirty.pop(dov_id, None)
            self.invalidations += 1
        if self.dirty_depends_on(dov_id) and self.on_recall is not None:
            self.on_recall()
        return recalled

    def discard_dirty(self, dop_id: str) -> list[str]:
        """Drop the unflushed checkins of one aborted DOP.

        End-of-DOP (abort) in write-back mode: the DOP's provisional
        versions were never shipped, so there is nothing to undo at
        the server — they simply vanish here.  Returns the discarded
        provisional ids (the client-TM retires its forwarding entries
        for them).
        """
        doomed = [dov_id for dov_id in self._dirty
                  if self._entries[dov_id].record is not None
                  and self._entries[dov_id].record.get("dop_id")
                  == dop_id]
        for dov_id in doomed:
            del self._entries[dov_id]
            del self._dirty[dov_id]
        return doomed

    def rebind(self, mapping: dict[str, DesignObjectVersion]) -> int:
        """Swap flushed provisional entries for their durable versions.

        Called by the client-TM when a group checkin commits:
        ``mapping`` takes each provisional id to the durable DOV the
        server assigned.  The entry keeps its authorizations and hit
        counts, loses its dirty pin, and is resident under the durable
        id from now on.  Returns the number of entries rebound.
        """
        rebound = 0
        for provisional_id, dov in mapping.items():
            entry = self._entries.pop(provisional_id, None)
            if entry is None:
                continue
            # the durable version carries the *same* payload the
            # provisional entry staged (the server adopts the shipped
            # data), so the resident size is already right — only a
            # genuinely different payload re-sizes the entry
            if dov.data is not entry.dov.data:
                entry.size = dov.payload_size
            entry.dov = dov
            entry.dirty = False
            entry.record = None
            self._dirty.pop(provisional_id, None)
            self._entries[dov.dov_id] = entry
            rebound += 1
        return rebound

    def revalidate(self, descriptions: dict[str, dict[str, Any]]) -> int:
        """Keep entries whose repository stamp still matches; drop the
        rest.

        The server-restart path: *descriptions* maps dov ids to
        ``repository.describe``-shaped metadata for the ids that are
        (still) durable.  A clean entry survives iff its id is present
        and the stamp matches the resident snapshot — then the warm
        copy is byte-identical to the durable version and need not be
        re-shipped.  Dirty entries are not the repository's to judge
        (they were never shipped) and always survive.  Returns the
        number of entries kept warm.
        """
        doomed: list[str] = []
        kept = 0
        for dov_id, entry in self._entries.items():
            if entry.dirty:
                continue
            description = descriptions.get(dov_id)
            if description is not None \
                    and tuple(description.get("stamp", ())) \
                    == entry.dov.stamp:
                kept += 1
            else:
                doomed.append(dov_id)
        for dov_id in doomed:
            del self._entries[dov_id]
        self.revalidated += kept
        self.revalidation_drops += len(doomed)
        return kept

    def clean_ids(self) -> list[str]:
        """Ids of the clean (flushed/fetched) resident entries."""
        return [dov_id for dov_id, e in self._entries.items()
                if not e.dirty]

    def drop_clean(self) -> int:
        """Drop every clean entry, keep the dirty ones; returns #dropped.

        The conservative server-restart path: clean copies lost their
        leases with the server and could never be invalidated again,
        so they go; dirty entries were never shipped (the server holds
        nothing to re-validate them against) and remain the
        workstation's unflushed work — a later flush ships them.
        """
        doomed = self.clean_ids()
        for dov_id in doomed:
            del self._entries[dov_id]
        return len(doomed)

    def clear(self) -> int:
        """Crash/flush: drop every entry; returns how many were lost.

        Dirty entries are lost too — the workstation-crash semantics
        of write-back: unflushed checkins die with the volatile buffer
        and are recovered from repository state, not from here.
        """
        lost = len(self._entries)
        self.dirty_lost += len(self._dirty)
        self._entries.clear()
        self._dirty.clear()
        return lost

    # -- statistics --------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses); 0.0 before any lookup."""
        looked_up = self.hits + self.misses
        return self.hits / looked_up if looked_up else 0.0

    def stats(self) -> dict[str, Any]:
        """Snapshot of the buffer's counters (bench/trace surface)."""
        return {
            "workstation": self.workstation,
            "policy": self.policy.name,
            "resident": len(self._entries),
            "resident_bytes": self.resident_bytes,
            "dirty": len(self.dirty_entries()),
            "dirty_bytes": self.dirty_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "coalesced": self.coalesced,
            "dirty_lost": self.dirty_lost,
            "revalidated": self.revalidated,
            "revalidation_drops": self.revalidation_drops,
        }
