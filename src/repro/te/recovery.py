"""Recovery points for long-duration DOPs.

"Recovery points act as 'fire-walls' inside a DOP that limit the scope
of work lost in case of a failure and provide a starting point after
recovery [HR87].  These recovery points are chosen automatically by the
system after appropriate events or time intervals and are transparent to
design tool and designer.  In particular, after each checkout operation
a recovery point is set" (Sect.5.2).

:class:`RecoveryPointPolicy` decides *when* to take one (event-driven:
after checkout; time-driven: every ``interval`` simulated minutes of
tool work).  :class:`RecoveryManager` persists them to the
workstation's stable storage and serves the most recent one at restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.network import StableStorage
from repro.te.context import DopContext, SavepointStack
from repro.util.errors import RecoveryError


@dataclass
class RecoveryPointPolicy:
    """When the client-TM takes automatic recovery points.

    ``after_checkout`` implements the paper's mandatory post-checkout
    point ("in order to avoid duplicate requests of a DOV from the
    server in the case of a failure"); ``interval`` adds periodic points
    during long tool executions (0 disables them).  Experiment T2 sweeps
    ``interval`` to show lost work is bounded by it.
    """

    after_checkout: bool = True
    interval: float = 30.0

    def due(self, work_since_last: float) -> bool:
        """True when a periodic point is due after *work_since_last*."""
        return self.interval > 0 and work_since_last >= self.interval


@dataclass(frozen=True)
class RecoveryPoint:
    """One persisted restart point of a DOP."""

    dop_id: str
    taken_at: float      # simulated time
    reason: str          # 'checkout' | 'interval' | 'savepoint' | ...
    context: dict[str, Any]           # DopContext.snapshot()
    savepoints: list[tuple[str, dict[str, Any]]]  # SavepointStack.snapshot()


class RecoveryManager:
    """Client-TM-side persistence of recovery points and savepoints."""

    def __init__(self, stable: StableStorage,
                 policy: RecoveryPointPolicy | None = None) -> None:
        self.stable = stable
        self.policy = policy or RecoveryPointPolicy()
        #: recovery points taken (for the T2 accounting)
        self.points_taken = 0

    def _key(self, dop_id: str) -> str:
        return f"recovery-point:{dop_id}"

    # -- taking points ------------------------------------------------------

    def take(self, dop_id: str, context: DopContext,
             savepoints: SavepointStack, taken_at: float,
             reason: str) -> RecoveryPoint:
        """Persist a new recovery point (replaces the previous one).

        Only the most recent point is retained: "the TM has to rely on
        the most recent recovery point" (Sect.5.2).
        """
        point = RecoveryPoint(
            dop_id=dop_id,
            taken_at=taken_at,
            reason=reason,
            context=context.snapshot(),
            savepoints=savepoints.snapshot(),
        )
        self.stable.put(self._key(dop_id), {
            "dop_id": point.dop_id,
            "taken_at": point.taken_at,
            "reason": point.reason,
            "context": point.context,
            "savepoints": point.savepoints,
        })
        self.points_taken += 1
        return point

    # -- restart ---------------------------------------------------------------

    def latest(self, dop_id: str) -> RecoveryPoint | None:
        """The most recent persisted point for *dop_id*, if any."""
        raw = self.stable.get(self._key(dop_id))
        if raw is None:
            return None
        return RecoveryPoint(
            dop_id=raw["dop_id"],
            taken_at=raw["taken_at"],
            reason=raw["reason"],
            context=raw["context"],
            savepoints=[(n, s) for n, s in raw["savepoints"]],
        )

    def restore(self, dop_id: str) -> tuple[DopContext, SavepointStack,
                                            RecoveryPoint]:
        """Rebuild context + savepoints from the most recent point.

        Raises :class:`RecoveryError` when no point exists (then the
        DOP must be rolled back to its very beginning).
        """
        point = self.latest(dop_id)
        if point is None:
            raise RecoveryError(f"no recovery point for DOP {dop_id!r}")
        context = DopContext.from_snapshot(point.context)
        savepoints = SavepointStack.from_snapshot(point.savepoints)
        return context, savepoints, point

    def remove(self, dop_id: str) -> bool:
        """Drop the recovery point (commit/abort path: "the client-TM
        removes all its savepoints and its recovery point", Sect.5.2)."""
        return self.stable.delete(self._key(dop_id))

    def has_point(self, dop_id: str) -> bool:
        """True when a recovery point is persisted for *dop_id*."""
        return self._key(dop_id) in self.stable
