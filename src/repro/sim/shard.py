"""Sharded deterministic event loop.

The CONCORD world is naturally partitioned: each workstation's event
stream (tool steps, buffer traffic, lease renewals) is independent of
every other workstation's except where a message crosses the LAN to
the server or a peer.  :class:`ShardedKernel` exploits that shape —
every node is pinned to a **shard**, each shard keeps its own event
stream, and the kernel dispatches by a **lowest-timestamp merge**
across the shard heads:

* events scheduled while a shard's event is executing stay on that
  shard (a workstation's local cascade never leaves its stream);
* a cross-shard send (the network boundary) files the delivery on the
  *destination* node's shard through :meth:`defer_to` and is counted
  in :attr:`cross_shard_messages` — the merge-queue traffic a real
  multi-process deployment would pay serialisation for;
* the merge barrier pops the globally smallest ``(time, priority,
  seq)`` head among all shard streams.  The ``seq`` counter is
  **global**, so the merged order is *identical* to the single-heap
  order — seeded traces are byte-identical for any shard count, which
  is the determinism contract the perf suite's guard asserts.

This class is the **in-process reference**: ``shards=N`` executes the
N streams sequentially under the merge barrier, which makes it the
determinism baseline every parallel run is diffed against.  The real
multi-process deployment lives in :mod:`repro.sim.parallel` — spawn
workers per shard, conservative lookahead windows, speculation with
checkpoint rollback — and its merged trace must be byte-identical to
this kernel's :attr:`event_log` at the same seed.  Supporting hooks
here: :meth:`inject` files events with pre-assigned global sequence
numbers (so replayed streams merge identically), :meth:`filing_on`
scopes shard-affine scheduling (lease buckets, crash injections), and
:attr:`shard_log` records the owning shard of every traced event (the
ownership map replicated scenario workers filter by).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterator
from zlib import crc32

from contextlib import contextmanager

from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel, KernelSnapshot
from repro.sim.scheduler import NO_EVENTS, _ScheduledEvent


class ShardedKernel(Kernel):
    """A :class:`Kernel` that runs N per-node event streams under a
    deterministic lowest-timestamp merge barrier."""

    def __init__(self, clock: SimClock | None = None, shards: int = 2,
                 trace_events: bool = True) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        # per-stream heaps replace both the near heap and the wheel;
        # the base self._queue stays empty (stream heaps are scanned
        # directly by the merge loop)
        super().__init__(clock, trace_events=trace_events, wheel=False)
        self.shards = shards
        #: per-shard heap of ``(time, priority, seq, event)`` tuples
        self._streams: list[list[tuple]] = [[] for _ in range(shards)]
        #: explicit node -> shard pins (crc32 placement otherwise)
        self._node_shard: dict[str, int] = {}
        #: shard whose event is currently executing — newly scheduled
        #: events inherit it, keeping local cascades shard-local
        self._current_shard = 0
        #: deliveries that crossed a shard boundary (merge-queue traffic)
        self.cross_shard_messages = 0
        #: events filed without crossing (shard-local traffic)
        self.local_messages = 0
        #: when set to a list, traced dispatch appends the executing
        #: shard per event — parallel to :attr:`event_log`, giving the
        #: ownership map replicated workers filter their slice by
        self.shard_log: list[int] | None = None

    # -- placement ----------------------------------------------------------

    def shard_of(self, node_id: str) -> int:
        """Shard owning *node_id* (stable crc32 placement by default)."""
        shard = self._node_shard.get(node_id)
        if shard is None:
            shard = crc32(node_id.encode()) % self.shards
            self._node_shard[node_id] = shard
        return shard

    def assign_shard(self, node_id: str, shard: int) -> None:
        """Pin *node_id* to *shard* (overrides crc32 placement)."""
        if not 0 <= shard < self.shards:
            raise ValueError(
                f"shard {shard} out of range for {self.shards} shards")
        self._node_shard[node_id] = shard

    # -- scheduling ---------------------------------------------------------

    def _file(self, time: float, priority: int,
              event: _ScheduledEvent) -> None:
        """File on the current shard's stream (no wheel per stream —
        the merge scan already touches only stream heads)."""
        heappush(self._streams[self._current_shard],
                 (time, priority, event.seq, event))
        self._live += 1

    def defer_to(self, shard: int, delay: float,
                 action: Callable[[], Any], label: str = "",
                 priority: int = 0) -> None:
        """File a deferred event on *shard*'s stream.

        The network transport routes every delivery through here with
        the *destination* node's shard; a delivery landing on a foreign
        stream is merge-queue traffic.
        """
        origin = self._current_shard
        if shard != origin:
            self.cross_shard_messages += 1
        else:
            self.local_messages += 1
        self._current_shard = shard
        try:
            self.defer(delay, action, label, priority)
        finally:
            self._current_shard = origin

    @contextmanager
    def filing_on(self, shard: int) -> Iterator[None]:
        """Scope in which newly scheduled events file on *shard*.

        Unlike :meth:`defer_to` this is not a delivery: nothing is
        counted as merge-queue traffic.  It is the placement hook for
        shard-affine events scheduled from neutral context — lease
        expiry buckets route to the lease owner's shard, crash/restart
        injections to the crashed node's shard.
        """
        origin = self._current_shard
        self._current_shard = shard
        try:
            yield
        finally:
            self._current_shard = origin

    def inject(self, time: float, priority: int, seq: int,
               action: Callable[[], Any], label: str = "",
               shard: int = 0) -> None:
        """File an event with an explicit ``seq`` on *shard*'s stream
        (the sharded form of :meth:`repro.sim.kernel.Kernel.inject`)."""
        event = _ScheduledEvent(time, priority, seq, action, label,
                                pinned=False)
        heappush(self._streams[shard], (time, priority, seq, event))
        self._live += 1
        if seq > self._seq:
            self._seq = seq

    # -- dispatch -----------------------------------------------------------

    def _execute(self, event: _ScheduledEvent) -> None:
        if self._trace_events:
            self.event_log.append((event.time, event.priority,
                                   event.seq, event.label))
            log = self.shard_log
            if log is not None:
                log.append(self._current_shard)
        event.action()

    # -- checkpoint / rollback ----------------------------------------------

    def _snapshot_entries(self) -> tuple:
        entries = []
        for shard, stream in enumerate(self._streams):
            for entry in stream:
                event = entry[3]
                if event.cancelled:
                    continue
                entries.append((shard, event.time, event.priority,
                                event.seq, event.action, event.label,
                                event.pinned))
        return tuple(entries)

    def snapshot(self) -> KernelSnapshot:
        snap = super().snapshot()
        snap.current_shard = self._current_shard
        snap.messages = (self.cross_shard_messages, self.local_messages)
        return snap

    def _restore_entries(self, entries: tuple) -> None:
        streams: list[list[tuple]] = [[] for _ in range(self.shards)]
        for shard, time, priority, seq, action, label, pinned in entries:
            streams[shard].append(
                (time, priority, seq,
                 _ScheduledEvent(time, priority, seq, action, label,
                                 pinned=pinned)))
        for stream in streams:
            heapify(stream)
        self._streams = streams

    def restore(self, snap: KernelSnapshot) -> None:
        super().restore(snap)
        self._current_shard = snap.current_shard
        self.cross_shard_messages, self.local_messages = snap.messages
        if self.shard_log is not None:
            del self.shard_log[snap.log_len:]

    # -- the merge barrier --------------------------------------------------

    def _min_stream(self) -> int:
        """Index of the stream with the globally smallest live head
        (-1 when all streams are empty).  Cancelled heads are swept
        here, exactly as the single-heap loop sweeps them."""
        slab = self._slab
        best = -1
        best_head: tuple | None = None
        for index, stream in enumerate(self._streams):
            while stream:
                head = stream[0]
                event = head[3]
                if event.cancelled:
                    heappop(stream)
                    event.done = True
                    if slab is not None and not event.pinned:
                        event.action = None
                        slab.append(event)
                    continue
                if best_head is None or head < best_head:
                    best_head = head
                    best = index
                break
        return best

    def _next_time(self) -> float:
        shard = self._min_stream()
        if shard < 0:
            return NO_EVENTS
        return self._streams[shard][0][0]

    def step(self) -> bool:
        """Run the merge-barrier winner; False when all streams idle."""
        shard = self._min_stream()
        if shard < 0:
            return False
        was_running = self.running
        self.running = True
        try:
            event = heappop(self._streams[shard])[3]
            event.done = True
            self._live -= 1
            self.clock.advance_to(event.time)
            self._executed += 1
            origin = self._current_shard
            self._current_shard = shard
            try:
                self._execute(event)
            finally:
                self._current_shard = origin
            self._recycle(event)
            return True
        finally:
            self.running = was_running

    def run(self, until: float | None = None,
            max_events: int | None = None) -> int:
        """Merge-run the shard streams (same contract as the base
        :meth:`~repro.sim.scheduler.EventScheduler.run`)."""
        was_running = self.running
        self.running = True
        ran = 0
        drained = False
        clock = self.clock
        slab = self._slab
        streams = self._streams
        try:
            while True:
                shard = self._min_stream()
                if shard < 0:
                    drained = True
                    break
                head = streams[shard][0]
                time = head[0]
                if until is not None and time > until:
                    drained = True
                    break
                if max_events is not None and ran >= max_events:
                    break
                heappop(streams[shard])
                event = head[3]
                event.done = True
                self._live -= 1
                if time > clock._now:
                    clock._now = time
                ran += 1
                self._current_shard = shard
                self._execute(event)
                if slab is not None and not event.pinned:
                    event.action = None
                    slab.append(event)
        finally:
            self._current_shard = 0
            self.running = was_running
            self._executed += ran
        if until is not None and drained:
            clock.advance_to(until)
        return ran

    # -- introspection ------------------------------------------------------

    def shard_stats(self) -> dict[str, Any]:
        """Occupancy and traffic snapshot for the shard streams."""
        total = self.cross_shard_messages + self.local_messages
        return {
            "shards": self.shards,
            "stream_depths": [len(stream) for stream in self._streams],
            "nodes": dict(self._node_shard),
            "cross_shard_messages": self.cross_shard_messages,
            "local_messages": self.local_messages,
            "cross_shard_ratio":
                (self.cross_shard_messages / total) if total else 0.0,
        }
