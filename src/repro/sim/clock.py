"""Simulated time.

CONCORD DOPs are *long-duration* transactions ("several hours or days",
Sect.4.3).  Reproducing the failure and turnaround experiments therefore
requires a virtual clock: tool executions advance simulated time, and
crashes are injected at chosen simulated instants.  :class:`SimClock` is
a monotonically advancing float clock shared by all components of one
simulated world.
"""

from __future__ import annotations


class SimClock:
    """A monotone simulated clock measured in abstract minutes."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by *delta* (must be non-negative)."""
        if delta < 0:
            raise ValueError(f"cannot move time backwards (delta={delta})")
        self._now += delta
        return self._now

    def advance_to(self, instant: float) -> float:
        """Move time forward to *instant* (no-op if already past it)."""
        if instant > self._now:
            self._now = instant
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock (only between independent experiment runs)."""
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now={self._now:.3f})"
