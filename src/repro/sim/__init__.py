"""Discrete-event simulation substrate: clock, scheduler, kernel, failures."""

from repro.sim.clock import SimClock
from repro.sim.failures import FailureEvent, FailureKind, FailurePlan
from repro.sim.injector import FailureInjector, InjectionLogEntry
from repro.sim.kernel import Kernel, Timer
from repro.sim.scheduler import EventScheduler, kernel_fast_path
from repro.sim.shard import ShardedKernel
from repro.sim.wheel import HierarchicalTimerWheel

__all__ = [
    "EventScheduler",
    "FailureEvent",
    "FailureInjector",
    "FailureKind",
    "FailurePlan",
    "HierarchicalTimerWheel",
    "InjectionLogEntry",
    "Kernel",
    "ShardedKernel",
    "SimClock",
    "Timer",
    "kernel_fast_path",
]
