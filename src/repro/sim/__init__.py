"""Discrete-event simulation substrate: clock, scheduler, kernel, failures."""

from repro.sim.clock import SimClock
from repro.sim.failures import FailureEvent, FailureKind, FailurePlan
from repro.sim.injector import FailureInjector, InjectionLogEntry
from repro.sim.kernel import Kernel
from repro.sim.scheduler import EventScheduler

__all__ = [
    "EventScheduler",
    "FailureEvent",
    "FailureInjector",
    "FailureKind",
    "FailurePlan",
    "InjectionLogEntry",
    "Kernel",
    "SimClock",
]
