"""Discrete-event simulation substrate: clock, scheduler, kernel, failures."""

from repro.sim.clock import SimClock
from repro.sim.failures import FailureEvent, FailureKind, FailurePlan
from repro.sim.injector import FailureInjector, InjectionLogEntry
from repro.sim.kernel import Kernel, KernelSnapshot, Timer
from repro.sim.parallel import (
    ShardProgram,
    build_saturation_storm,
    run_program_parallel,
    run_program_sequential,
    run_scenario_replicated,
)
from repro.sim.scheduler import EventScheduler, kernel_fast_path
from repro.sim.shard import ShardedKernel
from repro.sim.wheel import HierarchicalTimerWheel

__all__ = [
    "EventScheduler",
    "FailureEvent",
    "FailureInjector",
    "FailureKind",
    "FailurePlan",
    "HierarchicalTimerWheel",
    "InjectionLogEntry",
    "Kernel",
    "KernelSnapshot",
    "ShardProgram",
    "ShardedKernel",
    "SimClock",
    "Timer",
    "build_saturation_storm",
    "kernel_fast_path",
    "run_program_parallel",
    "run_program_sequential",
    "run_scenario_replicated",
]
