"""Discrete-event simulation substrate: clock, scheduler, failure plans."""

from repro.sim.clock import SimClock
from repro.sim.failures import FailureEvent, FailureKind, FailurePlan
from repro.sim.injector import FailureInjector, InjectionLogEntry
from repro.sim.scheduler import EventScheduler

__all__ = [
    "EventScheduler",
    "FailureEvent",
    "FailureInjector",
    "FailureKind",
    "FailurePlan",
    "InjectionLogEntry",
    "SimClock",
]
