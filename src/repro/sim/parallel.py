"""Multi-process sharded kernel execution.

:class:`~repro.sim.shard.ShardedKernel` proved the partitioning: per
node event streams under a deterministic lowest-timestamp merge, with
the global ``seq`` counter making the merged order identical to the
single-heap order.  This module runs those shards on **real worker
processes** (``multiprocessing``, spawn-safe), with the merge as the
only synchronization point.  Two execution modes share the machinery:

**Program mode** (:func:`run_program_parallel`) executes a *shard
program* — a picklable event population whose global sequence numbers
are fixed at build time (:func:`build_saturation_storm` builds the T11
saturation-storm shape).  One spawned worker owns each shard and the
coordinator drives a conservative-lookahead round protocol:

* the **lookahead window** ``L`` is the minimum cross-shard message
  latency (:meth:`repro.net.network.Network.latency_lower_bound`); the
  storm builder guarantees every cross-shard delivery arrives
  *strictly* more than ``L`` after its sending event;
* each round the coordinator computes the global **floor** (the
  smallest pending event time across all workers plus all in-flight
  messages) and grants the horizon ``H = floor + L``.  Every event
  below ``H`` is safe to execute: any message a foreign shard could
  still generate arrives strictly after ``H``;
* after the conservative window a worker takes a **checkpoint**
  (:meth:`repro.sim.kernel.Kernel.snapshot`) and keeps executing
  **speculatively** up to ``H + L``, holding its outbound sends back;
* a cross-shard message arriving below the shard's local clock — a
  *straggler*, only possible inside the speculated segment — triggers
  **rollback**: the kernel restores the checkpoint (truncating the
  event log), held sends are discarded, and the window replays with
  the straggler merged in.  Messages sort strictly after ``H + L`` of
  the round *before* their delivery round, so one checkpoint per
  round is sufficient: speculation confirmed at the next grant can
  never be invalidated later.

The merged ``(time, priority, seq, label)`` stream of a parallel run
is **byte-identical** to the single-process
:class:`~repro.sim.shard.ShardedKernel` execution of the same program
(:func:`run_program_sequential`) — the PR 8 trace-diff oracle enforces
it structurally.

**Replicated mode** (:func:`run_scenario_replicated`) covers full
scenarios, whose worlds are closures over shared repository state and
do not serialise.  Every spawned worker rebuilds the *entire* scenario
from its picklable TOML tables and runs it single-process, then
returns only the event-log slice its shards own
(:attr:`~repro.sim.shard.ShardedKernel.shard_log`); the coordinator
merges the slices and asserts the worker reports agree.  This is the
cross-process determinism gate: a run whose event order depends on
hash seeds, dict iteration, or any other per-process accident diverges
here and is reported through the same trace-diff oracle.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from functools import partial
from heapq import merge as heap_merge
from random import Random
from time import perf_counter, process_time
from typing import TYPE_CHECKING, Any

from repro.sim.clock import SimClock
from repro.sim.kernel import Kernel
from repro.sim.scheduler import NO_EVENTS
from repro.sim.shard import ShardedKernel
from repro.util.errors import KernelError

if TYPE_CHECKING:  # lazy at runtime: sim must not import scenario/
    from repro.scenario.schema import ScenarioConfig  # pragma: no cover
    from repro.sim.trace import BuildFlags  # pragma: no cover

#: hard cap on coordinator rounds — a protocol bug (a floor that never
#: advances) fails loudly instead of deadlocking the run
MAX_ROUNDS = 100_000

#: a program event: ``(time, priority, seq, label, work, sends)`` where
#: ``sends`` is a tuple of ``(dst_shard, ProgramEvent)`` — pure nested
#: tuples, picklable and immutable
ProgramEvent = tuple


@dataclass(frozen=True)
class ShardProgram:
    """A picklable event population partitioned across shards."""

    shards: int
    #: initial events per shard (cross-shard sends are nested inside)
    programs: tuple[tuple[ProgramEvent, ...], ...]
    #: safe lower bound on cross-shard delivery latency: every nested
    #: send is delivered *strictly* more than this after its sender
    lookahead: float
    total_events: int
    meta: dict[str, Any] = field(default_factory=dict)


def _spin(units: int) -> int:
    """Burn a deterministic amount of CPU — the modeled handler cost."""
    x = 0
    for i in range(units):
        x += i
    return x


# ---------------------------------------------------------------------------
# the saturation-storm program (the T11 shape as a shard program)
# ---------------------------------------------------------------------------

def build_saturation_storm(shards: int = 4, *,
                           workstations: int = 400,
                           renew_rounds: int = 2,
                           ttl: float = 8.0,
                           lan_latency: float = 2.0,
                           jitter: float = 1.0,
                           leases_per_ws: int = 64,
                           seed: int = 0,
                           ws_work: int = 60,
                           server_work: int = 20,
                           start: float = 0.1,
                           stagger: float = 0.013) -> ShardProgram:
    """The T11 kernel-saturation fleet as a :class:`ShardProgram`.

    Mirrors :func:`repro.bench.experiments.run_t11`'s event mix: per
    workstation a staggered lease-grant wave ships a batch to the
    server, even-numbered workstations renew in ``renew_rounds`` waves
    (each renewal re-arms the server-side expiry bucket, which
    re-checks lazily at the superseded instant), and the final expiry
    settles the bucket and ships an invalidation back to the
    workstation, whose per-lease buffer drops are the heavy end of the
    work (``leases_per_ws`` scales both the bucket settle and the
    drop).  The server anchors shard 0 and workstations round-robin
    over the remaining shards, so the single-server lease table is the
    Amdahl floor of the scaling curve — exactly the bottleneck the
    ROADMAP's federation arc exists to remove.

    Every cross-shard delivery uses ``lan_latency`` plus a strictly
    positive seeded jitter, so ``lan_latency`` is a safe *exclusive*
    lower bound — the conservative lookahead window of the parallel
    protocol.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    if jitter <= 0.0:
        raise ValueError(
            "the storm needs strictly positive jitter: the lookahead "
            "window is an exclusive latency lower bound")
    rng = Random(seed)
    seq = 0
    total = 0
    bucket_work = server_work + leases_per_ws // 16
    inval_work = ws_work + leases_per_ws // 4

    def event(time: float, label: str, work: int,
              sends: tuple = ()) -> ProgramEvent:
        nonlocal seq, total
        seq += 1
        total += 1
        return (time, 0, seq, label, work, sends)

    def lat() -> float:
        return lan_latency + rng.uniform(0.05, 1.0) * jitter

    programs: list[list[ProgramEvent]] = [[] for _ in range(shards)]
    work_by_shard = [0] * shards
    for k in range(workstations):
        ws = f"ws-{k:04d}"
        ws_shard = 0 if shards == 1 else 1 + k % (shards - 1)
        renewing = k % 2 == 0
        t0 = start + k * stagger

        # the final bucket settle ships an invalidation back to the
        # (by then silent) workstation: per-lease buffer drops
        rounds = renew_rounds if renewing else 0
        granted = t0 + lat()
        expiry = granted + ttl + rounds * (ttl / 2.0)
        inval = event(expiry + lat(), f"storm:inval:{ws}", inval_work)
        work_by_shard[ws_shard] += inval_work

        # the server-side expiry-bucket chain, last-to-first: each
        # renewal leaves the superseded bucket to re-check lazily
        bucket = event(expiry, f"storm:lease-expiry:{ws}", bucket_work,
                       ((ws_shard, inval),))
        work_by_shard[0] += bucket_work
        for r in range(rounds, 0, -1):
            instant = granted + ttl + (r - 1) * (ttl / 2.0)
            bucket = event(instant, f"storm:lease-recheck:{ws}",
                           bucket_work, ((0, bucket),))
            work_by_shard[0] += bucket_work

        batch = event(granted, f"storm:grant-batch:{ws}", server_work,
                      ((0, bucket),))
        work_by_shard[0] += server_work
        programs[ws_shard].append(
            event(t0, f"storm:grant-wave:{ws}", ws_work,
                  ((0, batch),)))
        work_by_shard[ws_shard] += ws_work

        for r in range(1, rounds + 1):
            renewal = event(t0 + r * (ttl / 2.0) + lat(),
                            f"storm:renew-batch:{ws}", server_work)
            work_by_shard[0] += server_work
            programs[ws_shard].append(
                event(t0 + r * (ttl / 2.0),
                      f"storm:renew-wave:{ws}", ws_work,
                      ((0, renewal),)))
            work_by_shard[ws_shard] += ws_work

    total_work = sum(work_by_shard) or 1
    return ShardProgram(
        shards=shards,
        programs=tuple(tuple(p) for p in programs),
        lookahead=lan_latency,
        total_events=total,
        meta={
            "storm": "t11-saturation",
            "workstations": workstations,
            "renew_rounds": renew_rounds,
            "ttl": ttl,
            "lan_latency": lan_latency,
            "jitter": jitter,
            "leases_per_ws": leases_per_ws,
            "seed": seed,
            "work_shares": [round(w / total_work, 4)
                            for w in work_by_shard],
        })


# ---------------------------------------------------------------------------
# sequential reference: the same program on one ShardedKernel
# ---------------------------------------------------------------------------

@dataclass
class ProgramRunResult:
    """Outcome of one program execution (either mode)."""

    #: the merged ``(time, priority, seq, label)`` stream (empty when
    #: the run was untraced)
    events: list[tuple]
    final_time: float
    executed: int
    stats: dict[str, Any] = field(default_factory=dict)


class _SequentialProgram:
    """Executes a :class:`ShardProgram` on one in-process kernel."""

    def __init__(self, kernel: ShardedKernel) -> None:
        self.kernel = kernel

    def inject(self, shard: int, pe: ProgramEvent) -> None:
        time, priority, seq, label, work, sends = pe
        self.kernel.inject(time, priority, seq,
                           partial(self._perform, shard, work, sends),
                           label, shard=shard)

    def _perform(self, shard: int, work: int, sends: tuple) -> None:
        _spin(work)
        if sends:
            kernel = self.kernel
            for dst, child in sends:
                if dst != shard:
                    kernel.cross_shard_messages += 1
                else:
                    kernel.local_messages += 1
                self.inject(dst, child)


def run_program_sequential(storm: ShardProgram,
                           trace_events: bool = True
                           ) -> ProgramRunResult:
    """Run *storm* on a single-process :class:`ShardedKernel` — the
    determinism baseline every parallel run is diffed against."""
    kernel = ShardedKernel(SimClock(), shards=storm.shards,
                           trace_events=trace_events)
    runner = _SequentialProgram(kernel)
    for shard, events in enumerate(storm.programs):
        for pe in events:
            runner.inject(shard, pe)
    cpu0 = process_time()
    wall0 = perf_counter()
    executed = kernel.run()
    wall = perf_counter() - wall0
    cpu = process_time() - cpu0
    return ProgramRunResult(
        events=list(kernel.event_log),
        final_time=kernel.clock.now,
        executed=executed,
        stats={
            "mode": "sequential",
            "shards": storm.shards,
            "cpu_seconds": cpu,
            "wall_seconds": wall,
            "cross_shard_messages": kernel.cross_shard_messages,
        })


# ---------------------------------------------------------------------------
# the worker side of the parallel protocol
# ---------------------------------------------------------------------------

class _WorkerEngine:
    """One shard's event loop: conservative window + speculation."""

    def __init__(self, shard: int, events: tuple,
                 lookahead: float, speculate: bool,
                 trace_events: bool) -> None:
        self.shard = shard
        self.kernel = Kernel(SimClock(), trace_events=trace_events,
                             wheel=False)
        self.lookahead = lookahead
        self.speculate = speculate
        #: confirmed cross-shard sends awaiting pickup: (dst, event)
        self.outbox: list[tuple[int, ProgramEvent]] = []
        #: speculative sends held back until the speculation commits
        self.held: list[tuple[int, ProgramEvent]] = []
        self.speculating = False
        #: ``(kernel snapshot, last-executed key, spec count)`` or None
        self.checkpoint = None
        #: ``(time, priority, seq)`` of the last executed event
        self.last_key: tuple = (-1.0, 0, 0)
        self.rollbacks = 0
        self.rolled_back_events = 0
        self.speculated = 0
        self.committed_speculative = 0
        self.cpu = 0.0
        for pe in events:
            self._inject(pe)

    def _inject(self, pe: ProgramEvent) -> None:
        time, priority, seq, label, work, sends = pe
        self.kernel.inject(time, priority, seq,
                           partial(self._perform, (time, priority, seq),
                                   work, sends), label)

    def _perform(self, key: tuple, work: int, sends: tuple) -> None:
        self.last_key = key
        _spin(work)
        if sends:
            sink = self.held if self.speculating else self.outbox
            for dst, child in sends:
                if dst == self.shard:
                    self._inject(child)
                else:
                    sink.append((dst, child))

    def _rollback(self) -> None:
        snapshot, last_key, spec_count = self.checkpoint
        self.kernel.restore(snapshot)
        self.last_key = last_key
        self.held.clear()
        self.rollbacks += 1
        self.rolled_back_events += spec_count

    def round(self, horizon: float,
              incoming: list[ProgramEvent]) -> tuple:
        """One grant: merge *incoming*, run the window, speculate.

        Returns ``(outbox, floor_time, executed)`` where *floor_time*
        is this shard's contribution to the next global floor — the
        first speculatively executed event's time (the earliest state
        a rollback could rewind to), or the next pending time when the
        shard did not speculate.
        """
        t0 = process_time()
        kernel = self.kernel
        if self.checkpoint is not None:
            if incoming and min(pe[:3] for pe in incoming) \
                    < self.last_key:
                # straggler below the speculated segment: rewind
                self._rollback()
            else:
                # every delivery sorts after the speculation: commit
                self.outbox.extend(self.held)
                self.held.clear()
                self.committed_speculative += self.checkpoint[2]
            self.checkpoint = None
        for pe in incoming:
            self._inject(pe)
        # conservative window: every event at or below the horizon is
        # safe (cross-shard deliveries arrive strictly above it)
        self.speculating = False
        kernel.run(until=horizon)
        floor_time = kernel._next_time()
        # speculative window: run ahead one more lookahead span with
        # sends held back; the checkpoint is the rollback target
        if self.speculate and floor_time != NO_EVENTS \
                and floor_time <= horizon + self.lookahead:
            before = kernel.executed
            self.checkpoint = (kernel.snapshot(), self.last_key, 0)
            self.speculating = True
            kernel.run(until=horizon + self.lookahead)
            spec = kernel.executed - before
            self.checkpoint = (self.checkpoint[0], self.checkpoint[1],
                               spec)
            self.speculated += spec
        outbox = self.outbox
        self.outbox = []
        self.cpu += process_time() - t0
        return outbox, floor_time, kernel.executed

    def finish(self) -> dict[str, Any]:
        """Final report: the shard's committed trace slice + stats."""
        return {
            "shard": self.shard,
            "events": list(self.kernel.event_log),
            "executed": self.kernel.executed,
            # the last *executed* event's time, not the clock: window
            # runs advance the clock to the granted horizon even when
            # the tail of the window held no events
            "final_time": max(self.last_key[0], 0.0),
            "rollbacks": self.rollbacks,
            "rolled_back_events": self.rolled_back_events,
            "speculated": self.speculated,
            "committed_speculative": self.committed_speculative,
            "cpu_seconds": self.cpu,
        }


def _program_worker(conn, shard: int, events: tuple, lookahead: float,
                    speculate: bool, trace_events: bool) -> None:
    """Spawn entry point: serve grant rounds until told to finish."""
    engine = _WorkerEngine(shard, events, lookahead, speculate,
                           trace_events)
    try:
        while True:
            msg = conn.recv()
            try:
                if msg[0] == "grant":
                    outbox, floor_time, executed = engine.round(
                        msg[1], msg[2])
                    conn.send(("round", outbox,
                               None if floor_time == NO_EVENTS
                               else floor_time, executed))
                elif msg[0] == "finish":
                    conn.send(("result", engine.finish()))
                    return
                else:  # pragma: no cover - protocol guard
                    raise KernelError(f"unknown coordinator message "
                                      f"{msg[0]!r}")
            except Exception as exc:
                conn.send(("error",
                           f"shard {shard}: "
                           f"{type(exc).__name__}: {exc}"))
                return
    except EOFError:  # pragma: no cover - coordinator died
        return
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# the coordinator
# ---------------------------------------------------------------------------

def run_program_parallel(storm: ShardProgram, *,
                         speculate: bool = True,
                         trace_events: bool = True
                         ) -> ProgramRunResult:
    """Run *storm* on one spawned worker process per shard.

    The coordinator's merge is the only synchronization point: each
    round it gathers every worker's floor plus the in-flight message
    times, grants the conservative horizon ``floor + lookahead``, and
    ferries cross-shard sends.  The merged trace is byte-identical to
    :func:`run_program_sequential` at the same program.
    """
    ctx = multiprocessing.get_context("spawn")
    wall0 = perf_counter()
    workers = []
    try:
        for shard in range(storm.shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_program_worker,
                args=(child, shard, storm.programs[shard],
                      storm.lookahead, speculate, trace_events),
                name=f"repro-shard-{shard}")
            proc.start()
            child.close()
            workers.append((proc, parent))

        floors: list[float | None] = [
            min((pe[0] for pe in events), default=None)
            for events in storm.programs]
        inbox: list[list[ProgramEvent]] = \
            [[] for _ in range(storm.shards)]
        rounds = 0
        while True:
            pending = [f for f in floors if f is not None]
            pending.extend(pe[0] for msgs in inbox for pe in msgs)
            if not pending:
                break
            if rounds >= MAX_ROUNDS:
                raise KernelError(
                    f"parallel run exceeded {MAX_ROUNDS} rounds — "
                    f"the floor is not advancing (floor="
                    f"{min(pending)})")
            horizon = min(pending) + storm.lookahead
            for shard, (proc, conn) in enumerate(workers):
                conn.send(("grant", horizon, inbox[shard]))
                inbox[shard] = []
            for shard, (proc, conn) in enumerate(workers):
                reply = conn.recv()
                if reply[0] == "error":
                    raise KernelError(f"worker failed: {reply[1]}")
                tag, outbox, floor_time, executed = reply
                floors[shard] = floor_time
                for dst, pe in outbox:
                    inbox[dst].append(pe)
            rounds += 1

        results = []
        for proc, conn in workers:
            conn.send(("finish",))
            reply = conn.recv()
            if reply[0] == "error":
                raise KernelError(f"worker failed: {reply[1]}")
            results.append(reply[1])
        for proc, conn in workers:
            proc.join(timeout=60)
            conn.close()
    except BaseException:
        for proc, conn in workers:
            if proc.is_alive():
                proc.terminate()
        raise
    wall = perf_counter() - wall0

    results.sort(key=lambda r: r["shard"])
    merged = list(heap_merge(*(r["events"] for r in results)))
    executed = sum(r["executed"] for r in results)
    worker_cpu = [r["cpu_seconds"] for r in results]
    return ProgramRunResult(
        events=merged,
        final_time=max(r["final_time"] for r in results),
        executed=executed,
        stats={
            "mode": "parallel",
            "shards": storm.shards,
            "workers": storm.shards,
            "rounds": rounds,
            "lookahead": storm.lookahead,
            "speculate": speculate,
            "rollbacks": sum(r["rollbacks"] for r in results),
            "rolled_back_events": sum(r["rolled_back_events"]
                                      for r in results),
            "speculated": sum(r["speculated"] for r in results),
            "committed_speculative": sum(r["committed_speculative"]
                                         for r in results),
            "worker_cpu_seconds": worker_cpu,
            "max_worker_cpu_seconds": max(worker_cpu),
            "wall_seconds": wall,
        })


# ---------------------------------------------------------------------------
# replicated scenario mode: full worlds, per-shard trace slices
# ---------------------------------------------------------------------------

def _plain(report: Any) -> Any:
    """Reduce a runner report to a picklable, comparable form."""
    import dataclasses

    if dataclasses.is_dataclass(report) \
            and not isinstance(report, type):
        return {"__report__": type(report).__name__,
                **dataclasses.asdict(report)}
    return report


def _replicated_worker(conn, tables: dict, flag_values: dict,
                       shards: int, owned: tuple[int, ...]) -> None:
    """Spawn entry point: rebuild the scenario world from its tables,
    run it whole, return only the owned shards' trace slice."""
    try:
        from repro.scenario.compiler import compile_scenario
        from repro.scenario.schema import validate_scenario
        from repro.sim.trace import BuildFlags

        config = validate_scenario(tables)
        flags = BuildFlags.from_dict(flag_values)
        captured: list[Any] = []

        def hook(kernel: Any) -> None:
            kernel.shard_log = []
            captured.append(kernel)

        with flags.apply():
            report = compile_scenario(config).run(shards=shards,
                                                  on_kernel=hook)
        kernel = captured[-1]
        shard_log = kernel.shard_log or []
        events = [list(line) for line, shard
                  in zip(kernel.event_log, shard_log)
                  if shard in owned]
        conn.send(("ok", {
            "owned": owned,
            "events": events,
            "executed": len(kernel.event_log),
            "final_time": kernel.clock.now,
            "report": _plain(report),
        }))
    except BaseException as exc:  # surface the failure, don't hang
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def run_scenario_replicated(config: "ScenarioConfig",
                            flags: "BuildFlags | None" = None,
                            shards: int | None = None,
                            workers: int | None = None
                            ) -> ProgramRunResult:
    """Run *config* on spawned workers, one full replica each.

    Every worker owns a slice of the shard range and contributes
    exactly its shards' events; the coordinator merges the slices into
    the full stream and asserts all replicas agreed on event count,
    final time and report — the cross-process determinism gate.
    """
    from repro.sim.trace import BuildFlags

    flags = flags or BuildFlags()
    if shards is None:
        shards = config.shards
    if shards < 2:
        raise KernelError(
            f"replicated parallel execution needs shards >= 2 "
            f"(got {shards})")
    workers = min(workers or shards, shards)
    tables = config.as_tables()
    flag_values = flags.as_dict()
    owned_slices = [tuple(range(w, shards, workers))
                    for w in range(workers)]

    ctx = multiprocessing.get_context("spawn")
    wall0 = perf_counter()
    procs = []
    try:
        for owned in owned_slices:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_replicated_worker,
                args=(child, tables, flag_values, shards, owned),
                name=f"repro-replica-{owned[0]}")
            proc.start()
            child.close()
            procs.append((proc, parent))
        replies = []
        for proc, conn in procs:
            tag, payload = conn.recv()
            if tag != "ok":
                raise KernelError(f"replica worker failed: {payload}")
            replies.append(payload)
        for proc, conn in procs:
            proc.join(timeout=60)
            conn.close()
    except BaseException:
        for proc, conn in procs:
            if proc.is_alive():
                proc.terminate()
        raise
    wall = perf_counter() - wall0

    executed = {r["executed"] for r in replies}
    finals = {r["final_time"] for r in replies}
    reports = [r["report"] for r in replies]
    if len(executed) != 1 or len(finals) != 1 \
            or any(r != reports[0] for r in reports[1:]):
        raise KernelError(
            "replicas diverged before the merge: executed counts "
            f"{sorted(executed)}, final times {sorted(finals)} — "
            "the run is not deterministic across processes")
    merged = [tuple(line) for line in
              heap_merge(*(r["events"] for r in replies))]
    if len(merged) != executed.pop():
        raise KernelError(
            f"shard ownership did not partition the stream: merged "
            f"{len(merged)} of {replies[0]['executed']} events")
    return ProgramRunResult(
        events=merged,
        final_time=replies[0]["final_time"],
        executed=replies[0]["executed"],
        stats={
            "mode": "replicated",
            "shards": shards,
            "workers": workers,
            "report": reports[0],
            "wall_seconds": wall,
        })
