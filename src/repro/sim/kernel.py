"""The unified discrete-event kernel.

Every layer of the reproduction — the workload simulator, the network
transport, the design managers and the failure injector — schedules
against one :class:`Kernel`: a :class:`~repro.sim.scheduler.EventScheduler`
extended with the execution services the concurrent system needs:

* **quiescence detection** — :meth:`run_until_quiescent` drains the
  event queue to a fixed point (bounded by an event budget), which is
  the natural termination condition of a concurrent DA run: no DM has
  a step pending, no message is in flight, no failure is armed;
* **deadlines** — :meth:`run_until` advances exactly to a simulated
  instant, leaving later events pending (mid-flight inspection);
* **failure injection** — :meth:`crash_at` arms a node crash (and its
  restart) at arbitrary simulated instants, the kernel-native form of
  the :class:`~repro.sim.injector.FailureInjector`;
* **a deterministic event trace** — every executed event is recorded
  as ``(time, priority, seq, label)`` in :attr:`event_log`, so two
  identically seeded runs can be compared event by event (and the full
  stream can be persisted/replayed through :mod:`repro.sim.trace`).
  The ``(time, priority, seq)`` tie-breaking of the underlying
  scheduler makes the trace — and therefore the whole simulation —
  reproducible.

The :attr:`running` flag is True only while the kernel is executing
events; components use it to decide between queued asynchronous
delivery (inside a run) and synchronous handoff (outside).
"""

from __future__ import annotations

from contextlib import contextmanager
from heapq import heapify, heappush
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.sim.clock import SimClock
from repro.sim.injector import InjectionLogEntry
from repro.sim.scheduler import EventScheduler, _ScheduledEvent
from repro.util.errors import KernelError

if TYPE_CHECKING:  # avoid the sim <-> net package-init cycle
    from repro.net.network import Network


class KernelSnapshot:
    """Frozen pending-event state of a kernel — the rollback checkpoint.

    Captures everything :meth:`Kernel.restore` needs to rewind a kernel
    to the capture instant: the clock, the sequence counter, the
    executed-event count, the live queue contents, and the lengths of
    the append-only logs (which restore truncates back).  Event
    *actions* are kept by reference: a restore re-files the same
    callables, so the snapshot is only valid within the process that
    took it — exactly the shape the parallel worker protocol needs.
    """

    __slots__ = ("now", "seq", "executed", "log_len", "injection_len",
                 "entries", "current_shard", "messages")

    def __init__(self, now: float, seq: int, executed: int,
                 log_len: int, injection_len: int, entries: tuple,
                 current_shard: int = 0,
                 messages: tuple[int, int] = (0, 0)) -> None:
        self.now = now
        self.seq = seq
        self.executed = executed
        self.log_len = log_len
        self.injection_len = injection_len
        #: live events as ``(shard, time, priority, seq, action,
        #: label, pinned)`` — shard is 0 on single-stream kernels
        self.entries = entries
        self.current_shard = current_shard
        self.messages = messages


class Timer:
    """A re-armable deadline on a kernel — the TTL-lease primitive.

    Wraps the schedule-and-check pattern renewable timeouts need: at
    most **one** kernel event is pending per timer, no matter how
    often the deadline moves.  :meth:`arm` sets (or extends) the
    deadline; the pending event notices a moved deadline when it fires
    and re-schedules itself instead of acting, so a renewal costs no
    extra event; :meth:`cancel` turns the pending event into a no-op.
    The *action* runs exactly when the deadline is reached un-moved —
    deterministic under the ``(time, priority, seq)`` ordering like
    every other event.
    """

    def __init__(self, kernel: "Kernel", action: Callable[[], None],
                 label: str = "timer") -> None:
        self.kernel = kernel
        self.action = action
        self.label = label
        #: current deadline (None = cancelled/idle)
        self.deadline: float | None = None
        self._armed = False
        #: generation counter: cancel() bumps it so a pending event of
        #: an older generation is fully inert — re-arming after a
        #: cancel schedules fresh even at an *earlier* deadline than
        #: the stale event's
        self._epoch = 0

    def arm(self, at: float) -> None:
        """Set the deadline to *at* (extending any earlier one)."""
        if self.deadline is None or at > self.deadline:
            self.deadline = at
        self._schedule()

    def cancel(self) -> None:
        """Drop the deadline; a pending event becomes a no-op."""
        self.deadline = None
        self._epoch += 1
        self._armed = False

    def _schedule(self) -> None:
        if self._armed or self.deadline is None:
            return
        self._armed = True
        epoch = self._epoch
        delay = max(self.deadline - self.kernel.clock.now, 0.0)
        # fire-and-forget: the epoch stamp is the cancellation token,
        # so the timer never needs the event handle — slab fast path
        self.kernel.defer(delay, lambda: self._fire(epoch),
                          label=self.label)

    def _fire(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # cancelled generation: a fresh arm owns the timer
        self._armed = False
        if self.deadline is None:
            return  # cancelled while pending
        if self.deadline > self.kernel.clock.now + 1e-12:
            self._schedule()  # deadline moved (renewal): check later
            return
        self.deadline = None
        self.action()


class Kernel(EventScheduler):
    """The single execution kernel shared by all layers of one world."""

    def __init__(self, clock: SimClock | None = None,
                 trace_events: bool = True,
                 wheel: bool | None = None,
                 wheel_tick: float | None = None) -> None:
        super().__init__(clock, wheel=wheel, wheel_tick=wheel_tick)
        #: True while the kernel is inside :meth:`step` / ``run``
        self.running = False
        self.trace_events = trace_events  # property: binds dispatch
        #: executed events as ``(time, priority, seq, label)`` — the
        #: determinism guard and the record/replay stream
        self.event_log: list[tuple[float, int, int, str]] = []
        #: enacted crash/restart events (kernel-native failure log)
        self.injections: list[InjectionLogEntry] = []

    # -- execution ----------------------------------------------------------

    @property
    def trace_events(self) -> bool:
        """True while dispatch records into :attr:`event_log`."""
        return self._trace_events

    @trace_events.setter
    def trace_events(self, value: bool) -> None:
        self._trace_events = bool(value)
        if value:
            # traced dispatch: the class-level :meth:`_execute`
            self.__dict__.pop("_execute", None)
        else:
            # untraced: shadow dispatch with the base pass-through —
            # the scheduler hot loop recognises it and calls the
            # event's action without any per-event indirection
            self._execute = EventScheduler._execute.__get__(self)

    def step(self) -> bool:
        """Run the next event with the :attr:`running` flag set."""
        was_running = self.running
        self.running = True
        try:
            return super().step()
        finally:
            self.running = was_running

    def run(self, until: float | None = None,
            max_events: int | None = None) -> int:
        """Run with the :attr:`running` flag set for the whole batch."""
        was_running = self.running
        self.running = True
        try:
            return super().run(until, max_events)
        finally:
            self.running = was_running

    def _execute(self, event: _ScheduledEvent) -> None:
        if self.trace_events:
            self.event_log.append((event.time, event.priority,
                                   event.seq, event.label))
        event.action()

    def run_until_quiescent(self, max_events: int = 1_000_000,
                            deadline: float | None = None) -> int:
        """Run until no event is pending (or *deadline* is reached).

        Quiescence is the fixed point of a concurrent run: every DM
        chain has ended, every queued message was delivered, every
        armed failure fired.  Raises :class:`KernelError` when the
        event budget is exhausted first — the guard against a
        non-terminating event cascade.  Returns the number of events
        executed by this call.
        """
        ran = self.run(until=deadline, max_events=max_events)
        if ran >= max_events and self.pending:
            raise KernelError(
                f"no quiescence after {max_events} events "
                f"({self.pending} still pending at t={self.clock.now})")
        return ran

    def run_until(self, deadline: float) -> int:
        """Run exactly to *deadline*, leaving later events pending."""
        return self.run(until=deadline)

    @property
    def quiescent(self) -> bool:
        """True when no (uncancelled) event is pending."""
        return self.pending == 0

    # -- checkpoint / rollback ---------------------------------------------

    def _snapshot_entries(self) -> tuple:
        entries = []
        for source in (self._queue, self._run):
            for entry in source:
                event = entry[3]
                if event.cancelled:
                    continue
                entries.append((0, event.time, event.priority,
                                event.seq, event.action, event.label,
                                event.pinned))
        return tuple(entries)

    def snapshot(self) -> KernelSnapshot:
        """Checkpoint the kernel for a later :meth:`restore`.

        Only wheel-less kernels can be checkpointed (the parallel
        worker engines and :class:`~repro.sim.shard.ShardedKernel` are
        both built ``wheel=False``); a kernel holding far-future wheel
        entries raises :class:`KernelError` rather than silently
        dropping them.  Handles returned by :meth:`at`/:meth:`after`
        before the snapshot become stale after a restore — the restored
        queue holds fresh event records (necessary because the slab
        recycles executed records in place).
        """
        if self._wheel is not None and self._wheel.count:
            raise KernelError(
                "snapshot requires a wheel-less kernel (far-future "
                f"wheel entries pending: {self._wheel.count})")
        return KernelSnapshot(
            now=self.clock._now, seq=self._seq, executed=self._executed,
            log_len=len(self.event_log),
            injection_len=len(self.injections),
            entries=self._snapshot_entries())

    def _restore_entries(self, entries: tuple) -> None:
        self._queue = [
            (time, priority, seq,
             _ScheduledEvent(time, priority, seq, action, label,
                             pinned=pinned))
            for __, time, priority, seq, action, label, pinned
            in entries]
        heapify(self._queue)
        self._run = []

    def restore(self, snap: KernelSnapshot) -> None:
        """Rewind the kernel to the state captured by *snap*.

        Pending events are rebuilt from the snapshot (events scheduled
        after the capture vanish; events that executed since are
        re-queued), the clock moves back to the capture instant, and
        :attr:`event_log` / :attr:`injections` are truncated to their
        captured lengths — the rollback half of the speculative
        parallel protocol in :mod:`repro.sim.parallel`.
        """
        self._restore_entries(snap.entries)
        self._stale = 0
        self._live = len(snap.entries)
        self._seq = snap.seq
        self._executed = snap.executed
        del self.event_log[snap.log_len:]
        del self.injections[snap.injection_len:]
        self.clock._now = snap.now

    def inject(self, time: float, priority: int, seq: int,
               action: Callable[[], Any], label: str = "",
               shard: int = 0) -> None:
        """File an event with an **explicit** pre-assigned ``seq``.

        The parallel runners use this to replay program events whose
        global sequence numbers were fixed at build time, so the merged
        ``(time, priority, seq, label)`` stream is independent of which
        process executed what.  The kernel's own counter is bumped past
        *seq* so subsequently scheduled events stay unique.  Unlike
        :meth:`at`, injection accepts events at (or before) the current
        instant — replayed cross-process deliveries may be filed while
        the local clock sits past them, which is exactly the straggler
        case the rollback protocol detects and repairs.
        """
        event = _ScheduledEvent(time, priority, seq, action, label,
                                pinned=False)
        heappush(self._queue, (time, priority, seq, event))
        self._live += 1
        if seq > self._seq:
            self._seq = seq

    # -- sharding (the base kernel is one shard) ----------------------------

    def shard_of(self, node_id: str) -> int:
        """Shard owning *node_id* — always 0 on the base kernel."""
        return 0

    def assign_shard(self, node_id: str, shard: int) -> None:
        """Pin *node_id* to a shard (no-op on the base kernel)."""

    @contextmanager
    def filing_on(self, shard: int) -> Iterator[None]:
        """Scope in which newly scheduled events file on *shard*.

        A no-op on the base kernel (everything is shard 0);
        :class:`~repro.sim.shard.ShardedKernel` overrides it so owners
        of shard-affine events (lease-expiry buckets, crash injections)
        can route them to the owning node's stream without going
        through a delivery-shaped :meth:`defer_to`.
        """
        yield

    def defer_to(self, shard: int, delay: float,
                 action: Callable[[], Any], label: str = "",
                 priority: int = 0) -> None:
        """Shard-routed :meth:`defer` — plain defer on the base kernel.

        :class:`~repro.sim.shard.ShardedKernel` overrides this to file
        the event on *shard*'s stream; callers (the network transport)
        can therefore route cross-shard sends without caring which
        kernel flavour is underneath.
        """
        self.defer(delay, action, label, priority)

    # -- failure injection --------------------------------------------------

    def crash_at(self, network: "Network", node_id: str, at: float,
                 restart_after: float | None = 1.0,
                 on_restart: Callable[[str], None] | None = None,
                 restart_action: Callable[[], Any] | None = None) -> None:
        """Arm a crash of *node_id* at simulated instant *at*.

        When *restart_after* is not None the node restarts that many
        time units later (running its recovery hooks); *restart_action*
        replaces the plain ``network.restart_node`` when a caller owns
        a richer recovery chain (e.g. the system-level workstation
        recovery), and *on_restart* is invoked afterwards with the
        node id.  Crash/restart events carry priority -1 so they beat
        same-instant work events — a crash "in the middle of" a step
        interrupts the step.
        """

        def crash() -> None:
            network.crash_node(node_id)
            self.injections.append(InjectionLogEntry(
                self.clock.now, "crash", node_id))

        def restart() -> None:
            if restart_action is not None:
                restart_action()
            else:
                network.restart_node(node_id)
            self.injections.append(InjectionLogEntry(
                self.clock.now, "restart", node_id))
            if on_restart is not None:
                on_restart(node_id)

        # crash/restart events belong to the crashed node: on a sharded
        # kernel they file on its stream (merge order is unaffected —
        # the global (time, priority, seq) ordering is stream-agnostic)
        with self.filing_on(self.shard_of(node_id)):
            self.at(at, crash, label=f"crash:{node_id}", priority=-1)
            if restart_after is not None:
                self.at(at + restart_after, restart,
                        label=f"restart:{node_id}", priority=-1)

    # -- trace --------------------------------------------------------------

    def trace_signature(self) -> tuple[int, float, tuple[str, ...]]:
        """Compact fingerprint of the run: (#events, final time, labels).

        Two identically seeded runs of the same scenario must produce
        identical signatures — the determinism contract of the
        ``(time, priority, seq)`` tie-breaking.
        """
        return (len(self.event_log), self.clock.now,
                tuple(label for *_, label in self.event_log))
