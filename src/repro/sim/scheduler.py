"""Discrete-event scheduler.

The workload experiments (T1, T2, T6) simulate a *team* of designers
working concurrently: each designer is a sequence of timed steps (start
a DOP, run a tool for two hours, check in, negotiate, ...).  The
scheduler interleaves those step streams in global timestamp order, so
concurrency effects (lock conflicts, pre-release visibility, crash
windows) play out deterministically.

Events are callbacks ordered by ``(time, priority, seq)``; ties resolve
by insertion order, which keeps runs reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.clock import SimClock


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    priority: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: True once the event left the queue (executed or discarded) —
    #: guards the live counter against cancels of finished events
    done: bool = field(compare=False, default=False)


class EventScheduler:
    """Priority-queue discrete-event loop driving a :class:`SimClock`."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self._queue: list[_ScheduledEvent] = []
        self._seq = 0
        self._executed = 0
        #: queued events that are neither cancelled nor done — kept
        #: incrementally so :attr:`pending` is O(1), not an O(n) scan
        self._live = 0

    # -- scheduling ---------------------------------------------------------

    def at(self, time: float, action: Callable[[], Any],
           label: str = "", priority: int = 0) -> _ScheduledEvent:
        """Schedule *action* at absolute simulated *time*."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule at {time} before now={self.clock.now}")
        self._seq += 1
        event = _ScheduledEvent(time, priority, self._seq, action, label)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def after(self, delay: float, action: Callable[[], Any],
              label: str = "", priority: int = 0) -> _ScheduledEvent:
        """Schedule *action* *delay* time units from now."""
        return self.at(self.clock.now + delay, action, label, priority)

    def cancel(self, event: _ScheduledEvent) -> None:
        """Cancel a pending event (lazy removal).

        Idempotent, and a no-op for events that already ran: only the
        first cancel of a still-queued event decrements the live
        counter.
        """
        if event.cancelled or event.done:
            return
        event.cancelled = True
        self._live -= 1

    # -- execution ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._live

    @property
    def executed(self) -> int:
        """Number of events executed so far."""
        return self._executed

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                event.done = True
                continue
            event.done = True
            self._live -= 1
            self.clock.advance_to(event.time)
            self._executed += 1
            self._execute(event)
            return True
        return False

    def _execute(self, event: _ScheduledEvent) -> None:
        """Run one due event (subclasses hook in tracing here)."""
        event.action()

    def run(self, until: float | None = None,
            max_events: int | None = None) -> int:
        """Run events until exhaustion, *until* time, or *max_events*.

        Returns the number of events executed by this call.
        """
        ran = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue).done = True
                continue
            if until is not None and head.time > until:
                break
            if max_events is not None and ran >= max_events:
                break
            self.step()
            ran += 1
        if until is not None:
            self.clock.advance_to(until)
        return ran
