"""Discrete-event scheduler.

The workload experiments (T1, T2, T6) simulate a *team* of designers
working concurrently: each designer is a sequence of timed steps (start
a DOP, run a tool for two hours, check in, negotiate, ...).  The
scheduler interleaves those step streams in global timestamp order, so
concurrency effects (lock conflicts, pre-release visibility, crash
windows) play out deterministically.

Events are callbacks ordered by ``(time, priority, seq)``; ties resolve
by insertion order, which keeps runs reproducible.

Internals (the PR 7 raw-speed rebuild — order semantics unchanged):

* the priority queue holds plain tuples ``(time, priority, seq,
  event)``, so every heap comparison is C-speed and never reaches the
  event object (``seq`` is unique);
* :class:`_ScheduledEvent` is a ``__slots__`` class allocated from a
  **slab**: events scheduled through the :meth:`defer` fast path are
  recycled into a freelist after they execute, so a long simulation
  stops allocating per event at all.  Events returned by :meth:`at` /
  :meth:`after` are *pinned* (the caller holds the handle for
  :meth:`cancel`) and are never recycled;
* far-future events live in a :class:`~repro.sim.wheel.
  HierarchicalTimerWheel` instead of the heap — O(1) insert, O(1)
  lazy cancel, one bookkeeping entry per time *bucket*.  The wheel
  drains into the heap strictly before any entry it could precede is
  popped, so dispatch order is byte-identical to the heap-only build
  (``wheel=False`` keeps that build available as the determinism
  baseline).
"""

from __future__ import annotations

from contextlib import contextmanager
from heapq import heappop, heappush
from typing import Any, Callable, Iterator

from repro.sim.clock import SimClock
from repro.sim.wheel import NO_EVENTS, HierarchicalTimerWheel

#: events at least this many time units ahead are filed in the wheel;
#: nearer ones go straight to the heap (they would drain immediately)
WHEEL_NEAR_SPAN = 1.0

#: module switch flipped by :func:`kernel_fast_path` — new schedulers
#: built while False use the seed's heap-only, no-slab configuration
_FAST_PATH = True


@contextmanager
def kernel_fast_path(enabled: bool) -> Iterator[None]:
    """Context manager: build schedulers with (or without) the PR 7
    fast paths (timer wheel + slab recycling).

    The compat build is the in-harness baseline of the perf suite and
    the reference side of the determinism guard — event order is
    identical either way, only the constants differ.
    """
    global _FAST_PATH
    previous = _FAST_PATH
    _FAST_PATH = enabled
    try:
        yield
    finally:
        _FAST_PATH = previous


class _ScheduledEvent:
    """One pending callback (a slab-recyclable ``__slots__`` record)."""

    __slots__ = ("time", "priority", "seq", "action", "label",
                 "cancelled", "done", "pinned")

    def __init__(self, time: float, priority: int, seq: int,
                 action: Callable[[], Any], label: str = "",
                 pinned: bool = True) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = False
        #: True once the event left the queue (executed or discarded) —
        #: guards the live counter against cancels of finished events
        self.done = False
        #: True when a caller holds this handle (``at``/``after``
        #: return values) — pinned events are never slab-recycled
        self.pinned = pinned

    def __lt__(self, other: "_ScheduledEvent") -> bool:
        return (self.time, self.priority, self.seq) \
            < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"_ScheduledEvent(t={self.time}, prio={self.priority}, "
                f"seq={self.seq}, label={self.label!r})")


class EventScheduler:
    """Priority-queue discrete-event loop driving a :class:`SimClock`."""

    def __init__(self, clock: SimClock | None = None,
                 wheel: bool | None = None,
                 wheel_tick: float | None = None) -> None:
        self.clock = clock or SimClock()
        #: near heap of ``(time, priority, seq, event)`` tuples
        self._queue: list[tuple] = []
        #: the **dispatch run**: a descending-sorted list of entries
        #: adopted from a drained wheel bucket — its tail is the global
        #: minimum of the run, so bulk dispatch pops it O(1) instead of
        #: paying a heap sift per event.  Entries in the run and the
        #: heap may interleave in time; every pop compares the two
        #: heads and takes the smaller, which preserves the exact
        #: ``(time, priority, seq)`` order
        self._run: list[tuple] = []
        if wheel is None:
            wheel = _FAST_PATH
        #: far-future bucket store (None = heap-only compat build)
        self._wheel: HierarchicalTimerWheel | None = \
            HierarchicalTimerWheel(tick=wheel_tick) \
            if wheel and wheel_tick is not None \
            else (HierarchicalTimerWheel() if wheel else None)
        #: slab freelist of executed, unpinned events
        self._slab: list[_ScheduledEvent] = [] if _FAST_PATH else None
        #: True when :meth:`_file` is not overridden — :meth:`defer`
        #: then routes inline instead of paying the method call
        self._inline_file = type(self)._file is EventScheduler._file
        self._seq = 0
        self._executed = 0
        #: cancelled entries still sitting in a queue somewhere — when
        #: zero, wheel drains may skip their cancellation filter pass
        self._stale = 0
        #: queued events that are neither cancelled nor done — kept
        #: incrementally so :attr:`pending` is O(1), not an O(n) scan
        self._live = 0

    # -- scheduling ---------------------------------------------------------

    def _file(self, time: float, priority: int,
              event: _ScheduledEvent) -> None:
        """Route one event to the heap or the wheel."""
        entry = (time, priority, event.seq, event)
        wheel = self._wheel
        now = self.clock._now
        if wheel is not None and time - now >= WHEEL_NEAR_SPAN:
            wheel.insert(entry, now)
        else:
            heappush(self._queue, entry)
        self._live += 1

    def at(self, time: float, action: Callable[[], Any],
           label: str = "", priority: int = 0) -> _ScheduledEvent:
        """Schedule *action* at absolute simulated *time*."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule at {time} before now={self.clock.now}")
        self._seq += 1
        event = _ScheduledEvent(time, priority, self._seq, action, label)
        self._file(time, priority, event)
        return event

    def after(self, delay: float, action: Callable[[], Any],
              label: str = "", priority: int = 0) -> _ScheduledEvent:
        """Schedule *action* *delay* time units from now."""
        return self.at(self.clock.now + delay, action, label, priority)

    def defer(self, delay: float, action: Callable[[], Any],
              label: str = "", priority: int = 0) -> None:
        """Fire-and-forget :meth:`after`: no handle, slab-recycled.

        The hot-path form used by the network transport, timers and
        the concurrent drivers — same ordering semantics as
        :meth:`after`, but the event record is drawn from (and, after
        execution, returned to) the slab freelist, so steady-state
        scheduling allocates nothing.  The caller gives up the handle:
        a deferred event cannot be cancelled.
        """
        if delay < 0.0:
            delay = 0.0
        now = self.clock._now
        time = now + delay
        seq = self._seq + 1
        self._seq = seq
        slab = self._slab
        if slab:
            event = slab.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.action = action
            event.label = label
            event.cancelled = False
            event.done = False
        else:
            event = _ScheduledEvent(time, priority, seq, action,
                                    label, pinned=False)
        if self._inline_file:
            wheel = self._wheel
            if wheel is not None and time - now >= WHEEL_NEAR_SPAN:
                wheel.insert((time, priority, seq, event), now)
            else:
                heappush(self._queue, (time, priority, seq, event))
            self._live += 1
        else:
            self._file(time, priority, event)

    def cancel(self, event: _ScheduledEvent) -> None:
        """Cancel a pending event (lazy removal).

        Idempotent, and a no-op for events that already ran: only the
        first cancel of a still-queued event decrements the live
        counter.  Works for heap and wheel residents alike — a
        cancelled wheel entry is simply discarded when its bucket
        drains, without ever touching the heap.
        """
        if event.cancelled or event.done:
            return
        event.cancelled = True
        self._live -= 1
        self._stale += 1

    # -- execution ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._live

    @property
    def executed(self) -> int:
        """Number of events executed so far."""
        return self._executed

    def _next_time(self) -> float:
        """Time of the earliest pending event (``inf`` when none).

        Skips cancelled heads (run and heap alike) and settles the
        wheel far enough to answer exactly — the peek primitive of
        ``run(until=...)`` and :meth:`step`.
        """
        queue = self._queue
        run = self._run
        wheel = self._wheel
        slab = self._slab
        while True:
            if run:
                tail = run[-1]
                event = tail[3]
                if event.cancelled:
                    run.pop()
                    event.done = True
                    self._stale -= 1
                    if slab is not None and not event.pinned:
                        event.action = None
                        slab.append(event)
                    continue
                head = queue[0] if queue and queue[0] < tail else tail
            elif queue:
                head = queue[0]
            else:
                head = None
            if wheel is not None:
                bound = wheel.next_bound
                if head is None:
                    if bound == NO_EVENTS:
                        return NO_EVENTS
                    wheel.drain_due(bound, queue, run, self._stale == 0)
                    continue
                if bound <= head[0]:
                    wheel.drain_due(head[0], queue, run,
                                    self._stale == 0)
                    continue
            elif head is None:
                return NO_EVENTS
            event = head[3]
            if event.cancelled:  # a cancelled heap head won the race
                heappop(queue)
                event.done = True
                self._stale -= 1
                if slab is not None and not event.pinned:
                    event.action = None
                    slab.append(event)
                continue
            return head[0]

    def _pop_head(self) -> _ScheduledEvent:
        """Pop the earliest live entry (callers peeked via
        :meth:`_next_time` first, so both heads are live)."""
        run = self._run
        queue = self._queue
        if run and not (queue and queue[0] < run[-1]):
            event = run.pop()[3]
        else:
            event = heappop(queue)[3]
        event.done = True
        self._live -= 1
        return event

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        if self._next_time() == NO_EVENTS:
            return False
        event = self._pop_head()
        self.clock.advance_to(event.time)
        self._executed += 1
        self._execute(event)
        self._recycle(event)
        return True

    def _recycle(self, event: _ScheduledEvent) -> None:
        slab = self._slab
        if slab is not None and not event.pinned:
            event.action = None  # drop the closure; the record lives on
            slab.append(event)

    def _execute(self, event: _ScheduledEvent) -> None:
        """Run one due event (subclasses hook in tracing here)."""
        event.action()

    def run(self, until: float | None = None,
            max_events: int | None = None) -> int:
        """Run events until exhaustion, *until* time, or *max_events*.

        Returns the number of events executed by this call.  The clock
        only advances to *until* when every event at or before it was
        dispatched — an exit via *max_events* leaves the clock at the
        last executed event, never past undispatched ones.
        """
        ran = 0
        queue = self._queue
        run = self._run
        wheel = self._wheel
        slab = self._slab
        clock = self.clock
        execute = self._execute
        # when no subclass hooks into dispatch, skip the indirection
        # and call the event's action straight from the loop
        direct = getattr(execute, "__func__", None) \
            is EventScheduler._execute
        # the wheel cannot interrupt a batch when every insert made
        # *during* it lands in a bucket past the run's upper bound —
        # true whenever the near span covers two level-0 ticks
        batch_ok = direct and slab is not None and (
            wheel is None or wheel.tick * 2.0 <= WHEEL_NEAR_SPAN)
        drained = False
        while True:
            # -- batch fast path: an adopted dispatch run with nothing
            # in the near heap is popped in a tight loop — no source
            # selection, no wheel probe, no counter updates per event.
            # It bails (to the careful loop below) the moment an action
            # schedules a near event or a cancellable handle surfaces.
            if batch_ok and run and not queue \
                    and (wheel is None or wheel.next_bound > run[0][0]) \
                    and (until is None or run[0][0] <= until) \
                    and (max_events is None
                         or max_events - ran >= len(run)):
                size = len(run)
                slab_append = slab.append
                while run:
                    if queue:
                        break
                    entry = run[-1]
                    event = entry[3]
                    if event.pinned:
                        break
                    run.pop()
                    clock._now = entry[0]
                    event.action()
                    event.action = None
                    slab_append(event)
                did = size - len(run)
                ran += did
                self._live -= did
                if not run:
                    continue  # drained: settle the wheel / exit above
            src_run = False
            if run:
                tail = run[-1]
                if queue and queue[0] < tail:
                    head = queue[0]
                else:
                    head = tail
                    src_run = True
            elif queue:
                head = queue[0]
            else:
                head = None
            if wheel is not None:
                bound = wheel.next_bound
                if head is None:
                    if bound == NO_EVENTS:
                        drained = True
                        break
                    wheel.drain_due(bound, queue, run, self._stale == 0)
                    continue
                if bound <= head[0]:
                    wheel.drain_due(head[0], queue, run,
                                    self._stale == 0)
                    continue
            elif head is None:
                drained = True
                break
            event = head[3]
            if event.cancelled:
                if src_run:
                    run.pop()
                else:
                    heappop(queue)
                event.done = True
                self._stale -= 1
                if slab is not None and not event.pinned:
                    event.action = None
                    slab.append(event)
                continue
            time = head[0]
            if until is not None and time > until:
                drained = True
                break
            if max_events is not None and ran >= max_events:
                break
            if src_run:
                run.pop()
            else:
                heappop(queue)
            event.done = True
            self._live -= 1
            if time > clock._now:
                clock._now = time
            ran += 1
            if direct:
                event.action()
            else:
                execute(event)
            if slab is not None and not event.pinned:
                event.action = None
                slab.append(event)
        self._executed += ran
        if until is not None and drained:
            clock.advance_to(until)
        return ran
