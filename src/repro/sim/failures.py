"""Failure injection plans.

The paper's failure model (Sect.5) distinguishes two system failures:
*crash of workstation* and *crash of server*.  A :class:`FailurePlan`
describes, for one simulated run, which node crashes when and when it
restarts.  The experiment drivers (F8, T2) hand the plan to the network
substrate which enacts it; components then exercise their level-specific
recovery (TM recovery points, DM log replay, CM persistent hierarchy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class FailureKind(str, Enum):
    """Which half of the workstation/server architecture fails."""

    WORKSTATION_CRASH = "workstation_crash"
    SERVER_CRASH = "server_crash"


@dataclass(frozen=True)
class FailureEvent:
    """One crash (and optional restart) of one node."""

    kind: FailureKind
    node: str           # node id in the simulated LAN
    at: float           # simulated crash instant
    restart_after: float = 1.0  # downtime before the node restarts

    @property
    def restart_at(self) -> float:
        """Simulated instant at which the node is back up."""
        return self.at + self.restart_after


@dataclass
class FailurePlan:
    """An ordered collection of failure events for one run."""

    events: list[FailureEvent] = field(default_factory=list)

    def crash_workstation(self, node: str, at: float,
                          restart_after: float = 1.0) -> "FailurePlan":
        """Add a workstation crash; returns self for chaining."""
        self.events.append(FailureEvent(
            FailureKind.WORKSTATION_CRASH, node, at, restart_after))
        return self

    def crash_server(self, node: str, at: float,
                     restart_after: float = 1.0) -> "FailurePlan":
        """Add a server crash; returns self for chaining."""
        self.events.append(FailureEvent(
            FailureKind.SERVER_CRASH, node, at, restart_after))
        return self

    def sorted_events(self) -> list[FailureEvent]:
        """Events in injection order."""
        return sorted(self.events, key=lambda e: e.at)

    def __len__(self) -> int:
        return len(self.events)
