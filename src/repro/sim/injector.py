"""Enacting failure plans against a simulated network.

:class:`FailureInjector` turns a declarative
:class:`~repro.sim.failures.FailurePlan` into scheduled crash/restart
events on a :class:`~repro.net.network.Network`, so experiment drivers
can script failures at precise simulated instants ("crash ws-2 in the
middle of its second DOP").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.sim.failures import FailureEvent, FailurePlan
from repro.sim.scheduler import EventScheduler

if TYPE_CHECKING:  # avoid the sim <-> net package-init cycle
    from repro.net.network import Network


@dataclass
class InjectionLogEntry:
    """Record of one enacted crash or restart."""

    at: float
    action: str        # 'crash' | 'restart'
    node: str


@dataclass
class FailureInjector:
    """Schedules a failure plan's events onto the network."""

    network: "Network"
    scheduler: EventScheduler
    #: invoked after each restart, e.g. to run component recovery
    on_restart: Callable[[str], None] | None = None
    log: list[InjectionLogEntry] = field(default_factory=list)

    def arm(self, plan: FailurePlan) -> int:
        """Schedule every event of *plan*; returns #events armed."""
        armed = 0
        for event in plan.sorted_events():
            self._arm_event(event)
            armed += 1
        return armed

    def _arm_event(self, event: FailureEvent) -> None:
        def crash() -> None:
            self.network.crash_node(event.node)
            self.log.append(InjectionLogEntry(
                self.scheduler.clock.now, "crash", event.node))

        def restart() -> None:
            self.network.restart_node(event.node)
            self.log.append(InjectionLogEntry(
                self.scheduler.clock.now, "restart", event.node))
            if self.on_restart is not None:
                self.on_restart(event.node)

        self.scheduler.at(event.at, crash,
                          label=f"crash:{event.node}", priority=-1)
        self.scheduler.at(event.restart_at, restart,
                          label=f"restart:{event.node}", priority=-1)

    def crashes_of(self, node: str) -> list[InjectionLogEntry]:
        """The enacted crash entries of one node."""
        return [e for e in self.log
                if e.node == node and e.action == "crash"]
