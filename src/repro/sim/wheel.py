"""Hierarchical timer wheel: far-future events off the scheduler heap.

A binary heap prices every pending event at O(log n) per insert and
per pop — fine for the hundreds of near events a concurrent DA run
keeps in flight, ruinous for the *far-future, cancel-heavy* population
TTL leases create: 10^6 live leases mean 10^6 heap entries, almost all
of which are renewed (moved) or cancelled long before they fire.

The wheel stores those events in **time buckets** instead:

* level 0 buckets span one ``tick`` of simulated time, level 1 buckets
  span ``tick * slots``, level 2 ``tick * slots**2`` — each level
  covers ``slots`` buckets' worth of horizon, so three levels reach
  ``tick * slots**3`` time units ahead with O(1) placement;
* events beyond the last level live in a small **overflow heap**
  (rare by construction);
* insertion appends to a bucket list (O(1)); only the ids of
  *non-empty* buckets sit in a tiny per-level heap — one heap entry
  per bucket, not per event, which is the whole economy;
* when simulated time reaches a bucket, the bucket **cascades**: a
  level-0 bucket drains into the scheduler's near heap, a higher
  bucket re-distributes its events one level down;
* cancellation is **lazy**: a cancelled event stays in its bucket and
  is discarded the moment its bucket drains — O(1) cancel, no bucket
  surgery.

Dispatch order is *exactly* the heap's ``(time, priority, seq)``
order: a drained bucket is sorted before it merges, and the scheduler
never pops an event while a bucket with a smaller lower bound is still
undrained.  The wheel is therefore a pure throughput change — seeded
event traces are byte-identical with the wheel on or off, which the
determinism guard in ``repro.bench.perf`` asserts.

Entries are the scheduler's heap tuples ``(time, priority, seq,
event)``; tuple comparison never reaches the event object because
``seq`` is unique.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any

#: buckets per wheel level (a power of two keeps index math cheap; a
#: wide level 0 — 128 simulated time units — keeps million-event
#: populations cascade-free, and empty buckets cost nothing because
#: only *non-empty* bucket ids are tracked)
DEFAULT_SLOTS = 256

#: span of one level-0 bucket in simulated time units
DEFAULT_TICK = 0.5

#: wheel levels before the overflow heap takes over
DEFAULT_LEVELS = 3

#: infinity sentinel for :attr:`HierarchicalTimerWheel.next_bound`
NO_EVENTS = float("inf")


class HierarchicalTimerWheel:
    """Bucketed store for far-future scheduler entries.

    The owning scheduler keeps the invariant: before popping an entry
    with time ``t`` from its near heap, :meth:`drain_due` has been
    called with a limit of at least ``t`` — every bucket whose lower
    bound could hide an earlier entry has cascaded into the heap.
    :attr:`next_bound` is the smallest such lower bound (O(1) to
    read), so the scheduler's hot loop pays one float comparison per
    event when the wheel is quiet.
    """

    __slots__ = ("tick", "slots", "levels", "spans", "_buckets",
                 "_order", "_overflow", "count", "next_bound",
                 "_horizon_now", "_limits", "_limit0", "_buckets0",
                 "_order0")

    def __init__(self, tick: float = DEFAULT_TICK,
                 slots: int = DEFAULT_SLOTS,
                 levels: int = DEFAULT_LEVELS) -> None:
        if tick <= 0.0:
            raise ValueError(f"wheel tick must be positive, got {tick}")
        self.tick = tick
        self.slots = slots
        self.levels = levels
        #: bucket span per level: tick, tick*slots, tick*slots^2, ...
        self.spans = [tick * (slots ** level) for level in range(levels)]
        #: per level: absolute bucket index -> list of heap entries
        self._buckets: list[dict[int, list[tuple]]] = \
            [{} for _ in range(levels)]
        #: per level: heap of the non-empty absolute bucket indices
        self._order: list[list[int]] = [[] for _ in range(levels)]
        #: entries beyond the last level's horizon (plain entry heap)
        self._overflow: list[tuple] = []
        #: entries currently stored (cancelled ones included until
        #: their bucket drains)
        self.count = 0
        #: smallest time the wheel could still release an entry at
        #: (``inf`` when empty) — the scheduler's drain trigger
        self.next_bound = NO_EVENTS
        #: per-level horizon limits cached for the last *now* seen by
        #: :meth:`insert` — bulk insertion at one instant (the common
        #: case: many events scheduled between two dispatches) pays the
        #: level arithmetic once, not per event
        self._horizon_now = -1.0
        self._limits = [0.0] * levels
        #: scalar fast-path aliases: the level-0 horizon limit and the
        #: level-0 bucket dict / order heap (insert's common case hits
        #: level 0 and should touch no list indexing at all)
        self._limit0 = 0.0
        self._buckets0 = self._buckets[0]
        self._order0 = self._order[0]

    # -- insertion ----------------------------------------------------------

    def insert(self, entry: tuple, now: float) -> None:
        """File one heap entry ``(time, priority, seq, event)``.

        The target level is the finest one whose horizon (``slots``
        buckets ahead of *now*) still contains the entry's time; an
        entry beyond every level goes to the overflow heap.
        """
        time = entry[0]
        if now != self._horizon_now:
            slots = self.slots
            self._horizon_now = now
            self._limits = [(now // span + slots) * span
                            for span in self.spans]
            self._limit0 = self._limits[0]
        if time < self._limit0:
            # level-0 fast path: one floor-division, one dict probe
            index = time // self.tick
            buckets = self._buckets0
            bucket = buckets.get(index)
            if bucket is None:
                buckets[index] = [entry]
                heappush(self._order0, index)
                bound = index * self.tick
                if bound < self.next_bound:
                    self.next_bound = bound
            else:
                bucket.append(entry)
            self.count += 1
            return
        level = 1
        for limit in self._limits[1:]:
            if time < limit:
                span = self.spans[level]
                index = time // span
                bucket = self._buckets[level].get(index)
                if bucket is None:
                    self._buckets[level][index] = [entry]
                    heappush(self._order[level], index)
                else:
                    bucket.append(entry)
                self.count += 1
                bound = index * span
                if bound < self.next_bound:
                    self.next_bound = bound
                return
            level += 1
        heappush(self._overflow, entry)
        self.count += 1
        if time < self.next_bound:
            self.next_bound = time

    # -- draining -----------------------------------------------------------

    def drain_due(self, limit: float, queue: list[tuple],
                  run: list[tuple] | None = None,
                  all_live: bool = False) -> int:
        """Cascade every bucket with a lower bound <= *limit*.

        Level-0 buckets (and due overflow entries) merge into *queue*,
        the scheduler's near heap — or, when *run* is given and empty,
        are adopted wholesale as the scheduler's sorted dispatch run
        (see :func:`_merge`); higher buckets re-distribute one level
        down.  Cancelled entries are discarded here — they never touch
        the heap.  *all_live* is the owning scheduler's promise that no
        stored entry is cancelled, letting the drain skip the filter
        pass (a stale promise costs nothing but a wasted filter skip:
        cancelled survivors are still swept at dispatch).  Returns the
        number of live entries released.
        """
        released = 0
        while self.next_bound <= limit:
            released += self._drain_one(queue, run, all_live)
            self._refresh_bound()
        return released

    def _drain_one(self, queue: list[tuple],
                   run: list[tuple] | None = None,
                   all_live: bool = False) -> int:
        """Cascade the single most-urgent bucket (or overflow batch)."""
        best_level = -1
        best_bound = NO_EVENTS
        for level, order in enumerate(self._order):
            if order:
                bound = order[0] * self.spans[level]
                if bound < best_bound:
                    best_bound = bound
                    best_level = level
        if self._overflow and self._overflow[0][0] < best_bound:
            return self._drain_overflow(queue)
        if best_level < 0:
            return 0
        order = self._order[best_level]
        index = heappop(order)
        bucket = self._buckets[best_level].pop(index)
        self.count -= len(bucket)
        if best_level == 0:
            return _merge(bucket, queue, run, all_live)
        # cascade one level down (re-insert relative to the bucket's
        # own start so placement stays deterministic); the re-filed
        # entries are released by a later `_drain_one` round
        base = index * self.spans[best_level]
        insert = self.insert
        if all_live:
            for entry in bucket:
                insert(entry, base)
            return 0
        for entry in bucket:
            if entry[3].cancelled:
                entry[3].done = True
                continue
            insert(entry, base)
        return 0

    def _drain_overflow(self, queue: list[tuple]) -> int:
        """Move the overflow head (plus same-bucket peers) down."""
        overflow = self._overflow
        head_time = overflow[0][0]
        span = self.spans[-1]
        horizon = (int(head_time / span) + 1) * span
        while overflow and overflow[0][0] < horizon:
            entry = heappop(overflow)
            self.count -= 1
            if entry[3].cancelled:
                entry[3].done = True
                continue
            self.insert(entry, head_time)
        return 0

    def _refresh_bound(self) -> None:
        bound = NO_EVENTS
        for level, order in enumerate(self._order):
            if order:
                level_bound = order[0] * self.spans[level]
                if level_bound < bound:
                    bound = level_bound
        if self._overflow and self._overflow[0][0] < bound:
            bound = self._overflow[0][0]
        self.next_bound = bound

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Occupancy snapshot (used by benchmarks and tests)."""
        return {
            "count": self.count,
            "buckets": [len(level) for level in self._buckets],
            "overflow": len(self._overflow),
            "next_bound": self.next_bound,
        }


def _merge(bucket: list[tuple], queue: list[tuple],
           run: list[tuple] | None = None,
           all_live: bool = False) -> int:
    """Merge a due level-0 bucket into the scheduler's near structures.

    Cancelled entries are dropped without ever touching the heap.  The
    destinations, fastest first:

    * *run* given and empty → the sorted bucket is adopted (reversed)
      as the scheduler's **dispatch run**: a descending list whose tail
      is the global minimum, popped O(1) per event instead of O(log n)
      heap sifts — the bulk-dispatch fast path;
    * near heap empty → the sorted bucket *is* a valid binary min-heap
      and is adopted wholesale (one sort, zero sifts);
    * otherwise → conventional heap merge.
    """
    if all_live:
        live = bucket  # the scheduler vouches: skip the filter pass
    else:
        live = []
        keep = live.append
        for entry in bucket:
            event = entry[3]
            if event.cancelled:
                event.done = True
            else:
                keep(entry)
    if run is not None and not run:
        live.sort(reverse=True)
        run.extend(live)
        return len(live)
    live.sort()
    if not queue:
        queue.extend(live)
        return len(live)
    if len(live) > len(queue):
        queue.extend(live)
        heapify(queue)
    else:
        for entry in live:
            heappush(queue, entry)
    return len(live)
