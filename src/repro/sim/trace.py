"""Kernel trace record/replay — the determinism regression oracle.

The kernel already logs every executed event as ``(time, priority,
seq, label)`` (:attr:`repro.sim.kernel.Kernel.event_log`), and the
``(time, priority, seq)`` tie-breaking makes that stream a complete,
reproducible fingerprint of a seeded run.  This module turns the
stream into a first-class artifact:

* :func:`record_scenario` runs a compiled scenario
  (:mod:`repro.scenario`) and captures its full event stream as a
  :class:`KernelTrace`;
* :func:`save_trace` / :func:`load_trace` persist it as a **versioned
  JSONL file** (one header object, then one ``[time, priority, seq,
  label]`` array per event) whose bytes are deterministic — committing
  a golden trace turns determinism into a *byte-level* regression
  gate; a ``.jsonl.gz`` path transparently gzips the artifact (with a
  zeroed mtime, so compressed goldens stay byte-deterministic too),
  and loading auto-detects compression from the magic bytes;
* :func:`replay_trace` re-runs the scenario embedded in a trace's
  header under any build/flag combination (:class:`BuildFlags`
  composes the ``kernel_fast_path`` / ``payload_fast_path`` /
  ``lease_fast_path`` compat switches, and the shard count and the
  multi-process ``parallel`` mode can be overridden) and diffs the
  fresh stream against the recorded one;
* :func:`diff_traces` reports the **first divergence** structurally —
  index, expected vs actual event, and the common context leading in —
  so a failed replay names the exact event where a refactor changed
  the simulation instead of a bare "signatures differ".

The header embeds the *complete* scenario definition, so a trace file
is self-contained: replaying it needs no access to the ``.toml`` it
was recorded from.
"""

from __future__ import annotations

import gzip
import json
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # lazy at runtime: sim must not import the scenario/
    from repro.scenario.schema import ScenarioConfig  # pragma: no cover
    from repro.sim.kernel import Kernel  # pragma: no cover

#: format tag of the JSONL artifact; bump on any layout change so a
#: stale golden trace fails loudly instead of diffing nonsense
TRACE_FORMAT = "concord-kernel-trace/1"

#: one executed kernel event, exactly as the kernel logs it
TraceEvent = tuple[float, int, int, str]


class TraceError(ValueError):
    """A trace artifact that cannot be loaded or replayed."""


# ---------------------------------------------------------------------------
# build flags: the compat-switch surface a replay can target
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BuildFlags:
    """One build/flag combination a trace can be replayed against.

    Each field maps to one of the compat switches the perf PRs left
    behind; ``True`` is the current fast-path build, ``False`` the
    seed-equivalent baseline.  The determinism contract says the event
    stream is byte-identical under **every** combination.
    """

    kernel_fast_path: bool = True   # timer wheel + slab recycling
    payload_fast_path: bool = True  # frozen zero-copy payloads
    lease_fast_path: bool = True    # bucketed TTL-lease expiry

    @classmethod
    def compat(cls) -> "BuildFlags":
        """The all-baseline build (every fast path off)."""
        return cls(kernel_fast_path=False, payload_fast_path=False,
                   lease_fast_path=False)

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "BuildFlags":
        known = {f: bool(raw.get(f, True))
                 for f in ("kernel_fast_path", "payload_fast_path",
                           "lease_fast_path")}
        return cls(**known)

    def as_dict(self) -> dict[str, bool]:
        return {"kernel_fast_path": self.kernel_fast_path,
                "payload_fast_path": self.payload_fast_path,
                "lease_fast_path": self.lease_fast_path}

    @contextmanager
    def apply(self) -> Iterator[None]:
        """Scoped switch to this build combination (nests the three
        compat context managers; imports are lazy to keep ``sim`` free
        of upward package dependencies)."""
        from repro.repository.versions import payload_fast_path
        from repro.sim.scheduler import kernel_fast_path
        from repro.txn.leases import lease_fast_path

        with ExitStack() as stack:
            stack.enter_context(kernel_fast_path(self.kernel_fast_path))
            stack.enter_context(payload_fast_path(self.payload_fast_path))
            stack.enter_context(lease_fast_path(self.lease_fast_path))
            yield


# ---------------------------------------------------------------------------
# the trace artifact
# ---------------------------------------------------------------------------

@dataclass
class KernelTrace:
    """A recorded kernel event stream plus its provenance header."""

    #: header: format tag, embedded scenario definition, build flags,
    #: shard count, event count, final simulated time
    meta: dict[str, Any]
    #: the full ordered ``(time, priority, seq, label)`` stream
    events: list[TraceEvent]

    @property
    def scenario(self) -> dict[str, Any]:
        """The embedded scenario definition (raw table form)."""
        return self.meta.get("scenario", {})

    @property
    def final_time(self) -> float:
        return float(self.meta.get("final_time", 0.0))

    def signature(self) -> tuple[int, float, tuple[str, ...]]:
        """The compact fingerprint (mirrors
        :meth:`~repro.sim.kernel.Kernel.trace_signature`)."""
        return (len(self.events), self.final_time,
                tuple(label for *_, label in self.events))


def capture_trace(kernel: "Kernel",
                  scenario: dict[str, Any] | None = None,
                  flags: BuildFlags | None = None,
                  shards: int = 1,
                  parallel: bool = False) -> KernelTrace:
    """Snapshot *kernel*'s executed event stream as a trace artifact."""
    if not kernel.trace_events and not kernel.event_log:
        raise TraceError("kernel ran with trace_events=False — there "
                         "is no event stream to capture")
    events = [tuple(entry) for entry in kernel.event_log]
    meta = {
        "format": TRACE_FORMAT,
        "scenario": scenario or {},
        "flags": (flags or BuildFlags()).as_dict(),
        "shards": shards,
        "parallel": parallel,
        "events": len(events),
        "final_time": kernel.clock.now,
    }
    return KernelTrace(meta=meta, events=events)


#: gzip member header magic — compression is detected from content,
#: not the filename, so renamed artifacts still load
_GZIP_MAGIC = b"\x1f\x8b"


def save_trace(trace: KernelTrace, path: str | Path) -> Path:
    """Write *trace* as deterministic JSONL (header line + one event
    per line).  Identical runs produce byte-identical files — the
    byte-level half of the regression gate.  A ``.gz`` path gzips the
    payload with ``mtime=0`` so the compressed bytes are deterministic
    too."""
    path = Path(path)
    lines = [json.dumps(trace.meta, sort_keys=True,
                        separators=(",", ":"))]
    lines.extend(json.dumps(list(event), separators=(",", ":"))
                 for event in trace.events)
    data = ("\n".join(lines) + "\n").encode("utf-8")
    if path.suffix == ".gz":
        data = gzip.compress(data, mtime=0)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(data)
    return path


def load_trace(path: str | Path) -> KernelTrace:
    """Load a JSONL trace artifact (plain or gzipped), checking its
    format tag."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    if data[:2] == _GZIP_MAGIC:
        try:
            data = gzip.decompress(data)
        except (OSError, EOFError) as exc:
            raise TraceError(
                f"{path}: corrupt gzip stream: {exc}") from exc
    try:
        lines = data.decode("utf-8").splitlines()
    except UnicodeDecodeError as exc:
        raise TraceError(
            f"{path}: not a UTF-8 trace artifact: {exc}") from exc
    if not lines:
        raise TraceError(f"{path}: empty trace file")
    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path}:1: header is not JSON: {exc}") from exc
    if not isinstance(meta, dict) or "format" not in meta:
        raise TraceError(f"{path}: first line is not a trace header")
    if meta["format"] != TRACE_FORMAT:
        raise TraceError(
            f"{path}: format {meta['format']!r} is not the supported "
            f"{TRACE_FORMAT!r}")
    events: list[TraceEvent] = []
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(
                f"{path}:{lineno}: event is not JSON: {exc}") from exc
        if not (isinstance(row, list) and len(row) == 4):
            raise TraceError(
                f"{path}:{lineno}: expected [time, priority, seq, "
                f"label], got {row!r}")
        events.append((float(row[0]), int(row[1]), int(row[2]),
                       str(row[3])))
    declared = meta.get("events")
    if declared is not None and declared != len(events):
        raise TraceError(
            f"{path}: header declares {declared} events but the file "
            f"holds {len(events)}")
    return KernelTrace(meta=meta, events=events)


# ---------------------------------------------------------------------------
# structural diff: the first-divergence report
# ---------------------------------------------------------------------------

@dataclass
class TraceDiff:
    """Structural comparison of two event streams."""

    #: event counts of the reference / candidate streams
    events_a: int = 0
    events_b: int = 0
    #: index of the first differing event (None = streams identical)
    first_divergence: int | None = None
    #: the events at the divergence (None on a pure length mismatch)
    expected: TraceEvent | None = None
    actual: TraceEvent | None = None
    #: the last common events leading into the divergence
    context: list[TraceEvent] = field(default_factory=list)
    #: final simulated times (diverging times are reported even when
    #: every event matched — a clock-advance regression)
    final_time_a: float | None = None
    final_time_b: float | None = None

    @property
    def identical(self) -> bool:
        return (self.first_divergence is None
                and self.events_a == self.events_b
                and self.final_time_a == self.final_time_b)

    def render(self) -> str:
        """Human-readable first-divergence report."""
        if self.identical:
            return (f"traces identical: {self.events_a} events, "
                    f"final t={self.final_time_a}")
        lines = [f"traces DIVERGE: {self.events_a} recorded vs "
                 f"{self.events_b} replayed events"]
        if self.first_divergence is not None:
            lines.append(f"first divergence at event "
                         f"#{self.first_divergence}:")
            for event in self.context:
                lines.append(f"    = {_fmt_event(event)}")
            lines.append(f"  - expected {_fmt_event(self.expected)}")
            lines.append(f"  + actual   {_fmt_event(self.actual)}")
        elif self.events_a != self.events_b:
            lines.append(
                f"streams agree on the common prefix; the "
                f"{'recorded' if self.events_a > self.events_b else 'replayed'}"
                f" stream has {abs(self.events_a - self.events_b)} "
                f"extra trailing event(s)")
        if self.final_time_a != self.final_time_b:
            lines.append(f"final time: recorded {self.final_time_a} "
                         f"vs replayed {self.final_time_b}")
        return "\n".join(lines)


def _fmt_event(event: TraceEvent | None) -> str:
    if event is None:
        return "(stream ended)"
    time, priority, seq, label = event
    return f"(t={time}, prio={priority}, seq={seq}, {label!r})"


def diff_traces(recorded: KernelTrace, replayed: KernelTrace,
                context: int = 3) -> TraceDiff:
    """Compare two traces event by event; report the first divergence."""
    a, b = recorded.events, replayed.events
    diff = TraceDiff(events_a=len(a), events_b=len(b),
                     final_time_a=recorded.final_time,
                     final_time_b=replayed.final_time)
    for index in range(min(len(a), len(b))):
        if a[index] != b[index]:
            diff.first_divergence = index
            diff.expected = a[index]
            diff.actual = b[index]
            diff.context = list(a[max(0, index - context):index])
            return diff
    if len(a) != len(b):
        index = min(len(a), len(b))
        diff.first_divergence = index
        diff.expected = a[index] if index < len(a) else None
        diff.actual = b[index] if index < len(b) else None
        diff.context = list(a[max(0, index - context):index])
    return diff


# ---------------------------------------------------------------------------
# record / replay orchestration (lazy scenario imports)
# ---------------------------------------------------------------------------

def build_description(flags: BuildFlags, shards: int,
                      parallel: bool = False) -> str:
    """One-line human summary of a build/shard combination — what the
    CLI prints next to a replay verdict."""
    on = [name for name, value in flags.as_dict().items() if value]
    flag_part = "+".join(on) if on else "compat (all fast paths off)"
    shard_part = f"shards={shards}"
    if parallel:
        shard_part += " parallel (multi-process)"
    return f"build: {flag_part}; {shard_part}"


def record_scenario(config: "ScenarioConfig",
                    flags: BuildFlags | None = None,
                    shards: int | None = None,
                    parallel: bool | None = None) -> KernelTrace:
    """Run *config* under *flags* and capture its full event stream.

    With ``parallel=True`` the scenario executes on spawned worker
    processes (:func:`repro.sim.parallel.run_scenario_replicated`) and
    the captured stream is the cross-process merge — recording *is*
    the multi-process determinism check.
    """
    from repro.scenario import compile_scenario

    flags = flags or BuildFlags()
    if parallel is None:
        parallel = config.parallel
    if parallel:
        from repro.sim.parallel import run_scenario_replicated

        result = run_scenario_replicated(config, flags=flags,
                                         shards=shards)
        meta = {
            "format": TRACE_FORMAT,
            "scenario": config.as_tables(),
            "flags": flags.as_dict(),
            "shards": result.stats["shards"],
            "parallel": True,
            "events": len(result.events),
            "final_time": result.final_time,
        }
        return KernelTrace(meta=meta,
                           events=[tuple(e) for e in result.events])
    compiled = compile_scenario(config)
    captured: list[Any] = []
    with flags.apply():
        compiled.run(shards=shards, on_kernel=captured.append)
    if not captured:
        raise TraceError(
            f"scenario kind {config.kind!r} exposed no kernel to trace")
    kernel = captured[-1]
    return capture_trace(kernel, scenario=config.as_tables(),
                         flags=flags,
                         shards=shards or config.shards)


def replay_trace(trace: KernelTrace,
                 flags: BuildFlags | None = None,
                 shards: int | None = None,
                 parallel: bool | None = None,
                 context: int = 3) -> TraceDiff:
    """Re-run the scenario embedded in *trace* and diff the streams.

    *flags* / *shards* / *parallel* select the build combination to
    replay against (default: the combination the trace was recorded
    under).  Returns the structural diff; ``diff.identical`` is the
    regression gate.
    """
    from repro.scenario.schema import validate_scenario

    if not trace.scenario:
        raise TraceError("trace has no embedded scenario definition — "
                         "it cannot be replayed")
    config = validate_scenario(trace.scenario)
    if flags is None:
        flags = BuildFlags.from_dict(trace.meta.get("flags", {}))
    if shards is None:
        shards = int(trace.meta.get("shards", config.shards))
    if parallel is None:
        parallel = bool(trace.meta.get("parallel", False))
    fresh = record_scenario(config, flags=flags, shards=shards,
                            parallel=parallel)
    return diff_traces(trace, fresh, context=context)
